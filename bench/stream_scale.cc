/**
 * @file
 * Million-client scale bench for the streaming estimation service.
 *
 * Where bench/stream_sweep proves the service *correct* under
 * adversarial phases at a small fleet, this bench proves the ingest
 * pipeline *scales*: it drives a synthetic fleet of >= 1M clients
 * (default) through the sharded rings in chunked rounds and reports
 * per-tick drain throughput, p99 tick latency and resident
 * bytes/session on top of the usual deterministic counters.
 *
 * Three passes per run:
 *
 *  1. verify - a small poisoned fleet (NaN, +/-Inf and negative
 *     counters, stale sequence numbers, frequent wraps at a narrow
 *     counter width) is replayed at --jobs 1, --jobs N and with the
 *     SIMD level forced to scalar. All three runs must produce the
 *     same digest: worker count and dispatch level are speed knobs,
 *     never numerics knobs, even on adversarial payloads.
 *  2. ratio - a mid-size fleet is drained twice, once at the scalar
 *     level and once at the dispatched best level. The digests must
 *     match bitwise; the wall-clock ratio is reported as the gated
 *     simd_speedup_x metric (deterministic counters and this ratio
 *     are the only gated metrics - absolute wall clock never gates).
 *  3. scale - the full fleet. Clients are offered in chunks sized
 *     under the aggregate drain budget so the bounded rings never
 *     shed or overflow; every sample is drained and estimated. The
 *     run digest must be identical across repetitions.
 *
 * With --timeline-out (or TDP_TIMELINE_OUT) each repetition runs the
 * scale pass twice - telemetry off (the reported throughput leg) and
 * telemetry on - asserting the digests identical and reporting the
 * ceiling-gated telemetry_overhead_ratio metric (min over
 * repetitions, limit 1.05). The final service contributes stream.*
 * manifest sections and writes the telemetry dump at exit; SIGUSR2
 * writes a `.sigusr2` side file mid-run and SIGTERM drains with
 * partial sections, the timeline and exit code 113.
 *
 * Flags (after the shared bench flags, see bench_util.hh):
 *   --clients N         scale-pass fleet size     [TDP_SCALE_CLIENTS]
 *   --rounds N          samples per client        [TDP_SCALE_ROUNDS]
 *   --shards N          ingest shards             [TDP_SCALE_SHARDS]
 *   --verify-clients N  verify-pass fleet size
 *                                          [TDP_SCALE_VERIFY_CLIENTS]
 *   --seed V            ingest hash seed          [TDP_SCALE_SEED]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.hh"
#include "common/logging.hh"
#include "measure/trace_io.hh"
#include "resilience/retry.hh"
#include "resilience/shutdown.hh"
#include "simd/dispatch.hh"
#include "stream/service.hh"
#include "stream/synthetic.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;
using stream::StreamConfig;
using stream::StreamSample;
using stream::StreamService;

/**
 * The service a mid-run dump (SIGUSR2, SIGTERM, fatal) snapshots.
 * Passes run one at a time on the main thread; the pointer is
 * cleared before its service is destroyed (or left pointing at the
 * service kept alive for the manifest/exit dump).
 */
const StreamService *liveService = nullptr;

/** True when --timeline-out / TDP_TIMELINE_OUT enabled telemetry. */
bool
timelineActive()
{
    return !timelineOutPath().empty();
}

/**
 * Poll the async-signal flags between ticks. SIGUSR2 dumps the live
 * telemetry to a side file and continues; SIGTERM flushes partial
 * stream.* manifest sections plus the timeline and exits with the
 * clean-abort code, so a drained scale run still leaves a
 * postmortem.
 */
void
pollSignals(const StreamService &service)
{
    if (resilience::dumpRequested()) {
        if (timelineActive())
            service.writeTimeline(timelineOutPath() + ".sigusr2",
                                  "bm_stream_scale", "sigusr2");
        resilience::clearDumpRequest();
    }
    if (!resilience::shutdownRequested())
        return;
    if (observabilityEnabled()) {
        service.addManifestSections(runManifest());
        if (timelineActive())
            service.writeTimeline(timelineOutPath(),
                                  "bm_stream_scale", "sigterm");
        flushObservability();
    }
    std::exit(resilience::cleanAbortExitCode);
}

struct ScaleOptions
{
    int clients = 1000000;
    int rounds = 4;
    int shards = 32;
    int verifyClients = 4096;
    uint64_t seed = 0x5ca1eull;
};

/** Deterministic load shape: every client sweeps its own phase. */
double
loadOf(int round, int client)
{
    const int p = 5 + client % 7;
    const int phase = (round + client % p) % (2 * p);
    const double tri =
        phase < p ? static_cast<double>(phase) / p
                  : static_cast<double>(2 * p - phase) / p;
    return 0.05 + 0.9 * tri;
}

/** Everything a pass must reproduce bitwise. */
struct PassResult
{
    uint64_t digest = 0;
    uint64_t offered = 0;
    uint64_t accepted = 0;
    uint64_t baselines = 0;
    uint64_t wraps = 0;
    uint64_t invalid = 0;
    uint64_t quarantines = 0;
    uint64_t activeSessions = 0;

    /** Wall-clock side channel (excluded from the memcmp). @{ */
    double tickSeconds = 0.0;
    double p99TickSeconds = 0.0;
    uint64_t ticks = 0;
    size_t sessionBytes = 0;
    /** @} */
};

/** Bitwise comparison of the deterministic prefix only. */
bool
sameResult(const PassResult &a, const PassResult &b)
{
    return std::memcmp(&a, &b, offsetof(PassResult, tickSeconds)) ==
           0;
}

void
accumulateSessions(const StreamService &service, PassResult &r)
{
    const auto sessions = service.sessionStats();
    r.accepted = sessions.accepted;
    r.baselines = sessions.baselines;
    r.wraps = sessions.wraps;
    r.invalid = sessions.nonFinite + sessions.outOfRange +
                sessions.duplicateSeq + sessions.outOfOrderSeq +
                sessions.staleTime + sessions.zeroCycles;
    r.quarantines = sessions.quarantines;
    r.activeSessions = service.activeSessions();
    r.sessionBytes = service.sessionMemoryBytes();
    r.digest = service.digest();
}

/**
 * The verify-pass fleet: a narrow counter width so wraps are routine,
 * plus hashed per-(client, round) poison covering every adversarial
 * payload class the lane kernels classify - NaN, +Inf, -Inf,
 * out-of-range (negative) counters and stale sequence numbers.
 */
PassResult
runVerifyPass(const ScaleOptions &opt, int jobs)
{
    StreamConfig cfg;
    cfg.ingest.shards = 4;
    cfg.ingest.ringCapacity =
        static_cast<size_t>(opt.verifyClients);
    cfg.ingest.highWatermark = 0; // no shedding: drain everything
    cfg.ingest.seed = opt.seed;
    cfg.session.counterWidthBits = 34; // wraps nearly every round
    cfg.session.quarantineThreshold = 6;
    cfg.drainBudget = 512;
    cfg.evictEveryTicks = 0;
    cfg.telemetry.timeline = timelineActive();
    StreamService service(cfg,
                          stream::synthetic::trainedEstimator());
    const ExperimentPool pool(jobs);
    stream::synthetic::Fleet fleet(opt.verifyClients, 34);
    liveService = &service;

    PassResult result;
    const int rounds = 12;
    for (int round = 0; round < rounds; ++round) {
        for (int c = 0; c < opt.verifyClients; ++c) {
            StreamSample sample =
                fleet.next(c, loadOf(round, c));
            const uint64_t id = sample.client;
            if (resilience::hashUnit(opt.seed ^ 0xbad0u, id,
                                     round) < 0.04)
                sample.raw.counts[0] = std::nan("");
            else if (resilience::hashUnit(opt.seed ^ 0xbad1u, id,
                                          round) < 0.03)
                sample.raw.counts[3] = HUGE_VAL; // +Inf
            else if (resilience::hashUnit(opt.seed ^ 0xbad2u, id,
                                          round) < 0.03)
                sample.osDeviceInterrupts = -HUGE_VAL;
            else if (resilience::hashUnit(opt.seed ^ 0xbad3u, id,
                                          round) < 0.03)
                sample.raw.counts[6] = -1.0; // out of range
            else if (resilience::hashUnit(opt.seed ^ 0xbad4u, id,
                                          round) < 0.03)
                sample.seq = 1; // duplicate/stale sequence
            ++result.offered;
            service.offer(sample);
        }
        service.tick(pool);
        pollSignals(service);
        while (service.stats().drained <
               service.ingestStats().admitted) {
            service.tick(pool);
            pollSignals(service);
        }
    }
    if (service.ingestStats().shed != 0 ||
        service.ingestStats().overflow != 0)
        fatal("stream_scale: verify pass shed/overflowed - ring "
              "sizing is broken");
    accumulateSessions(service, result);
    liveService = nullptr;
    return result;
}

/**
 * Drain a fleet of @p clients through the service in chunks sized at
 * 3/4 of the aggregate drain budget, so per-shard arrivals stay under
 * the per-tick drain even with hash imbalance and the rings never
 * shed. Returns the deterministic counters plus tick timings.
 *
 * @p telemetry turns the timeline/HDR layer on for this pass (the
 * flight recorder is always on). When @p keep_service is non-null
 * the drained service is handed back alive, so the caller can add
 * its manifest sections and write the exit telemetry dump.
 */
PassResult
runDrainPass(const ScaleOptions &opt, int clients, int rounds,
             int shards, size_t drain_budget,
             std::vector<double> *tick_seconds_out, bool telemetry,
             std::unique_ptr<StreamService> *keep_service)
{
    StreamConfig cfg;
    cfg.ingest.shards = shards;
    cfg.ingest.ringCapacity = 2 * drain_budget;
    cfg.ingest.highWatermark = 0;
    cfg.ingest.seed = opt.seed;
    cfg.session.counterWidthBits = 40;
    cfg.session.idleTimeoutTicks = 1u << 20;
    cfg.drainBudget = drain_budget;
    cfg.evictEveryTicks = 0;
    cfg.telemetry.timeline = telemetry;
    // A scale pass runs only a handful of ticks (one per offered
    // chunk plus the drain tail), so seal a window every tick or the
    // exit dump would be empty at CI fleet sizes.
    cfg.telemetry.windowTicks = 1;
    auto servicePtr = std::make_unique<StreamService>(
        cfg, stream::synthetic::trainedEstimator());
    StreamService &service = *servicePtr;
    const ExperimentPool pool(jobs());
    stream::synthetic::Fleet fleet(clients, 40);
    liveService = &service;

    const int chunk = static_cast<int>(
        static_cast<size_t>(shards) * drain_budget * 3 / 4);
    PassResult result;
    std::vector<double> tickSeconds;
    tickSeconds.reserve(static_cast<size_t>(rounds) *
                        (static_cast<size_t>(clients) / chunk + 2));
    const auto tickOnce = [&] {
        const auto start = std::chrono::steady_clock::now();
        service.tick(pool);
        tickSeconds.push_back(std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() -
                                  start)
                                  .count());
        pollSignals(service);
    };
    for (int round = 0; round < rounds; ++round) {
        for (int base = 0; base < clients; base += chunk) {
            const int end = std::min(clients, base + chunk);
            for (int c = base; c < end; ++c) {
                ++result.offered;
                service.offer(fleet.next(c, loadOf(round, c)));
            }
            tickOnce();
        }
        while (service.stats().drained <
               service.ingestStats().admitted)
            tickOnce();
    }
    if (service.ingestStats().shed != 0 ||
        service.ingestStats().overflow != 0)
        fatal("stream_scale: drain pass shed %llu / overflowed %llu "
              "- chunking must keep the rings in budget",
              static_cast<unsigned long long>(
                  service.ingestStats().shed),
              static_cast<unsigned long long>(
                  service.ingestStats().overflow));

    accumulateSessions(service, result);
    result.ticks = tickSeconds.size();
    for (double s : tickSeconds)
        result.tickSeconds += s;
    std::vector<double> sorted = tickSeconds;
    std::sort(sorted.begin(), sorted.end());
    result.p99TickSeconds =
        sorted.empty()
            ? 0.0
            : sorted[std::min(sorted.size() - 1,
                              static_cast<size_t>(std::ceil(
                                  0.99 * sorted.size())))];
    if (tick_seconds_out)
        *tick_seconds_out = tickSeconds;
    if (keep_service)
        *keep_service = std::move(servicePtr);
    else
        liveService = nullptr;
    return result;
}

ScaleOptions
parseOptions(const std::vector<std::string> &args)
{
    ScaleOptions opt;
    if (const char *env = std::getenv("TDP_SCALE_CLIENTS"))
        opt.clients = std::atoi(env);
    if (const char *env = std::getenv("TDP_SCALE_ROUNDS"))
        opt.rounds = std::atoi(env);
    if (const char *env = std::getenv("TDP_SCALE_SHARDS"))
        opt.shards = std::atoi(env);
    if (const char *env = std::getenv("TDP_SCALE_VERIFY_CLIENTS"))
        opt.verifyClients = std::atoi(env);
    if (const char *env = std::getenv("TDP_SCALE_SEED"))
        opt.seed = std::strtoull(env, nullptr, 0);

    auto intValue = [&](const std::string &text, const char *flag) {
        const int value = std::atoi(text.c_str());
        if (value <= 0)
            fatal("stream_scale: %s needs a positive integer, got "
                  "'%s'",
                  flag, text.c_str());
        return value;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](const char *name,
                         const char *prefix) -> std::string {
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(std::strlen(prefix));
            if (i + 1 >= args.size())
                fatal("stream_scale: %s needs a value", name);
            return args[++i];
        };
        if (arg == "--clients" || arg.rfind("--clients=", 0) == 0) {
            opt.clients = intValue(
                value("--clients", "--clients="), "--clients");
        } else if (arg == "--rounds" ||
                   arg.rfind("--rounds=", 0) == 0) {
            opt.rounds = intValue(value("--rounds", "--rounds="),
                                  "--rounds");
        } else if (arg == "--shards" ||
                   arg.rfind("--shards=", 0) == 0) {
            opt.shards = intValue(value("--shards", "--shards="),
                                  "--shards");
        } else if (arg == "--verify-clients" ||
                   arg.rfind("--verify-clients=", 0) == 0) {
            opt.verifyClients = intValue(
                value("--verify-clients", "--verify-clients="),
                "--verify-clients");
        } else if (arg == "--seed" || arg.rfind("--seed=", 0) == 0) {
            opt.seed = std::strtoull(
                value("--seed", "--seed=").c_str(), nullptr, 0);
        } else {
            fatal("stream_scale: unknown argument '%s'",
                  arg.c_str());
        }
    }
    if (opt.clients < 4096)
        fatal("stream_scale: --clients %d is below the 4096 floor - "
              "this bench measures fleet scale; for small-fleet "
              "correctness sweeps use bench/stream_sweep",
              opt.clients);
    if (opt.rounds < 1)
        fatal("stream_scale: need at least 1 round");
    if (opt.shards < 1 || opt.shards > 4096)
        fatal("stream_scale: --shards must be in [1, 4096]");
    if (opt.verifyClients < 256)
        fatal("stream_scale: --verify-clients must be >= 256");
    return opt;
}

MetricSeries
exactSeries(const char *name, double value, int reps)
{
    MetricSeries series;
    series.name = name;
    series.values.assign(static_cast<size_t>(reps), value);
    series.unit = "count";
    series.gate = true;
    series.direction = "exact";
    return series;
}

int
runScale(int argc, char **argv)
{
    const ScaleOptions opt =
        parseOptions(positionalArgs(argc, argv));
    const int wide = jobs() > 1 ? jobs() : 2;
    const size_t drainBudget = 8192;

    std::printf("Stream scale: %d clients x %d rounds across %d "
                "shards (drain budget %zu/shard/tick)\n\n",
                opt.clients, opt.rounds, opt.shards, drainBudget);

    // Pass 1: poisoned small fleet must be bitwise invariant to the
    // worker count AND the SIMD dispatch level.
    const SimdLevel best = activeSimdLevel();
    const PassResult serial = runVerifyPass(opt, 1);
    const PassResult parallel = runVerifyPass(opt, wide);
    setActiveSimdLevel(SimdLevel::Scalar);
    const PassResult scalar = runVerifyPass(opt, 1);
    setActiveSimdLevel(best);
    if (!sameResult(serial, parallel))
        fatal("stream_scale: verify digest diverged between --jobs "
              "1 (%016llx) and --jobs %d (%016llx)",
              static_cast<unsigned long long>(serial.digest), wide,
              static_cast<unsigned long long>(parallel.digest));
    if (!sameResult(serial, scalar))
        fatal("stream_scale: verify digest diverged between the %s "
              "(%016llx) and scalar (%016llx) verdict pipelines",
              simdLevelName(best),
              static_cast<unsigned long long>(serial.digest),
              static_cast<unsigned long long>(scalar.digest));
    if (serial.invalid == 0 || serial.wraps == 0 ||
        serial.quarantines == 0)
        fatal("stream_scale: verify pass saw %llu invalid / %llu "
              "wraps / %llu quarantines - the poison proved nothing",
              static_cast<unsigned long long>(serial.invalid),
              static_cast<unsigned long long>(serial.wraps),
              static_cast<unsigned long long>(serial.quarantines));
    std::printf("verify    digest %016llx identical at --jobs 1/"
                "--jobs %d/scalar (%llu invalid, %llu wraps, %llu "
                "quarantines)\n",
                static_cast<unsigned long long>(serial.digest), wide,
                static_cast<unsigned long long>(serial.invalid),
                static_cast<unsigned long long>(serial.wraps),
                static_cast<unsigned long long>(serial.quarantines));

    const int reps = benchRepetitions();
    std::vector<double> speedup, samplesPerSec, p99Ms, bytesPerSess,
        scaleSeconds;
    PassResult scaleFirst;
    std::unique_ptr<StreamService> scaleService;
    double overheadRatio = 0.0;

    for (int rep = 0; rep < reps; ++rep) {
        // Pass 2: scalar-vs-dispatched ratio on a mid-size fleet.
        const int ratioClients = 32768;
        setActiveSimdLevel(SimdLevel::Scalar);
        const PassResult slow = runDrainPass(
            opt, ratioClients, 6, 8, 1024, nullptr, false, nullptr);
        setActiveSimdLevel(best);
        const PassResult fast = runDrainPass(
            opt, ratioClients, 6, 8, 1024, nullptr, false, nullptr);
        if (!sameResult(slow, fast))
            fatal("stream_scale: ratio digest diverged between "
                  "scalar (%016llx) and %s (%016llx)",
                  static_cast<unsigned long long>(slow.digest),
                  simdLevelName(best),
                  static_cast<unsigned long long>(fast.digest));
        speedup.push_back(fast.tickSeconds > 0.0
                              ? slow.tickSeconds / fast.tickSeconds
                              : 1.0);

        // Pass 3: the full fleet, telemetry off - the baseline leg
        // every reported throughput number comes from. The service
        // of the last repetition's final leg is kept alive so the
        // scale run contributes its stream.* manifest sections and
        // the exit telemetry dump (it never did before this).
        const bool lastRep = rep + 1 == reps;
        const PassResult scale = runDrainPass(
            opt, opt.clients, opt.rounds, opt.shards, drainBudget,
            nullptr, false,
            lastRep && observabilityEnabled() && !timelineActive()
                ? &scaleService
                : nullptr);
        if (rep == 0)
            scaleFirst = scale;
        else if (!sameResult(scaleFirst, scale))
            fatal("stream_scale: repetition %d produced a different "
                  "scale digest - the run is not deterministic",
                  rep + 1);

        if (timelineActive()) {
            // Telemetry-on leg of the same fleet: the digest must be
            // bitwise unchanged and the wall-clock ratio feeds the
            // ceiling-gated telemetry_overhead_ratio metric. Min
            // over repetitions: scheduler noise only ever inflates a
            // leg, so the smallest ratio is the tightest sound
            // estimate of the true overhead.
            const PassResult withTelemetry = runDrainPass(
                opt, opt.clients, opt.rounds, opt.shards,
                drainBudget, nullptr, true,
                lastRep ? &scaleService : nullptr);
            if (!sameResult(scale, withTelemetry))
                fatal("stream_scale: enabling telemetry changed the "
                      "scale digest (%016llx off, %016llx on) - "
                      "telemetry must never touch the estimation "
                      "path",
                      static_cast<unsigned long long>(scale.digest),
                      static_cast<unsigned long long>(
                          withTelemetry.digest));
            const double ratio =
                scale.tickSeconds > 0.0
                    ? withTelemetry.tickSeconds / scale.tickSeconds
                    : 1.0;
            if (overheadRatio == 0.0 || ratio < overheadRatio)
                overheadRatio = ratio;
            emitStats("stream_scale: rep %d telemetry overhead "
                      "ratio %.4f",
                      rep + 1, ratio);
        }
        samplesPerSec.push_back(
            scale.tickSeconds > 0.0
                ? static_cast<double>(scale.offered) /
                      scale.tickSeconds
                : 0.0);
        p99Ms.push_back(scale.p99TickSeconds * 1e3);
        bytesPerSess.push_back(
            scale.activeSessions > 0
                ? static_cast<double>(scale.sessionBytes) /
                      static_cast<double>(scale.activeSessions)
                : 0.0);
        scaleSeconds.push_back(scale.tickSeconds);
        if (rep == 0) {
            std::printf(
                "scale     %llu offered, %llu accepted, %llu "
                "sessions, digest %016llx\n",
                static_cast<unsigned long long>(scale.offered),
                static_cast<unsigned long long>(scale.accepted),
                static_cast<unsigned long long>(
                    scale.activeSessions),
                static_cast<unsigned long long>(scale.digest));
        }
        std::printf("rep %d/%d  %.2fM samples/s, p99 tick %.2f ms, "
                    "%.0f B/session, simd x%.3f\n",
                    rep + 1, reps, samplesPerSec.back() / 1e6,
                    p99Ms.back(), bytesPerSess.back(),
                    speedup.back());
        std::fflush(stdout);
    }

    std::vector<MetricSeries> metrics;
    metrics.push_back(
        exactSeries("offered", double(scaleFirst.offered), reps));
    metrics.push_back(
        exactSeries("accepted", double(scaleFirst.accepted), reps));
    metrics.push_back(exactSeries(
        "baselines", double(scaleFirst.baselines), reps));
    metrics.push_back(
        exactSeries("wraps", double(scaleFirst.wraps), reps));
    metrics.push_back(exactSeries(
        "active_sessions", double(scaleFirst.activeSessions), reps));
    metrics.push_back(exactSeries(
        "digest_lo32", double(scaleFirst.digest & 0xffffffffull),
        reps));
    metrics.push_back(exactSeries(
        "digest_hi32", double(scaleFirst.digest >> 32), reps));

    MetricSeries ratio;
    ratio.name = "simd_speedup_x";
    ratio.values = speedup;
    ratio.unit = "x";
    ratio.gate = true;
    ratio.direction = "higher";
    metrics.push_back(ratio);

    const auto ungated = [](const char *name,
                            const std::vector<double> &values,
                            const char *unit,
                            const char *direction) {
        MetricSeries series;
        series.name = name;
        series.values = values;
        series.unit = unit;
        series.gate = false;
        series.direction = direction;
        return series;
    };
    metrics.push_back(ungated("tick_samples_per_s", samplesPerSec,
                              "samples/s", "higher"));
    metrics.push_back(
        ungated("p99_tick_ms", p99Ms, "ms", "lower"));
    metrics.push_back(ungated("bytes_per_session", bytesPerSess,
                              "B", "lower"));
    metrics.push_back(
        ungated("scale_seconds", scaleSeconds, "s", "lower"));

    if (timelineActive()) {
        // Ceiling-gated: telemetry on must stay within 5% of off at
        // the full fleet. Only measured (and only present in the
        // JSON) when a timeline path is configured, matching how the
        // committed baseline is produced.
        MetricSeries overhead;
        overhead.name = "telemetry_overhead_ratio";
        overhead.values = {overheadRatio};
        overhead.unit = "x";
        overhead.gate = true;
        overhead.direction = "ceiling";
        overhead.limit = 1.05;
        metrics.push_back(overhead);
    }

    if (scaleService) {
        if (observabilityEnabled())
            scaleService->addManifestSections(runManifest());
        if (timelineActive())
            scaleService->writeTimeline(timelineOutPath(),
                                        "bm_stream_scale", "exit");
    }

    const std::string path =
        writeBenchSeries("bm_stream_scale", metrics);
    std::printf("\nwrote %s\n", path.c_str());
    std::printf("stream scale: all checks passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    resilience::installShutdownHandler();
    resilience::installDumpSignalHandler();
    try {
        return runScale(argc, argv);
    } catch (const FatalError &) {
        // A fatal mid-run still leaves a postmortem: dump the live
        // service's telemetry, then let the error terminate the
        // process exactly as before.
        if (liveService != nullptr && timelineActive())
            liveService->writeTimeline(timelineOutPath(),
                                       "bm_stream_scale", "fatal");
        throw;
    }
}

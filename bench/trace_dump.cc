/**
 * @file
 * Trace recorder utility: run any registered workload under the
 * instrumented server and dump the aligned (counters, power) trace as
 * CSV for offline analysis or external model fitting.
 *
 * Usage: trace_dump [workload] [instances] [seconds] [stagger] [seed]
 * Defaults: gcc 8 120 0 0x5eed2007. CSV goes to stdout; progress to
 * stderr.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "workloads/profile.hh"

#include "common/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tdp;
    using namespace tdp::bench;

    RunSpec spec;
    spec.workload = argc > 1 ? argv[1] : "gcc";
    spec.instances = argc > 2 ? std::atoi(argv[2]) : 8;
    spec.duration = argc > 3 ? std::atof(argv[3]) : 120.0;
    spec.stagger = argc > 4 ? std::atof(argv[4]) : 0.0;
    spec.seed = argc > 5
                    ? std::strtoull(argv[5], nullptr, 0)
                    : defaultSeed;
    spec.skip = 0.0;
    if (spec.workload == "idle")
        spec.instances = 0;

    // Validate the workload name before burning simulation time.
    if (spec.instances > 0)
        findWorkloadProfile(spec.workload);

    std::fprintf(stderr,
                 "recording %s x%d for %.0fs (stagger %.0fs, seed "
                 "%#llx)...\n",
                 spec.workload.c_str(), spec.instances, spec.duration,
                 spec.stagger,
                 static_cast<unsigned long long>(spec.seed));

    const SampleTrace trace = runTrace(spec);
    trace.writeCsv(std::cout);
    std::fprintf(stderr, "%zu samples written\n", trace.size());
    return 0;
}

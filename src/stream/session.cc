/**
 * @file
 * Implementation of the per-client session table.
 */

#include "stream/session.hh"

#include <cmath>

#include "common/logging.hh"
#include "stream/checkpoint.hh"
#include "simd/lane_check.hh"
#include "simd/lane_math.hh"

namespace {

/** Portable popcount for the <= 64-bit lane masks. */
inline uint32_t
popcount64(uint64_t mask)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<uint32_t>(__builtin_popcountll(mask));
#else
    uint32_t count = 0;
    for (; mask != 0; mask &= mask - 1)
        ++count;
    return count;
#endif
}

} // namespace

namespace tdp {
namespace stream {

const char *
verdictName(Verdict verdict)
{
    switch (verdict) {
      case Verdict::Accepted:
        return "accepted";
      case Verdict::Baseline:
        return "baseline";
      case Verdict::NonFinite:
        return "non-finite";
      case Verdict::OutOfRange:
        return "out-of-range";
      case Verdict::DuplicateSeq:
        return "duplicate-seq";
      case Verdict::OutOfOrderSeq:
        return "out-of-order-seq";
      case Verdict::StaleTime:
        return "stale-time";
      case Verdict::ZeroCycles:
        return "zero-cycles";
      case Verdict::Quarantined:
        return "quarantined";
      default:
        return "unknown";
    }
}

bool
verdictIsInvalid(Verdict verdict)
{
    switch (verdict) {
      case Verdict::NonFinite:
      case Verdict::OutOfRange:
      case Verdict::DuplicateSeq:
      case Verdict::OutOfOrderSeq:
      case Verdict::StaleTime:
      case Verdict::ZeroCycles:
        return true;
      default:
        return false;
    }
}

SessionTable::SessionTable(const SessionConfig &config)
    : config_(config)
{
    if (config_.counterWidthBits < 1 || config_.counterWidthBits > 52)
        fatal("SessionTable: counterWidthBits must be in [1, 52], "
              "got %d",
              config_.counterWidthBits);
    if (config_.idleTimeoutTicks == 0)
        fatal("SessionTable: idleTimeoutTicks must be >= 1");
    if (config_.quarantineThreshold == 0)
        fatal("SessionTable: quarantineThreshold must be >= 1");
    if (config_.wattsWindow == 0)
        fatal("SessionTable: wattsWindow must be >= 1");
}

uint32_t
SessionTable::rowOf(uint64_t client, uint64_t tick)
{
    const uint32_t existing = index_.find(client);
    if (existing != FlatClientIndex::kNoRow)
        return existing;
    const uint32_t row = static_cast<uint32_t>(clients_.size());
    clients_.push_back(client);
    lastSeq_.push_back(0);
    lastTime_.push_back(0.0);
    lastSeen_.push_back(tick);
    quarantined_.push_back(0);
    hasBaseline_.push_back(0);
    invalidCount_.push_back(0);
    lastRaw_.resize(lastRaw_.size() + numPerfEvents, 0.0);
    watts_.resize(watts_.size() + config_.wattsWindow, 0.0);
    wattsCount_.push_back(0);
    index_.insert(client, row);
    ++stats_.created;
    return row;
}

void
SessionTable::recordInvalid(uint32_t row, Admit &admit)
{
    ++invalidCount_[row];
    if (!quarantined_[row] &&
        invalidCount_[row] >= config_.quarantineThreshold) {
        quarantined_[row] = 1;
        ++quarantinedNow_;
        ++stats_.quarantines;
        admit.newlyQuarantined = true;
    }
}

void
SessionTable::classifyHeader(const StreamSample &sample,
                             PayloadClass &cls)
{
    // interval > 0 must hold and cpus is an int: these header checks
    // stay scalar (four doubles are below the lane batch's break-even
    // on their own; a full admit batch lanes them across samples).
    if (!(sample.interval > 0.0) || sample.cpus < 1 ||
        !(sample.osDiskInterrupts >= 0.0) ||
        !(sample.osDeviceInterrupts >= 0.0))
        cls.inRange = false;
}

SessionTable::PayloadClass
SessionTable::classify(const StreamSample &sample) const
{
    // Payload validation. Raw counters must be finite and inside
    // [0, 2^width) *before* the wrap recovery sees them - a remote
    // client must never be able to crash the service. The ten raw
    // counters go through the lane kernels (bit-identical at every
    // dispatch level); NaN sets only the non-finite mask because the
    // range compares are ordered, and non-finite is checked first so
    // an Inf that also trips the range mask still reads NonFinite,
    // exactly like the old scalar else-if.
    PayloadClass cls;
    const double header[4] = {sample.time, sample.interval,
                              sample.osDiskInterrupts,
                              sample.osDeviceInterrupts};
    if (lanes::nonFiniteMask(header, 4) != 0)
        cls.finite = false;
    classifyHeader(sample, cls);
    const double span = counterSpan(config_.counterWidthBits);
    if (lanes::nonFiniteMask(sample.raw.counts.data(),
                             numPerfEvents) != 0)
        cls.finite = false;
    if (lanes::outOfRangeMask(sample.raw.counts.data(), 0.0, span,
                              numPerfEvents) != 0)
        cls.inRange = false;
    return cls;
}

SessionTable::Admit
SessionTable::admit(uint64_t tick, const StreamSample &sample)
{
    return admitClassified(tick, sample, classify(sample));
}

void
SessionTable::admitBatch(uint64_t tick, const StreamSample *samples,
                         size_t count, Admit *out)
{
    if (count != kSimdLanes) {
        // Residue: fewer samples than lanes; the scalar-per-sample
        // classify already lane-batches each sample's ten counters.
        for (size_t k = 0; k < count; ++k)
            out[k] = admit(tick, samples[k]);
        return;
    }

    // Stage the batch into the fixed 4-lane contract: lane = sample.
    // The payload classification is a pure function of each sample
    // alone, so it is safe to hoist even when several lanes carry the
    // same client; every state-dependent check (sequence, staleness,
    // wrap recovery) runs sequentially in admitClassified below.
    for (size_t l = 0; l < kSimdLanes; ++l) {
        const StreamSample &s = samples[l];
        laneHeader_[0 * kSimdLanes + l] = s.time;
        laneHeader_[1 * kSimdLanes + l] = s.interval;
        laneHeader_[2 * kSimdLanes + l] = s.osDiskInterrupts;
        laneHeader_[3 * kSimdLanes + l] = s.osDeviceInterrupts;
        for (int e = 0; e < numPerfEvents; ++e) {
            laneRaw_[static_cast<size_t>(e) * kSimdLanes + l] =
                s.raw.counts[static_cast<size_t>(e)];
        }
    }

    uint64_t nonFinite = 0;
    uint64_t outOfRange = 0;
    for (size_t f = 0; f < 4; ++f) {
        nonFinite |= lanes::nonFiniteMask(
            laneHeader_.data() + f * kSimdLanes, kSimdLanes);
    }
    const double span = counterSpan(config_.counterWidthBits);
    for (int e = 0; e < numPerfEvents; ++e) {
        const double *lanesOfEvent =
            laneRaw_.data() + static_cast<size_t>(e) * kSimdLanes;
        nonFinite |= lanes::nonFiniteMask(lanesOfEvent, kSimdLanes);
        outOfRange |= lanes::outOfRangeMask(lanesOfEvent, 0.0, span,
                                            kSimdLanes);
    }

    for (size_t l = 0; l < kSimdLanes; ++l) {
        PayloadClass cls;
        cls.finite = ((nonFinite >> l) & 1) == 0;
        cls.inRange = ((outOfRange >> l) & 1) == 0;
        classifyHeader(samples[l], cls);
        out[l] = admitClassified(tick, samples[l], cls);
    }
}

SessionTable::Admit
SessionTable::admitClassified(uint64_t tick,
                              const StreamSample &sample,
                              const PayloadClass &cls)
{
    Admit admit;
    const uint32_t row = rowOf(sample.client, tick);

    // Any contact (even a reject) proves the client alive: eviction
    // is about silence, not behaviour.
    lastSeen_[row] = tick;

    if (quarantined_[row]) {
        ++stats_.rejectedQuarantined;
        admit.verdict = Verdict::Quarantined;
        return admit;
    }

    // Sequence discipline first: replays and reordering are protocol
    // violations regardless of payload quality.
    if (hasBaseline_[row]) {
        if (sample.seq == lastSeq_[row]) {
            ++stats_.duplicateSeq;
            admit.verdict = Verdict::DuplicateSeq;
            recordInvalid(row, admit);
            return admit;
        }
        if (sample.seq < lastSeq_[row]) {
            ++stats_.outOfOrderSeq;
            admit.verdict = Verdict::OutOfOrderSeq;
            recordInvalid(row, admit);
            return admit;
        }
    }

    if (!cls.finite) {
        ++stats_.nonFinite;
        admit.verdict = Verdict::NonFinite;
        recordInvalid(row, admit);
        return admit;
    }
    if (!cls.inRange) {
        ++stats_.outOfRange;
        admit.verdict = Verdict::OutOfRange;
        recordInvalid(row, admit);
        return admit;
    }

    if (hasBaseline_[row] && sample.time <= lastTime_[row]) {
        ++stats_.staleTime;
        admit.verdict = Verdict::StaleTime;
        recordInvalid(row, admit);
        return admit;
    }

    double *raw_column =
        &lastRaw_[static_cast<size_t>(row) * numPerfEvents];

    if (!hasBaseline_[row]) {
        // First valid contact primes the wrap recovery; nothing to
        // estimate yet.
        for (int e = 0; e < numPerfEvents; ++e)
            raw_column[e] = sample.raw.counts[static_cast<size_t>(e)];
        hasBaseline_[row] = 1;
        lastSeq_[row] = sample.seq;
        lastTime_[row] = sample.time;
        ++stats_.baselines;
        admit.verdict = Verdict::Baseline;
        return admit;
    }

    // Recover deltas, counting wraps. A wrapped read is *valid* - it
    // is what real width-limited PMU counters do. Range validation
    // already happened above, so the lane kernel (bit-identical to
    // wrappedCounterDelta on in-range inputs, at every dispatch
    // level) replaces the per-event scalar calls.
    const double span = counterSpan(config_.counterWidthBits);
    const uint32_t wraps = popcount64(lanes::lessThanMask(
        sample.raw.counts.data(), raw_column, numPerfEvents));
    CounterSnapshot deltas;
    lanes::wrappedDeltas(deltas.counts.data(),
                         sample.raw.counts.data(), raw_column, span,
                         numPerfEvents);
    if (deltas[PerfEvent::Cycles] <= 0.0) {
        // No cycle progress: the rate derivation would divide by
        // zero. Advance the session (the raw read itself is sound) but
        // refuse the sample.
        for (int e = 0; e < numPerfEvents; ++e)
            raw_column[e] = sample.raw.counts[static_cast<size_t>(e)];
        lastSeq_[row] = sample.seq;
        lastTime_[row] = sample.time;
        ++stats_.zeroCycles;
        admit.verdict = Verdict::ZeroCycles;
        recordInvalid(row, admit);
        return admit;
    }

    for (int e = 0; e < numPerfEvents; ++e)
        raw_column[e] = sample.raw.counts[static_cast<size_t>(e)];
    lastSeq_[row] = sample.seq;
    lastTime_[row] = sample.time;
    ++stats_.accepted;
    stats_.wraps += wraps;
    admit.verdict = Verdict::Accepted;
    admit.deltas = deltas;
    admit.wraps = wraps;
    return admit;
}

bool
SessionTable::isQuarantined(uint64_t client) const
{
    const uint32_t row = index_.find(client);
    return row != FlatClientIndex::kNoRow && quarantined_[row] != 0;
}

void
SessionTable::recordWatts(uint64_t client, double watts)
{
    const uint32_t row = index_.find(client);
    if (row == FlatClientIndex::kNoRow)
        return;
    const size_t base = static_cast<size_t>(row) * config_.wattsWindow;
    watts_[base + wattsCount_[row] % config_.wattsWindow] = watts;
    ++wattsCount_[row];
}

double
SessionTable::windowMeanWatts(uint64_t client) const
{
    const uint32_t row = index_.find(client);
    if (row == FlatClientIndex::kNoRow)
        return std::nan("");
    const size_t filled = std::min<size_t>(
        wattsCount_[row], config_.wattsWindow);
    if (filled == 0)
        return std::nan("");
    const size_t base = static_cast<size_t>(row) * config_.wattsWindow;
    double sum = 0.0;
    for (size_t i = 0; i < filled; ++i)
        sum += watts_[base + i];
    return sum / static_cast<double>(filled);
}

void
SessionTable::removeRow(uint32_t row)
{
    const uint32_t last = static_cast<uint32_t>(clients_.size() - 1);
    if (quarantined_[row])
        --quarantinedNow_;
    index_.erase(clients_[row]);
    if (row != last) {
        clients_[row] = clients_[last];
        lastSeq_[row] = lastSeq_[last];
        lastTime_[row] = lastTime_[last];
        lastSeen_[row] = lastSeen_[last];
        quarantined_[row] = quarantined_[last];
        hasBaseline_[row] = hasBaseline_[last];
        invalidCount_[row] = invalidCount_[last];
        for (int e = 0; e < numPerfEvents; ++e) {
            lastRaw_[static_cast<size_t>(row) * numPerfEvents + e] =
                lastRaw_[static_cast<size_t>(last) * numPerfEvents + e];
        }
        for (size_t i = 0; i < config_.wattsWindow; ++i) {
            watts_[static_cast<size_t>(row) * config_.wattsWindow + i] =
                watts_[static_cast<size_t>(last) * config_.wattsWindow +
                       i];
        }
        wattsCount_[row] = wattsCount_[last];
        index_.set(clients_[row], row);
    }
    clients_.pop_back();
    lastSeq_.pop_back();
    lastTime_.pop_back();
    lastSeen_.pop_back();
    quarantined_.pop_back();
    hasBaseline_.pop_back();
    invalidCount_.pop_back();
    lastRaw_.resize(lastRaw_.size() - numPerfEvents);
    watts_.resize(watts_.size() - config_.wattsWindow);
    wattsCount_.pop_back();
}

size_t
SessionTable::evictIdle(uint64_t now)
{
    size_t evicted = 0;
    uint32_t row = 0;
    while (row < clients_.size()) {
        const uint64_t idle = now - lastSeen_[row];
        if (idle >= config_.idleTimeoutTicks) {
            removeRow(row);
            ++evicted;
            // The swapped-in row is re-examined at the same index.
        } else {
            ++row;
        }
    }
    stats_.evicted += evicted;
    return evicted;
}

size_t
SessionTable::memoryBytes() const
{
    return clients_.capacity() * sizeof(uint64_t) +
           lastSeq_.capacity() * sizeof(uint64_t) +
           lastTime_.capacity() * sizeof(double) +
           lastSeen_.capacity() * sizeof(uint64_t) +
           quarantined_.capacity() * sizeof(uint8_t) +
           hasBaseline_.capacity() * sizeof(uint8_t) +
           invalidCount_.capacity() * sizeof(uint32_t) +
           lastRaw_.capacity() * sizeof(double) +
           watts_.capacity() * sizeof(double) +
           wattsCount_.capacity() * sizeof(uint32_t) +
           index_.memoryBytes();
}

void
SessionTable::checkpointSave(CheckpointWriter &w) const
{
    w.u64(clients_.size());
    for (size_t row = 0; row < clients_.size(); ++row) {
        w.u64(clients_[row]);
        w.u64(lastSeq_[row]);
        w.f64(lastTime_[row]);
        w.u64(lastSeen_[row]);
        w.u8(quarantined_[row]);
        w.u8(hasBaseline_[row]);
        w.u32(invalidCount_[row]);
        for (int e = 0; e < numPerfEvents; ++e)
            w.f64(lastRaw_[row * numPerfEvents +
                           static_cast<size_t>(e)]);
        for (size_t i = 0; i < config_.wattsWindow; ++i)
            w.f64(watts_[row * config_.wattsWindow + i]);
        w.u32(wattsCount_[row]);
    }
    w.u64(stats_.created);
    w.u64(stats_.accepted);
    w.u64(stats_.baselines);
    w.u64(stats_.wraps);
    w.u64(stats_.nonFinite);
    w.u64(stats_.outOfRange);
    w.u64(stats_.duplicateSeq);
    w.u64(stats_.outOfOrderSeq);
    w.u64(stats_.staleTime);
    w.u64(stats_.zeroCycles);
    w.u64(stats_.rejectedQuarantined);
    w.u64(stats_.quarantines);
    w.u64(stats_.evicted);
    w.u64(quarantinedNow_);
}

bool
SessionTable::checkpointRestore(CheckpointReader &r)
{
    if (!clients_.empty()) {
        r.fail("session restore into a non-empty table");
        return false;
    }
    const uint64_t rows = r.u64();
    if (!r.ok())
        return false;
    size_t quarantinedSeen = 0;
    for (uint64_t row = 0; row < rows; ++row) {
        const uint64_t client = r.u64();
        clients_.push_back(client);
        lastSeq_.push_back(r.u64());
        lastTime_.push_back(r.f64());
        lastSeen_.push_back(r.u64());
        quarantined_.push_back(r.u8());
        hasBaseline_.push_back(r.u8());
        invalidCount_.push_back(r.u32());
        lastRaw_.resize(lastRaw_.size() + numPerfEvents);
        for (int e = 0; e < numPerfEvents; ++e)
            lastRaw_[static_cast<size_t>(row) * numPerfEvents +
                     static_cast<size_t>(e)] = r.f64();
        watts_.resize(watts_.size() + config_.wattsWindow);
        for (size_t i = 0; i < config_.wattsWindow; ++i)
            watts_[static_cast<size_t>(row) * config_.wattsWindow +
                   i] = r.f64();
        wattsCount_.push_back(r.u32());
        if (!r.ok())
            return false;
        if (quarantined_.back() != 0)
            ++quarantinedSeen;
        if (index_.find(client) != FlatClientIndex::kNoRow) {
            r.fail("duplicate client in session checkpoint");
            return false;
        }
        index_.insert(client, static_cast<uint32_t>(row));
    }
    stats_.created = r.u64();
    stats_.accepted = r.u64();
    stats_.baselines = r.u64();
    stats_.wraps = r.u64();
    stats_.nonFinite = r.u64();
    stats_.outOfRange = r.u64();
    stats_.duplicateSeq = r.u64();
    stats_.outOfOrderSeq = r.u64();
    stats_.staleTime = r.u64();
    stats_.zeroCycles = r.u64();
    stats_.rejectedQuarantined = r.u64();
    stats_.quarantines = r.u64();
    stats_.evicted = r.u64();
    quarantinedNow_ = r.u64();
    if (!r.ok())
        return false;
    if (quarantinedNow_ != quarantinedSeen) {
        r.fail("quarantine count disagrees with quarantine flags");
        return false;
    }
    index_.verifyInvariants();
    return true;
}

} // namespace stream
} // namespace tdp

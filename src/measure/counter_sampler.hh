/**
 * @file
 * Counter sampler: the target-resident agent that reads and clears
 * every CPU's PMU about once per second (the perfctr-driver flow of
 * paper section 3.1.3), reads interrupt sources from the OS, and
 * writes the synchronisation byte to the serial port at each read.
 */

#ifndef TDP_MEASURE_COUNTER_SAMPLER_HH
#define TDP_MEASURE_COUNTER_SAMPLER_HH

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "cpu/cpu_complex.hh"
#include "fault/fault_injector.hh"
#include "io/interrupt_controller.hh"
#include "sim/sim_object.hh"
#include "sim/system.hh"

namespace tdp {

/** One raw counter reading (before power alignment). */
struct CounterReading
{
    /** Target clock at the read (s). */
    Seconds time = 0.0;

    /** Interval since the previous read (s). */
    Seconds interval = 0.0;

    /** Per-CPU read-and-clear snapshots. */
    std::vector<CounterSnapshot> perCpu;

    /** /proc/interrupts total delta since the previous read. */
    double osInterruptsTotal = 0.0;

    /** Disk vector delta since the previous read. */
    double osDiskInterrupts = 0.0;

    /** All device (non-timer) vector deltas summed. */
    double osDeviceInterrupts = 0.0;
};

/** Periodic sampler of the PMU and OS interrupt accounting. */
class CounterSampler : public SimObject
{
  public:
    /** Configuration. */
    struct Params
    {
        /** Nominal sampling period (s). */
        Seconds period = 1.0;

        /**
         * Uniform jitter half-width on the period (s): cache effects
         * and interrupt latency make the real period wobble, which is
         * why the paper normalises metrics by the cycles count.
         */
        Seconds jitter = 1.5e-3;
    };

    /**
     * @param cpus CPU complex whose PMUs are read.
     * @param irq_controller interrupt accounting source.
     * @param disk_vector vector id of the disk HBA.
     * @param timer_vector vector id of the per-CPU timer.
     * @param on_pulse callback fired at each read (the serial byte to
     *        the DAQ).
     * @param faults optional fault injector applied at this boundary:
     *        counter wraparound (with driver-side recovery), PMU
     *        event unavailability and dropped readings. May be null.
     */
    CounterSampler(System &system, const std::string &name,
                   CpuComplex &cpus,
                   const InterruptController &irq_controller,
                   IrqVector disk_vector, IrqVector timer_vector,
                   std::function<void()> on_pulse,
                   const Params &params,
                   FaultInjector *faults = nullptr);

    /** Completed readings awaiting collection (drained by the rig). */
    std::deque<CounterReading> &readings() { return readings_; }

    void startup() override;

  private:
    void scheduleNext();
    void takeSample();

    Params params_;
    CpuComplex &cpus_;
    const InterruptController &irqController_;
    IrqVector diskVector_;
    IrqVector timerVector_;
    std::function<void()> onPulse_;
    FaultInjector *faults_;
    Rng rng_;
    std::deque<CounterReading> readings_;
    Seconds lastSampleTime_ = 0.0;
    /** Previous lifetime IRQ counts: total, disk, device. */
    std::array<double, 3> lastIrq_{};
    bool armed_ = false;
};

} // namespace tdp

#endif // TDP_MEASURE_COUNTER_SAMPLER_HH

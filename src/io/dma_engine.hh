/**
 * @file
 * DMA engine: moves device data to/from main memory through the I/O
 * chips and the front-side bus.
 *
 * Two behaviours matter to the paper's models and are reproduced here:
 *
 *  1. Buffering in the I/O chips smooths ("low-passes") the DMA
 *     traffic the CPU sees on the memory bus relative to the device
 *     activity that actually burns I/O power - the reason DMA-access
 *     counts fail as an I/O power proxy (paper section 4.2.4).
 *  2. Write-combining coalesces adjacent small transfers, breaking the
 *     one-to-one mapping between device bytes and bus transactions.
 */

#ifndef TDP_IO_DMA_ENGINE_HH
#define TDP_IO_DMA_ENGINE_HH

#include <cstdint>

#include "memory/bus.hh"
#include "sim/sim_object.hh"
#include "sim/system.hh"

namespace tdp {

/**
 * Buffered DMA mover. Devices submit byte counts as they transfer;
 * the engine drains its buffer onto the front-side bus at a bounded
 * rate in the Device phase.
 */
class DmaEngine : public SimObject, public Ticked
{
  public:
    /** Configuration of the engine. */
    struct Params
    {
        /** Peak drain rate from chip buffers to memory (bytes/s). */
        double drainBytesPerSec = 25e6;

        /** Cache line size on the bus (bytes). */
        double bytesPerLine = 64.0;

        /**
         * Write-combining efficiency in (0, 1]: fraction of a full
         * line a bus transaction carries on average for bulk traffic.
         */
        double writeCombineEfficiency = 0.95;

        /**
         * Line utilisation for small/unaligned transfers; low values
         * make one DMA bus event carry only a few bytes, the
         * overestimation hazard the paper describes.
         */
        double smallTransferEfficiency = 0.25;

        /** Transfers at or below this size count as small (bytes). */
        double smallTransferThreshold = 512.0;
    };

    DmaEngine(System &system, const std::string &name, FrontSideBus &bus,
              const Params &params);

    /**
     * Submit device-side DMA bytes for delivery to/from memory.
     *
     * @param bytes total bytes transferred by the device.
     * @param avg_transfer_size average size of the individual device
     *        transfers making up the bytes; controls line efficiency.
     */
    void submit(double bytes, double avg_transfer_size);

    /** Bytes sitting in chip buffers awaiting bus transfer. */
    double bufferedBytes() const { return bufferedBytes_; }

    /** Bus transactions issued during the previous quantum. */
    double lastQuantumTransactions() const { return lastTx_; }

    /** Lifetime bus transactions issued for DMA. */
    double lifetimeTransactions() const { return lifetimeTx_; }

    /** Lifetime device bytes submitted. */
    double lifetimeBytes() const { return lifetimeBytes_; }

    void tickUpdate(Tick now, Tick quantum) override;

  private:
    Params params_;
    FrontSideBus &bus_;
    double bufferedBytes_ = 0.0;
    double pendingWeightedEfficiency_ = 0.0;
    double lastTx_ = 0.0;
    double lifetimeTx_ = 0.0;
    double lifetimeBytes_ = 0.0;
};

} // namespace tdp

#endif // TDP_IO_DMA_ENGINE_HH

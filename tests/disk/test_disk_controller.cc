/**
 * @file
 * Tests for the disk controller: striping, completion interrupts, DMA
 * issue, MMIO accounting - the trickle-down chain of Equation 4.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "disk/disk_controller.hh"
#include "memory/bus.hh"
#include "sim/system.hh"

namespace tdp {
namespace {

struct Fixture
{
    Fixture()
        : pic(sys, "pic", 4),
          chips(sys, "iochips", pic, IoChipComplex::Params{}),
          bus(sys, "fsb", FrontSideBus::Params{}),
          dma(sys, "dma", bus, DmaEngine::Params{}),
          hba(sys, "hba", chips, dma, pic, DiskController::Params{})
    {
    }

    System sys{11};
    InterruptController pic;
    IoChipComplex chips;
    FrontSideBus bus;
    DmaEngine dma;
    DiskController hba;
};

TEST(DiskController, CompletionInvokesCallbackAndInterrupt)
{
    Fixture f;
    int completions = 0;
    f.hba.submit(true, 64.0 * 1024.0, 0.5,
                 [&](uint64_t) { ++completions; });
    f.sys.runFor(0.100);
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(f.hba.completedRequests(), 1u);
    EXPECT_DOUBLE_EQ(f.pic.lifetimeCount(f.hba.vector()), 1.0);
    EXPECT_EQ(f.hba.outstanding(), 0u);
}

TEST(DiskController, DmaCarriesThePayload)
{
    Fixture f;
    const double bytes = 256.0 * 1024.0;
    f.hba.submit(false, bytes, 0.4);
    f.sys.runFor(0.300);
    EXPECT_NEAR(f.dma.lifetimeBytes(), bytes, 1.0);
    EXPECT_GT(f.bus.lifetimeOfKind(BusTxKind::Dma), 0.0);
}

TEST(DiskController, RoundRobinAcrossDisks)
{
    Fixture f;
    for (int i = 0; i < 6; ++i)
        f.hba.submit(false, 4096.0, 0.5);
    f.sys.runFor(0.300);
    ASSERT_EQ(f.hba.disks().size(), 2u);
    EXPECT_EQ(f.hba.disks()[0]->completedRequests(), 3u);
    EXPECT_EQ(f.hba.disks()[1]->completedRequests(), 3u);
}

TEST(DiskController, MmioPerRequestDrains)
{
    Fixture f;
    f.hba.submit(true, 4096.0, 0.5);
    f.hba.submit(true, 4096.0, 0.6);
    const double mmio = f.hba.drainPendingMmio();
    EXPECT_DOUBLE_EQ(mmio, 2.0 * DiskController::Params{}.mmioPerRequest);
    EXPECT_DOUBLE_EQ(f.hba.drainPendingMmio(), 0.0);
}

TEST(DiskController, PowerAggregatesDisks)
{
    Fixture f;
    f.sys.runFor(0.002);
    EXPECT_DOUBLE_EQ(f.hba.lastPower(), f.hba.idlePower());
    EXPECT_NEAR(f.hba.idlePower(), 21.6, 1e-9);
}

TEST(DiskController, SubmitWithoutCallbackWorks)
{
    Fixture f;
    f.hba.submit(false, 4096.0, 0.2);
    f.sys.runFor(0.100);
    EXPECT_EQ(f.hba.completedRequests(), 1u);
}

TEST(DiskController, UniqueTags)
{
    Fixture f;
    const uint64_t a = f.hba.submit(false, 4096.0, 0.2);
    const uint64_t b = f.hba.submit(false, 4096.0, 0.3);
    EXPECT_NE(a, b);
}

TEST(DiskController, ZeroSizeRequestPanics)
{
    Fixture f;
    EXPECT_THROW(f.hba.submit(false, 0.0, 0.5), PanicError);
}

TEST(DiskController, BadDiskCountRejected)
{
    System sys(1);
    InterruptController pic(sys, "pic", 2);
    IoChipComplex chips(sys, "iochips", pic, IoChipComplex::Params{});
    FrontSideBus bus(sys, "fsb", FrontSideBus::Params{});
    DmaEngine dma(sys, "dma", bus, DmaEngine::Params{});
    DiskController::Params p;
    p.diskCount = 0;
    EXPECT_THROW(DiskController(sys, "hba", chips, dma, pic, p),
                 FatalError);
}

} // namespace
} // namespace tdp

/**
 * @file
 * Stream telemetry invariants: sealed windows carry counter *deltas*
 * (not cumulatives) and per-window latency quantiles, the recorded
 * timeline is byte-identical at any worker count, enabling telemetry
 * never perturbs the service digest, and the always-on flight
 * recorder captures the events a postmortem needs.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/run_manifest.hh"
#include "obs/stats_registry.hh"
#include "stream/service.hh"
#include "stream_fleet.hh"

namespace tdp {
namespace stream {
namespace {

using testutil::Fleet;
using testutil::trainedEstimator;

StreamConfig
telemetryConfig()
{
    StreamConfig cfg;
    cfg.ingest.shards = 4;
    cfg.ingest.ringCapacity = 128;
    cfg.ingest.highWatermark = 96;
    cfg.ingest.seed = 0x5eed;
    cfg.session.counterWidthBits = 40;
    cfg.session.idleTimeoutTicks = 32;
    cfg.session.quarantineThreshold = 4;
    cfg.session.wattsWindow = 8;
    cfg.refitBlockRows = 8;
    cfg.refitWindowBlocks = 4;
    cfg.drainBudget = 64;
    cfg.evictEveryTicks = 8;
    cfg.telemetry.timeline = true;
    cfg.telemetry.windowTicks = 4;
    return cfg;
}

TEST(StreamTelemetry, SealWindowStoresDeltasAndWindowQuantiles)
{
    TelemetryConfig cfg;
    cfg.timeline = true;
    cfg.windowTicks = 4;
    StreamTelemetry telemetry(cfg, 2);
    EXPECT_EQ(telemetry.serviceRing(), 2u); // 2 shards + service ring

    for (uint64_t ticks = 1; ticks <= 100; ++ticks)
        telemetry.onLatency(ticks);

    TimelineCounters first;
    first.offered = 40;
    first.accepted = 30;
    first.shed = 2;
    TimelineGauges gauges;
    gauges.occupancyMax = 7;
    gauges.occupancyTotal = 12;
    gauges.shards = 2;
    telemetry.sealWindow(3, first, gauges);

    TimelineCounters second = first;
    second.offered = 100;
    second.accepted = 75;
    telemetry.sealWindow(7, second, gauges);

    const auto &ring = telemetry.timeline();
    ASSERT_EQ(ring.size(), 2u);

    const TimelineWindow &w0 = ring.at(0);
    EXPECT_EQ(w0.tick, 3u);
    EXPECT_EQ(w0.delta.offered, 40u);
    EXPECT_EQ(w0.delta.accepted, 30u);
    EXPECT_EQ(w0.delta.shed, 2u);
    EXPECT_EQ(w0.gauges.occupancyMax, 7u);
    EXPECT_EQ(w0.latencyCount, 100u);
    EXPECT_EQ(w0.latencyMaxTicks, 100u);
    // Quantile upper bounds: within 2^-5 of the exact order stats.
    EXPECT_GE(w0.p50Ticks, 50u);
    EXPECT_LE(w0.p50Ticks, 52u);
    EXPECT_GE(w0.p99Ticks, 99u);
    EXPECT_LE(w0.p99Ticks, 100u);
    EXPECT_EQ(w0.p999Ticks, 100u); // clamped to the recorded max

    // The second window saw no latencies (the window histogram was
    // reset at the seal) and its deltas subtract the first seal.
    const TimelineWindow &w1 = ring.at(1);
    EXPECT_EQ(w1.tick, 7u);
    EXPECT_EQ(w1.delta.offered, 60u);
    EXPECT_EQ(w1.delta.accepted, 45u);
    EXPECT_EQ(w1.delta.shed, 0u);
    EXPECT_EQ(w1.latencyCount, 0u);
    EXPECT_EQ(w1.p50Ticks, 0u);

    // The cumulative histogram is never reset by a seal.
    EXPECT_EQ(telemetry.latencyHdr().count(), 100u);
}

/** One adversarial run with telemetry on; the facts to compare. */
struct TelemetryRun
{
    uint64_t digest = 0;
    uint64_t accepted = 0;
    std::vector<TimelineWindow> windows;
};

TelemetryRun
adversarialRun(int jobs, bool timeline)
{
    StreamConfig cfg = telemetryConfig();
    cfg.ingest.shards = 2;
    cfg.ingest.ringCapacity = 24;
    cfg.ingest.highWatermark = 12;
    cfg.telemetry.timeline = timeline;
    StreamService service(cfg, trainedEstimator());
    const ExperimentPool pool(jobs);
    Fleet fleet(16, 40);

    for (int round = 0; round < 60; ++round) {
        for (int c = 0; c < 16; ++c) {
            StreamSample s = fleet.next(
                c, static_cast<double>(round % 40) / 39.0);
            if (c == 5 && round > 0)
                s.raw.counts[0] = std::nan("");
            service.offer(s);
            if (round >= 20 && round < 40)
                service.offer(fleet.next(
                    c, static_cast<double>(round % 40) / 39.0));
        }
        service.tick(pool);
    }

    TelemetryRun result;
    result.digest = service.digest();
    result.accepted = service.sessionStats().accepted;
    service.telemetry().timeline().forEach(
        [&](const TimelineWindow &w) { result.windows.push_back(w); });
    return result;
}

TEST(StreamTelemetry, TimelineIsByteIdenticalAcrossWorkerCounts)
{
    const TelemetryRun serial = adversarialRun(1, true);
    const TelemetryRun parallel = adversarialRun(4, true);

    EXPECT_EQ(serial.digest, parallel.digest);
    ASSERT_GT(serial.windows.size(), 4u);
    ASSERT_EQ(serial.windows.size(), parallel.windows.size());
    for (size_t i = 0; i < serial.windows.size(); ++i)
        EXPECT_EQ(std::memcmp(&serial.windows[i], &parallel.windows[i],
                              sizeof(TimelineWindow)),
                  0)
            << "window " << i << " differs between 1 and 4 workers";

    // The run actually produced signal, not empty windows.
    uint64_t offered = 0, shed = 0;
    for (const TimelineWindow &w : serial.windows) {
        offered += w.delta.offered;
        shed += w.delta.shed;
    }
    EXPECT_GT(offered, 0u);
    EXPECT_GT(shed, 0u);
}

TEST(StreamTelemetry, EnablingTelemetryNeverTouchesTheDigest)
{
    const TelemetryRun off = adversarialRun(1, false);
    const TelemetryRun on = adversarialRun(1, true);
    EXPECT_EQ(off.digest, on.digest);
    EXPECT_EQ(off.accepted, on.accepted);
    // Off means off: no windows were sealed.
    EXPECT_TRUE(off.windows.empty());
    EXPECT_FALSE(on.windows.empty());
}

TEST(StreamTelemetry, FlightRecorderCapturesQuarantineEvents)
{
    // Timeline disabled on purpose: the flight recorder is always on.
    StreamConfig cfg = telemetryConfig();
    cfg.telemetry.timeline = false;
    StreamService service(cfg, trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(2, 40);

    for (int c = 0; c < 2; ++c)
        service.offer(fleet.next(c, 0.5));
    service.tick(pool);
    uint64_t poisonedClient = 0;
    for (int round = 0; round < 5; ++round) {
        StreamSample bad = fleet.next(1, 0.5);
        bad.raw.counts[0] = std::nan("");
        poisonedClient = bad.client;
        service.offer(bad);
        service.offer(fleet.next(0, 0.5));
        service.tick(pool);
    }
    ASSERT_EQ(service.sessionStats().quarantines, 1u);

    const obs::FlightRecorder &flight = service.telemetry().flightRecorder();
    uint64_t verdicts = 0, quarantines = 0;
    for (size_t ring = 0; ring < flight.rings(); ++ring)
        flight.forEach(ring, [&](const obs::FlightEvent &event) {
            const auto kind = static_cast<FlightKind>(event.kind);
            if (kind == FlightKind::Verdict)
                ++verdicts;
            if (kind == FlightKind::Quarantine) {
                ++quarantines;
                EXPECT_EQ(event.client, poisonedClient);
            }
        });
    EXPECT_GT(verdicts, 0u);
    EXPECT_EQ(quarantines, 1u);
    EXPECT_GT(flight.totalRecorded(), 0u);
}

TEST(StreamTelemetry, DumpAndManifestSectionsRoundTrip)
{
    StreamConfig cfg = telemetryConfig();
    StreamService service(cfg, trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(8, 40);
    for (int round = 0; round < 24; ++round) {
        for (int c = 0; c < 8; ++c)
            service.offer(fleet.next(
                c, static_cast<double>(round % 40) / 39.0));
        service.tick(pool);
    }

    const std::string path =
        testing::TempDir() + "test_telemetry_dump.json";
    ASSERT_TRUE(service.writeTimeline(path, "test", "exit"));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string dump = buffer.str();
    for (const char *fragment :
         {"\"schema\":\"tdp-stream-timeline\"", "\"version\":1",
          "\"reason\":\"exit\"", "\"timeline_enabled\":true",
          "\"latency_hdr\"", "\"flight\""})
        EXPECT_NE(dump.find(fragment), std::string::npos)
            << "dump lacks " << fragment;
    std::remove(path.c_str());

    obs::RunManifest manifest;
    manifest.setTool("test");
    service.addManifestSections(manifest);
    std::ostringstream manifestOs;
    manifest.writeJson(manifestOs, obs::StatsRegistry::Snapshot{});
    const std::string text = manifestOs.str();
    for (const char *fragment :
         {"\"stream.timeline\"", "\"stream.latency_hdr\"",
          "\"stream.flight\"", "\"w0.tick\""})
        EXPECT_NE(text.find(fragment), std::string::npos)
            << "manifest lacks " << fragment;
}

} // namespace
} // namespace stream
} // namespace tdp

/**
 * @file
 * Implementation of the trace cache.
 */

#include "trace/trace_cache.hh"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.hh"
#include "measure/trace_io.hh"
#include "obs/span_tracer.hh"
#include "obs/stats_registry.hh"

namespace tdp {

namespace fs = std::filesystem;

TraceCache::TraceCache(std::string root) : root_(std::move(root))
{
    if (root_.empty())
        fatal("TraceCache: empty cache directory");
}

std::string
TraceCache::entryPath(uint64_t fingerprint) const
{
    return (fs::path(root_) /
            formatString("trace-%016llx.tdpt",
                         static_cast<unsigned long long>(fingerprint)))
        .string();
}

bool
TraceCache::lookup(uint64_t fingerprint, SampleTrace &out) const
{
    obs::TraceSpan span("cache", "lookup");
    auto &reg = obs::StatsRegistry::global();

    const std::string path = entryPath(fingerprint);
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        ++stats_.misses;
        reg.addNamed("trace_cache.misses", 1);
        span.arg("hit", 0.0);
        return false;
    }

    SampleTrace trace;
    uint64_t stored_key = 0;
    std::string error;
    if (!tryReadTraceBinary(file, trace, &stored_key, &error)) {
        warn("trace cache: rejecting %s (%s); falling back to "
             "simulation",
             path.c_str(), error.c_str());
        ++stats_.rejected;
        reg.addNamed("trace_cache.rejected", 1);
        span.arg("hit", 0.0);
        return false;
    }
    if (stored_key != fingerprint) {
        // File-name hash collision or a renamed entry: the header
        // carries the authoritative key.
        warn("trace cache: rejecting %s (entry key %016llx does not "
             "match requested %016llx); falling back to simulation",
             path.c_str(),
             static_cast<unsigned long long>(stored_key),
             static_cast<unsigned long long>(fingerprint));
        ++stats_.rejected;
        reg.addNamed("trace_cache.rejected", 1);
        span.arg("hit", 0.0);
        return false;
    }

    out = std::move(trace);
    ++stats_.hits;
    reg.addNamed("trace_cache.hits", 1);
    span.arg("hit", 1.0);
    return true;
}

bool
TraceCache::store(uint64_t fingerprint, const SampleTrace &trace) const
{
    obs::TraceSpan span("cache", "store");
    span.arg("samples", static_cast<double>(trace.size()));

    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec) {
        warn("trace cache: cannot create %s (%s); entry not stored",
             root_.c_str(), ec.message().c_str());
        return false;
    }

    const std::string path = entryPath(fingerprint);
    // Unique temp name per process so concurrent bench binaries
    // never interleave writes; rename publishes atomically.
    const std::string tmp = formatString(
        "%s.tmp.%ld", path.c_str(), static_cast<long>(::getpid()));
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file) {
            warn("trace cache: cannot write %s; entry not stored",
                 tmp.c_str());
            return false;
        }
        try {
            writeTraceBinary(file, trace, fingerprint);
        } catch (const FatalError &err) {
            warn("trace cache: %s; entry not stored", err.what());
            fs::remove(tmp, ec);
            return false;
        }
    }
    fs::rename(tmp, path, ec);
    if (ec) {
        warn("trace cache: cannot publish %s (%s); entry not stored",
             path.c_str(), ec.message().c_str());
        fs::remove(tmp, ec);
        return false;
    }
    ++stats_.stores;
    obs::StatsRegistry::global().addNamed("trace_cache.stores", 1);
    return true;
}

std::optional<std::string>
TraceCache::rootFromEnvironment()
{
    const char *value = std::getenv("TDP_TRACE_CACHE");
    if (!value || value[0] == '\0' ||
        (value[0] == '0' && value[1] == '\0'))
        return std::nullopt;
    if (value[0] == '1' && value[1] == '\0')
        return defaultRoot();
    return std::string(value);
}

std::string
TraceCache::defaultRoot()
{
    return ".tdp-trace-cache";
}

} // namespace tdp

/**
 * @file
 * Implementation of the discrete-event queue.
 */

#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace tdp {

void
EventQueue::schedule(std::unique_ptr<Event> ev, Tick when, int priority)
{
    if (!ev)
        panic("EventQueue::schedule: null event");
    if (when < now_) {
        panic("EventQueue::schedule: event '%s' scheduled at %llu, "
              "before current tick %llu",
              ev->name().c_str(), static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    }
    heap_.push(Entry{when, priority, nextSequence_++,
                     std::shared_ptr<Event>(std::move(ev))});
}

void
EventQueue::scheduleFn(std::string name, Tick when,
                       std::function<void()> fn, int priority)
{
    schedule(std::make_unique<LambdaEvent>(std::move(name), std::move(fn)),
             when, priority);
}

Tick
EventQueue::nextTick() const
{
    if (heap_.empty())
        panic("EventQueue::nextTick on empty queue");
    return heap_.top().when;
}

void
EventQueue::step()
{
    if (heap_.empty())
        panic("EventQueue::step on empty queue");
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.when;
    ++processed_;
    entry.event->process();
}

void
EventQueue::runUntil(Tick until_tick)
{
    while (!heap_.empty() && heap_.top().when <= until_tick)
        step();
    if (now_ < until_tick)
        now_ = until_tick;
}

} // namespace tdp

/**
 * @file
 * Bounded sharded ingest with deterministic load shedding.
 *
 * Clients hash to shards, each shard owns one fixed-capacity
 * SampleRing. Admission control degrades in two stages:
 *
 *  - above the high watermark, samples are *shed* with a probability
 *    that ramps linearly toward the ring capacity. The coin flip is
 *    resilience::hashUnit(seed, client, seq) - a pure function of the
 *    sample's identity - so the exact same samples are shed whatever
 *    the worker count or wall-clock interleaving, and an overload run
 *    reproduces bit for bit;
 *  - at capacity the push is refused outright (overflow). The ring
 *    never silently evicts, so backpressure is visible in the
 *    counters instead of corrupting history.
 */

#ifndef TDP_STREAM_INGEST_HH
#define TDP_STREAM_INGEST_HH

#include <cstdint>
#include <vector>

#include "stream/ring.hh"

namespace tdp {
namespace stream {

class CheckpointWriter;
class CheckpointReader;

/** Shard and queue-bound configuration. */
struct IngestConfig
{
    /** Shard count (>= 1); clients hash to a stable shard. */
    int shards = 4;

    /** Per-shard ring capacity (samples). */
    size_t ringCapacity = 256;

    /**
     * Occupancy at which probabilistic shedding starts; 0 disables
     * shedding (only hard overflow remains). Must be <= ringCapacity.
     */
    size_t highWatermark = 192;

    /** Salt for the deterministic shed coin flips. */
    uint64_t seed = 0;
};

/** Outcome of one offer. */
enum class Admission : uint8_t
{
    Admitted,    ///< queued in the client's shard ring
    Shed,        ///< deterministically dropped above the watermark
    Overflow,    ///< refused, ring at capacity
    Quarantined, ///< refused at the door, client is quarantined
};

/** Display name of an admission outcome. */
const char *admissionName(Admission admission);

/** Sharded bounded queues plus the admission decision. */
class ShardedIngest
{
  public:
    /** Deterministic ingest accounting. */
    struct Stats
    {
        uint64_t offered = 0;
        uint64_t admitted = 0;
        uint64_t shed = 0;
        uint64_t overflow = 0;

        /** Highest single-ring occupancy observed. */
        uint64_t highWater = 0;
    };

    /** fatal() on a malformed config. */
    explicit ShardedIngest(const IngestConfig &config);

    /** Stable shard of one client. */
    int shardOf(uint64_t client) const;

    /**
     * Admit, shed or refuse one sample. On admission the sample is
     * stamped with @p tick and queued on its client's shard.
     * Quarantine is decided by the session layer before offering;
     * this method never returns Admission::Quarantined.
     */
    Admission offer(uint64_t tick, const StreamSample &sample);

    /** One shard's ring (drain side). */
    SampleRing &shard(int index) { return rings_[index]; }

    /** One shard's ring, read-only. */
    const SampleRing &shard(int index) const { return rings_[index]; }

    const IngestConfig &config() const { return config_; }
    const Stats &stats() const { return stats_; }

    /**
     * Serialize the admission counters (checkpoint.hh). Ring
     * contents are serialized per shard by the service so each
     * shard section stays self-contained.
     */
    void checkpointSave(CheckpointWriter &w) const;

    /** Restore the admission counters. */
    bool checkpointRestore(CheckpointReader &r);

  private:
    IngestConfig config_;
    std::vector<SampleRing> rings_;
    Stats stats_;
};

} // namespace stream
} // namespace tdp

#endif // TDP_STREAM_INGEST_HH

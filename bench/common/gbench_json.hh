/**
 * @file
 * Shared main() body for the google-benchmark binaries: runs every
 * registered benchmark with the repo's repetition policy
 * (--repetitions / TDP_BENCH_REPS, see bench_stats.hh) and writes the
 * per-repetition series as BENCH_<bench>.json so the perf trajectory
 * covers the microbenchmarks too.
 *
 * Header-only because each bench binary is its own translation unit
 * and the helper needs benchmark.h, which the tdp_bench_stats library
 * deliberately does not link.
 */

#ifndef TDP_BENCH_GBENCH_JSON_HH
#define TDP_BENCH_GBENCH_JSON_HH

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "bench_stats.hh"
#include "common/logging.hh"

namespace tdp {
namespace bench {

/** Marks one gbench counter as gated by the CI perf gate. */
struct GbenchGate
{
    /** Counter name as registered on the benchmark state. */
    std::string counter;

    /** "higher", "lower" or "exact" (see MetricSeries). */
    std::string direction = "lower";
};

namespace gbench_detail {

/** Collects per-repetition runs, then prints the console report. */
class SeriesReporter : public benchmark::ConsoleReporter
{
  public:
    /** name -> counter ("" = per-iteration seconds) -> series. */
    using Series =
        std::map<std::string, std::map<std::string, std::vector<double>>>;

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            if (run.run_type != Run::RT_Iteration)
                continue; // aggregates are recomputed by the writer
            auto &by_counter = series_[run.benchmark_name()];
            if (run.iterations > 0) {
                by_counter[""].push_back(
                    run.real_accumulated_time /
                    static_cast<double>(run.iterations));
            }
            for (const auto &[name, counter] : run.counters)
                by_counter[name].push_back(counter.value);
            if (order_.empty() ||
                order_.back() != run.benchmark_name())
                order_.push_back(run.benchmark_name());
        }
        benchmark::ConsoleReporter::ReportRuns(reports);
    }

    const Series &series() const { return series_; }

    /** Benchmark names in first-reported order. */
    const std::vector<std::string> &order() const { return order_; }

  private:
    Series series_;
    std::vector<std::string> order_;
};

} // namespace gbench_detail

/**
 * The shared main body: parse --repetitions, run all benchmarks with
 * that many repetitions, print the usual console report and write
 * BENCH_<bench>.json. Counters named in `gates` are marked for the
 * CI perf gate; timing metrics never are (machine-dependent).
 */
inline int
runGbenchMain(const std::string &bench, int argc, char **argv,
              const std::vector<GbenchGate> &gates)
{
    setLogLevelFromEnvironment();
    argc = applyRepetitionsFlag(argc, argv);

    // Re-pack argv with the repetition flags up front; later
    // user-provided --benchmark_* flags still win (last wins).
    std::vector<std::string> args;
    args.push_back(argc > 0 ? argv[0] : bench.c_str());
    args.push_back(formatString("--benchmark_repetitions=%d",
                                benchRepetitions()));
    args.push_back("--benchmark_report_aggregates_only=false");
    for (int i = 1; i < argc; ++i)
        args.push_back(argv[i]);
    std::vector<char *> cargs;
    for (std::string &arg : args)
        cargs.push_back(arg.data());
    int cargc = static_cast<int>(cargs.size());

    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;

    gbench_detail::SeriesReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);

    std::vector<MetricSeries> metrics;
    for (const std::string &name : reporter.order()) {
        const auto &by_counter = reporter.series().at(name);
        for (const auto &[counter, values] : by_counter) {
            MetricSeries m;
            m.name = counter.empty() ? name + ".seconds_per_iter"
                                     : name + "." + counter;
            m.values = values;
            m.unit = counter.empty() ? "s" : "";
            for (const GbenchGate &gate : gates) {
                if (gate.counter == counter) {
                    m.gate = true;
                    m.direction = gate.direction;
                }
            }
            metrics.push_back(std::move(m));
        }
    }
    if (!metrics.empty())
        writeBenchSeriesJson(bench, metrics);
    return 0;
}

} // namespace bench
} // namespace tdp

#endif // TDP_BENCH_GBENCH_JSON_HH

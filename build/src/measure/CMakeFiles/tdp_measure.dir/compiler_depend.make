# Empty compiler generated dependencies file for tdp_measure.
# This may be replaced when dependencies are built.

/**
 * @file
 * Per-level implementations of the elementwise lane kernels.
 *
 * The SSE2 variants ride the x86-64 baseline; the AVX2 variants are
 * compiled with a function-level target switch so the TU builds (and
 * the binary runs) on machines without AVX2. FMA is deliberately
 * never enabled: every level computes mul-then-add so the rounding
 * sequence matches the scalar fallback exactly.
 */

#include "simd/lane_math.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TDP_SIMD_X86 1
#else
#define TDP_SIMD_X86 0
#endif

namespace tdp {
namespace lanes {

namespace {

// ---------------------------------------------------------------
// Scalar level. Outputs are per-element, so a plain loop is already
// bitwise identical to any lane width.
// ---------------------------------------------------------------

void
addAssignScalar(double *dst, const double *src, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

void
addBroadcastScalar(double *dst, double v, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] += v;
}

void
subtractScalar(double *out, const double *cur, const double *prev,
               size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = cur[i] - prev[i];
}

void
wrappedDeltasScalar(double *out, const double *cur, const double *prev,
                    double span, size_t n)
{
    for (size_t i = 0; i < n; ++i) {
        const double delta = cur[i] - prev[i];
        // Keep the exact select (not delta + 0.0): adding zero would
        // quietly rewrite -0.0 to +0.0 and break bit-identity.
        out[i] = delta < 0.0 ? delta + span : delta;
    }
}

void
mulAddScalar(double *dst, const double *a, const double *b,
             const double *c, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = a[i] * b[i] + c[i];
}

#if TDP_SIMD_X86

// ---------------------------------------------------------------
// SSE2 level: 2-wide registers, part of the x86-64 baseline.
// ---------------------------------------------------------------

void
addAssignSse2(double *dst, const double *src, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d d = _mm_loadu_pd(dst + i);
        const __m128d s = _mm_loadu_pd(src + i);
        _mm_storeu_pd(dst + i, _mm_add_pd(d, s));
    }
    for (; i < n; ++i)
        dst[i] += src[i];
}

void
addBroadcastSse2(double *dst, double v, size_t n)
{
    const __m128d vv = _mm_set1_pd(v);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        _mm_storeu_pd(dst + i,
                      _mm_add_pd(_mm_loadu_pd(dst + i), vv));
    }
    for (; i < n; ++i)
        dst[i] += v;
}

void
subtractSse2(double *out, const double *cur, const double *prev,
             size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d c = _mm_loadu_pd(cur + i);
        const __m128d p = _mm_loadu_pd(prev + i);
        _mm_storeu_pd(out + i, _mm_sub_pd(c, p));
    }
    for (; i < n; ++i)
        out[i] = cur[i] - prev[i];
}

void
wrappedDeltasSse2(double *out, const double *cur, const double *prev,
                  double span, size_t n)
{
    const __m128d vspan = _mm_set1_pd(span);
    const __m128d zero = _mm_setzero_pd();
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d c = _mm_loadu_pd(cur + i);
        const __m128d p = _mm_loadu_pd(prev + i);
        const __m128d d = _mm_sub_pd(c, p);
        const __m128d wrapped = _mm_add_pd(d, vspan);
        // Bit-select on the compare mask; SSE2 has no blendv.
        const __m128d mask = _mm_cmplt_pd(d, zero);
        _mm_storeu_pd(out + i,
                      _mm_or_pd(_mm_and_pd(mask, wrapped),
                                _mm_andnot_pd(mask, d)));
    }
    for (; i < n; ++i) {
        const double delta = cur[i] - prev[i];
        out[i] = delta < 0.0 ? delta + span : delta;
    }
}

void
mulAddSse2(double *dst, const double *a, const double *b,
           const double *c, size_t n)
{
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d va = _mm_loadu_pd(a + i);
        const __m128d vb = _mm_loadu_pd(b + i);
        const __m128d vc = _mm_loadu_pd(c + i);
        _mm_storeu_pd(dst + i,
                      _mm_add_pd(_mm_mul_pd(va, vb), vc));
    }
    for (; i < n; ++i)
        dst[i] = a[i] * b[i] + c[i];
}

// ---------------------------------------------------------------
// AVX2 level: 4-wide registers behind a function-level target switch.
// ---------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

void
addAssignAvx2(double *dst, const double *src, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d d = _mm256_loadu_pd(dst + i);
        const __m256d s = _mm256_loadu_pd(src + i);
        _mm256_storeu_pd(dst + i, _mm256_add_pd(d, s));
    }
    for (; i < n; ++i)
        dst[i] += src[i];
}

void
addBroadcastAvx2(double *dst, double v, size_t n)
{
    const __m256d vv = _mm256_set1_pd(v);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(_mm256_loadu_pd(dst + i), vv));
    }
    for (; i < n; ++i)
        dst[i] += v;
}

void
subtractAvx2(double *out, const double *cur, const double *prev,
             size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d c = _mm256_loadu_pd(cur + i);
        const __m256d p = _mm256_loadu_pd(prev + i);
        _mm256_storeu_pd(out + i, _mm256_sub_pd(c, p));
    }
    for (; i < n; ++i)
        out[i] = cur[i] - prev[i];
}

void
wrappedDeltasAvx2(double *out, const double *cur, const double *prev,
                  double span, size_t n)
{
    const __m256d vspan = _mm256_set1_pd(span);
    const __m256d zero = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d c = _mm256_loadu_pd(cur + i);
        const __m256d p = _mm256_loadu_pd(prev + i);
        const __m256d d = _mm256_sub_pd(c, p);
        const __m256d wrapped = _mm256_add_pd(d, vspan);
        const __m256d mask = _mm256_cmp_pd(d, zero, _CMP_LT_OQ);
        _mm256_storeu_pd(out + i,
                         _mm256_blendv_pd(d, wrapped, mask));
    }
    for (; i < n; ++i) {
        const double delta = cur[i] - prev[i];
        out[i] = delta < 0.0 ? delta + span : delta;
    }
}

void
mulAddAvx2(double *dst, const double *a, const double *b,
           const double *c, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        const __m256d vc = _mm256_loadu_pd(c + i);
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(_mm256_mul_pd(va, vb), vc));
    }
    for (; i < n; ++i)
        dst[i] = a[i] * b[i] + c[i];
}

#pragma GCC pop_options

#endif // TDP_SIMD_X86

} // namespace

void
addAssignAt(SimdLevel level, double *dst, const double *src, size_t n)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return addAssignAvx2(dst, src, n);
    if (level == SimdLevel::Sse2)
        return addAssignSse2(dst, src, n);
#else
    (void)level;
#endif
    addAssignScalar(dst, src, n);
}

void
addAssign(double *dst, const double *src, size_t n)
{
    addAssignAt(activeSimdLevel(), dst, src, n);
}

void
addBroadcastAt(SimdLevel level, double *dst, double v, size_t n)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return addBroadcastAvx2(dst, v, n);
    if (level == SimdLevel::Sse2)
        return addBroadcastSse2(dst, v, n);
#else
    (void)level;
#endif
    addBroadcastScalar(dst, v, n);
}

void
addBroadcast(double *dst, double v, size_t n)
{
    addBroadcastAt(activeSimdLevel(), dst, v, n);
}

void
subtractAt(SimdLevel level, double *out, const double *cur,
           const double *prev, size_t n)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return subtractAvx2(out, cur, prev, n);
    if (level == SimdLevel::Sse2)
        return subtractSse2(out, cur, prev, n);
#else
    (void)level;
#endif
    subtractScalar(out, cur, prev, n);
}

void
subtract(double *out, const double *cur, const double *prev, size_t n)
{
    subtractAt(activeSimdLevel(), out, cur, prev, n);
}

void
wrappedDeltasAt(SimdLevel level, double *out, const double *cur,
                const double *prev, double span, size_t n)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return wrappedDeltasAvx2(out, cur, prev, span, n);
    if (level == SimdLevel::Sse2)
        return wrappedDeltasSse2(out, cur, prev, span, n);
#else
    (void)level;
#endif
    wrappedDeltasScalar(out, cur, prev, span, n);
}

void
wrappedDeltas(double *out, const double *cur, const double *prev,
              double span, size_t n)
{
    wrappedDeltasAt(activeSimdLevel(), out, cur, prev, span, n);
}

void
mulAddAt(SimdLevel level, double *dst, const double *a,
         const double *b, const double *c, size_t n)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return mulAddAvx2(dst, a, b, c, n);
    if (level == SimdLevel::Sse2)
        return mulAddSse2(dst, a, b, c, n);
#else
    (void)level;
#endif
    mulAddScalar(dst, a, b, c, n);
}

void
mulAdd(double *dst, const double *a, const double *b, const double *c,
       size_t n)
{
    mulAddAt(activeSimdLevel(), dst, a, b, c, n);
}

} // namespace lanes
} // namespace tdp

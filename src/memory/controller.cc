/**
 * @file
 * Implementation of the memory controller.
 */

#include "memory/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tdp {

namespace {

/** Validate the DIMM count before the bank is constructed. */
size_t
checkedDimmCount(int dimm_count)
{
    if (dimm_count <= 0)
        fatal("MemoryController: dimmCount must be positive");
    return static_cast<size_t>(dimm_count);
}

} // namespace

MemoryController::MemoryController(System &system, const std::string &name,
                                   FrontSideBus &bus, const Params &params)
    : SimObject(system, name), params_(params), bus_(bus),
      dimms_(params.dimm, checkedDimmCount(params.dimmCount))
{
    // Registered after the bus so the bus's totals for the quantum are
    // final when this object ticks (same phase, construction order).
    system.addTicked(this, TickPhase::Memory);
}

void
MemoryController::setCpuTrafficCharacter(double page_hit_rate)
{
    cpuPageHitRate_ = std::clamp(page_hit_rate, 0.0, 1.0);
}

void
MemoryController::tickUpdate(Tick /* now */, Tick quantum)
{
    const double dt = ticksToSeconds(quantum);

    // Split the quantum's finalised bus traffic into memory accesses.
    // Uncacheable transactions target I/O space, not DRAM.
    const double cpu_tx = bus_.prevOfKind(BusTxKind::DemandFill) +
                          bus_.prevOfKind(BusTxKind::Prefetch);
    const double writebacks = bus_.prevOfKind(BusTxKind::Writeback);
    const double dma_tx = bus_.prevOfKind(BusTxKind::Dma);

    // Demand fills and prefetches read DRAM; the write share of CPU
    // traffic reaches DRAM as writebacks, counted separately.
    const double dma_reads = dma_tx * params_.dmaReadFraction;
    const double dma_writes = dma_tx - dma_reads;

    const double reads = cpu_tx + dma_reads;
    const double writes = writebacks + dma_writes;

    // Blend the page-hit rate of the CPU and DMA streams by volume.
    const double total = cpu_tx + writebacks + dma_tx;
    double hit_rate = cpuPageHitRate_;
    if (total > 0.0) {
        hit_rate = (cpuPageHitRate_ * (cpu_tx + writebacks) +
                    params_.dmaPageHitRate * dma_tx) /
                   total;
    }

    const double per_dimm = 1.0 / static_cast<double>(dimms_.size());
    Watts power = params_.controllerIdlePower +
                  total * params_.controllerEnergyPerTx / dt;
    // Every DIMM sees the same traffic share, so the bank evaluates
    // the power chain once; the sum stays one sequential add per
    // DIMM to keep the rail power byte-identical to the per-module
    // loop it replaces.
    const Watts dimm_power = dimms_.advanceShared(
        reads * per_dimm, writes * per_dimm, hit_rate, dt);
    for (size_t d = 0; d < dimms_.size(); ++d)
        power += dimm_power;
    lastPower_ = power;
}

} // namespace tdp

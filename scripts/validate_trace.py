#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file (stdlib only).

Usage: validate_trace.py TRACE.json [--min-events N]

Checks the structure obs::SpanTracer writes: a traceEvents array of
complete ("ph": "X") events with numeric microsecond timestamps,
sorted by start time, plus the displayTimeUnit hint — i.e. exactly
what chrome://tracing and Perfetto load. Exits non-zero naming the
first violation.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def check_event(event, where):
    expect(isinstance(event, dict), f"{where} must be an object")
    for field in ("name", "cat"):
        expect(isinstance(event.get(field), str) and event[field],
               f"{where}.{field} must be a non-empty string")
    expect(event.get("ph") == "X",
           f"{where}.ph must be 'X' (complete event), got {event.get('ph')!r}")
    for field in ("ts", "dur"):
        value = event.get(field)
        expect(isinstance(value, (int, float)) and not isinstance(value, bool),
               f"{where}.{field} must be a number")
        expect(value >= 0, f"{where}.{field} must be non-negative")
    for field in ("pid", "tid"):
        expect(isinstance(event.get(field), int) and event[field] >= 1,
               f"{where}.{field} must be a positive integer")
    if "args" in event:
        expect(isinstance(event["args"], dict),
               f"{where}.args must be an object")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    parser.add_argument("--min-events", type=int, default=1)
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot load {args.trace}: {err}")

    expect(isinstance(doc, dict), "document must be a JSON object")
    expect(doc.get("displayTimeUnit") in ("ms", "ns"),
           "displayTimeUnit must be 'ms' or 'ns'")
    events = doc.get("traceEvents")
    expect(isinstance(events, list), "traceEvents must be a list")
    expect(len(events) >= args.min_events,
           f"expected >= {args.min_events} events, found {len(events)}")

    last_ts = None
    categories = {}
    for i, event in enumerate(events):
        check_event(event, f"traceEvents[{i}]")
        ts = event["ts"]
        if last_ts is not None:
            expect(ts >= last_ts,
                   f"traceEvents[{i}] not sorted by ts ({ts} < {last_ts})")
        last_ts = ts
        categories[event["cat"]] = categories.get(event["cat"], 0) + 1

    summary = ", ".join(f"{cat}:{n}" for cat, n in sorted(categories.items()))
    print(f"validate_trace: {args.trace} OK ({len(events)} events; {summary})")


if __name__ == "__main__":
    main()

/**
 * @file
 * Hierarchical simulation-wide statistics registry (gem5-style).
 *
 * Components register named statistics once (dotted hierarchical
 * paths, e.g. "sim.events.processed") and then update them through
 * small integer ids. Three kinds are supported:
 *
 *  - scalar counters: monotonically accumulated uint64 sums;
 *  - gauges: last-written double values (a global sequence stamp
 *    decides "last" across threads);
 *  - histograms: log2-bucketed uint64 distributions (bucket 0 holds
 *    the value 0, bucket b >= 1 holds [2^(b-1), 2^b - 1]).
 *
 * Concurrency model: every updating thread owns a lock-free shard.
 * Updates are relaxed atomic operations on the shard's own slots -
 * no locks, no allocation in steady state - so `--jobs N` experiment
 * workers never contend. snapshot() merges all shards under the
 * registry mutex; registration is likewise a cold, mutex-guarded
 * path. With the registry disabled (the default) every update is a
 * single relaxed load and branch, and bench output is untouched.
 */

#ifndef TDP_OBS_STATS_REGISTRY_HH
#define TDP_OBS_STATS_REGISTRY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace tdp {
namespace obs {

/** What a registered statistic accumulates. */
enum class StatKind : uint8_t { Counter, Gauge, Histogram };

/** Opaque handle for the hot-path update calls. */
struct StatId
{
    StatKind kind = StatKind::Counter;

    /** Index within the kind's slot space; ~0 means invalid. */
    uint32_t index = invalidIndex;

    static constexpr uint32_t invalidIndex = 0xffffffff;

    bool valid() const { return index != invalidIndex; }
};

/** Log2 histogram bucket count (covers the full uint64 range). */
constexpr int histogramBuckets = 65;

/** Bucket index of one observed value (0 -> 0, else bit width). */
constexpr int
histogramBucketOf(uint64_t value)
{
    int bucket = 0;
    while (value != 0) {
        ++bucket;
        value >>= 1;
    }
    return bucket;
}

/** Inclusive lower bound of one bucket. */
constexpr uint64_t
histogramBucketLow(int bucket)
{
    return bucket == 0 ? 0 : uint64_t(1) << (bucket - 1);
}

/** Sharded, hierarchical stats store. */
class StatsRegistry
{
  public:
    /** Merged view of one histogram. */
    struct HistogramData
    {
        std::array<uint64_t, histogramBuckets> buckets{};
        uint64_t count = 0;
        uint64_t sum = 0;
    };

    /** Merged view of every registered statistic. */
    struct Snapshot
    {
        std::map<std::string, uint64_t> counters;
        std::map<std::string, double> gauges;
        std::map<std::string, HistogramData> histograms;
    };

    StatsRegistry() = default;

    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    /** The process-wide registry used by the instrumented layers. */
    static StatsRegistry &global();

    /**
     * Turn collection on or off. Disabled updates return after one
     * relaxed load; registration is always allowed so ids can be
     * resolved once regardless of the runtime switch.
     */
    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** True when updates are being collected. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Register (or look up) a statistic by hierarchical path. Cold
     * path, thread-safe; re-registering an existing path returns the
     * same id, so independent Server instances fold into one line.
     * Registering an existing path as a different kind is fatal.
     * @{
     */
    StatId counter(const std::string &path);
    StatId gauge(const std::string &path);
    StatId histogram(const std::string &path);
    /** @} */

    /** Hot-path updates (no-ops when disabled or id invalid). @{ */
    void add(StatId id, uint64_t delta = 1);
    void set(StatId id, double value);
    void observe(StatId id, uint64_t value);
    /** @} */

    /** Cold-path register-and-update conveniences (publish time). @{ */
    void addNamed(const std::string &path, uint64_t delta);
    void setNamed(const std::string &path, double value);
    void observeNamed(const std::string &path, uint64_t value);
    /** @} */

    /** Merge every shard into one consistent view. */
    Snapshot snapshot() const;

    /** Zero every slot of every shard (registrations survive). */
    void reset();

    /** Registered statistics across all kinds. */
    size_t registeredCount() const;

    /** Emit a snapshot as one JSON object (counters/gauges/histograms). */
    static void writeSnapshotJson(std::ostream &os,
                                  const Snapshot &snapshot);

    /** Same, as a value within an in-flight JSON document. */
    static void writeSnapshotJson(class JsonWriter &json,
                                  const Snapshot &snapshot);

  private:
    /** Slots per allocation chunk; chunks never move once published. */
    static constexpr uint32_t chunkSize = 256;

    /** Maximum chunks per kind (chunkSize * maxChunks stats). */
    static constexpr uint32_t maxChunks = 64;

    /** One histogram's slots: buckets + count + sum. */
    struct HistogramSlots
    {
        std::array<std::atomic<uint64_t>, histogramBuckets> buckets{};
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sum{0};
    };

    /** One gauge's slots: value bits + global write stamp. */
    struct GaugeSlot
    {
        std::atomic<uint64_t> bits{0};
        std::atomic<uint64_t> stamp{0};
    };

    template <typename Slot>
    struct Chunk
    {
        std::array<Slot, chunkSize> slots{};
    };

    /**
     * Fixed directory of lazily-published chunks: the hot path loads
     * a chunk pointer with acquire order and indexes into it, so
     * growth never invalidates concurrent readers.
     */
    template <typename Slot>
    struct ChunkedSlots
    {
        std::array<std::atomic<Chunk<Slot> *>, maxChunks> chunks{};

        ~ChunkedSlots()
        {
            for (auto &c : chunks)
                delete c.load(std::memory_order_relaxed);
        }

        /** Slot lookup; nullptr when the chunk is unpublished. */
        Slot *
        find(uint32_t index)
        {
            const uint32_t chunk = index / chunkSize;
            if (chunk >= maxChunks)
                return nullptr;
            Chunk<Slot> *c =
                chunks[chunk].load(std::memory_order_acquire);
            return c ? &c->slots[index % chunkSize] : nullptr;
        }

        /** Publish the chunk holding index (cold, under growMutex). */
        Slot *
        grow(uint32_t index, std::mutex &grow_mutex)
        {
            const uint32_t chunk = index / chunkSize;
            if (chunk >= maxChunks)
                return nullptr;
            std::lock_guard<std::mutex> lock(grow_mutex);
            Chunk<Slot> *c =
                chunks[chunk].load(std::memory_order_acquire);
            if (!c) {
                c = new Chunk<Slot>();
                chunks[chunk].store(c, std::memory_order_release);
            }
            return &c->slots[index % chunkSize];
        }
    };

    /** Per-thread slot storage; owned by the registry, never freed
     *  before it so late snapshots see exited workers' updates. */
    struct Shard
    {
        ChunkedSlots<std::atomic<uint64_t>> counters;
        ChunkedSlots<GaugeSlot> gauges;
        ChunkedSlots<HistogramSlots> histograms;
        std::mutex growMutex;
    };

    /** This thread's shard, created and registered on first use. */
    Shard &localShard();

    StatId registerStat(const std::string &path, StatKind kind);

    std::atomic<bool> enabled_{false};

    mutable std::mutex mutex_;
    struct Def
    {
        std::string path;
        StatKind kind;
        uint32_t index;
    };
    std::vector<Def> defs_;
    std::unordered_map<std::string, size_t> defsByPath_;
    std::array<uint32_t, 3> nextIndex_{};
    std::vector<std::unique_ptr<Shard>> shards_;

    /** Global gauge write ordering. */
    std::atomic<uint64_t> gaugeStamp_{0};

    /** Process-unique id backing the per-thread shard cache. */
    std::atomic<uint64_t> registryEpoch_{0};
};

} // namespace obs
} // namespace tdp

#endif // TDP_OBS_STATS_REGISTRY_HH

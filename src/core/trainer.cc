/**
 * @file
 * Implementation of the model trainer.
 */

#include "core/trainer.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/span_tracer.hh"
#include "obs/stats_registry.hh"

namespace tdp {

uint64_t
TrainingReport::totalDiscarded() const
{
    uint64_t acc = 0;
    for (const RailCleaning &rail : rails)
        acc += rail.discarded();
    return acc;
}

std::string
TrainingReport::describe() const
{
    std::string text;
    for (int r = 0; r < numRails; ++r) {
        const RailCleaning &c = rails[static_cast<size_t>(r)];
        text += formatString(
            "%-8s kept %llu, discarded %llu non-finite + %llu "
            "outlier\n",
            railName(static_cast<Rail>(r)),
            static_cast<unsigned long long>(c.kept),
            static_cast<unsigned long long>(c.discardedNonFinite),
            static_cast<unsigned long long>(c.discardedOutlier));
    }
    return text;
}

namespace {

/** Comma-joined rail names with registered traces, or "none". */
std::string
registeredRails(const std::map<int, SampleTrace> &traces)
{
    std::string names;
    for (const auto &entry : traces) {
        if (!names.empty())
            names += ", ";
        names += railName(static_cast<Rail>(entry.first));
    }
    return names.empty() ? std::string("none") : names;
}

} // namespace

void
ModelTrainer::setTrainingTrace(Rail rail, const SampleTrace &trace)
{
    if (trace.empty())
        fatal("ModelTrainer: empty training trace for %s",
              railName(rail));
    traces_[static_cast<int>(rail)] = trace;
}

bool
ModelTrainer::complete() const
{
    for (int r = 0; r < numRails; ++r)
        if (traces_.find(r) == traces_.end())
            return false;
    return true;
}

const SampleTrace &
ModelTrainer::trainingTrace(Rail rail) const
{
    auto it = traces_.find(static_cast<int>(rail));
    if (it == traces_.end())
        fatal("ModelTrainer: no training trace registered for rail "
              "%s; registered rails: %s. Register one with "
              "setTrainingTrace(Rail::%s, trace).",
              railName(rail), registeredRails(traces_).c_str(),
              railName(rail));
    return it->second;
}

SampleTrace
ModelTrainer::cleanTrace(const SampleTrace &trace, Rail rail,
                         TrainingReport::RailCleaning &counts) const
{
    SampleTrace clean;
    for (const AlignedSample &sample : trace.samples()) {
        const double w = sample.measured(rail);
        if (!std::isfinite(w)) {
            ++counts.discardedNonFinite;
            continue;
        }
        if (w < policy_.minPlausibleWatts ||
            w > policy_.maxPlausibleWatts) {
            ++counts.discardedOutlier;
            continue;
        }
        clean.add(AlignedSample(sample));
        ++counts.kept;
    }
    return clean;
}

TrainingReport
ModelTrainer::train(SystemPowerEstimator &estimator) const
{
    TrainingReport report;
    for (int r = 0; r < numRails; ++r) {
        const Rail rail = static_cast<Rail>(r);
        auto it = traces_.find(r);
        if (it == traces_.end())
            fatal("ModelTrainer: no training trace registered for "
                  "rail %s; registered rails: %s. Register one with "
                  "setTrainingTrace(Rail::%s, trace).",
                  railName(rail), registeredRails(traces_).c_str(),
                  railName(rail));
        auto &counts = report.rails[static_cast<size_t>(r)];
        obs::TraceSpan span(
            "train", std::string("fit:") + railName(rail));
        const SampleTrace clean =
            cleanTrace(it->second, rail, counts);
        if (clean.empty())
            fatal("ModelTrainer: every sample of the %s training "
                  "trace was discarded (%llu non-finite, %llu "
                  "outlier); the measurement run is unusable",
                  railName(rail),
                  static_cast<unsigned long long>(
                      counts.discardedNonFinite),
                  static_cast<unsigned long long>(
                      counts.discardedOutlier));
        if (counts.discarded() > 0)
            warn("ModelTrainer: discarded %llu of %llu %s training "
                 "samples (%llu non-finite, %llu outlier)",
                 static_cast<unsigned long long>(counts.discarded()),
                 static_cast<unsigned long long>(it->second.size()),
                 railName(rail),
                 static_cast<unsigned long long>(
                     counts.discardedNonFinite),
                 static_cast<unsigned long long>(
                     counts.discardedOutlier));
        estimator.trainRail(rail, clean);
        span.arg("kept", static_cast<double>(counts.kept));
        auto &reg = obs::StatsRegistry::global();
        if (reg.enabled()) {
            const std::string prefix =
                std::string("train.") + railName(rail);
            reg.addNamed(prefix + ".kept", counts.kept);
            reg.addNamed(prefix + ".discarded", counts.discarded());
        }
    }
    return report;
}

} // namespace tdp

# Empty compiler generated dependencies file for table1_avg_power.
# This may be replaced when dependencies are built.

/**
 * @file
 * Implementation of the error metrics.
 */

#include "stats/metrics.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/running_stats.hh"

namespace tdp {

namespace {

void
checkSameLength(const std::vector<double> &a, const std::vector<double> &b,
                const char *who)
{
    if (a.size() != b.size())
        panic("%s: series lengths differ (%zu vs %zu)", who, a.size(),
              b.size());
}

void
checkFinite(const std::vector<double> &series, const char *who)
{
    for (size_t i = 0; i < series.size(); ++i) {
        if (!std::isfinite(series[i]))
            fatal("%s: non-finite value at sample %zu", who, i);
    }
}

} // namespace

double
averageError(const std::vector<double> &modeled,
             const std::vector<double> &measured, uint64_t *discarded)
{
    checkSameLength(modeled, measured, "averageError");
    double acc = 0.0;
    size_t used = 0;
    for (size_t i = 0; i < modeled.size(); ++i) {
        if (!std::isfinite(modeled[i]) || !std::isfinite(measured[i])) {
            if (discarded)
                ++*discarded;
            continue;
        }
        if (measured[i] == 0.0)
            continue;
        acc += std::fabs(modeled[i] - measured[i]) /
               std::fabs(measured[i]);
        ++used;
    }
    return used ? acc / static_cast<double>(used) : 0.0;
}

double
averageErrorAboveDc(const std::vector<double> &modeled,
                    const std::vector<double> &measured, double dc_offset,
                    uint64_t *discarded)
{
    checkSameLength(modeled, measured, "averageErrorAboveDc");
    double acc = 0.0;
    size_t used = 0;
    for (size_t i = 0; i < modeled.size(); ++i) {
        if (!std::isfinite(modeled[i]) || !std::isfinite(measured[i])) {
            if (discarded)
                ++*discarded;
            continue;
        }
        const double meas = measured[i] - dc_offset;
        if (meas <= 0.0)
            continue;
        const double model = modeled[i] - dc_offset;
        acc += std::fabs(model - meas) / meas;
        ++used;
    }
    return used ? acc / static_cast<double>(used) : 0.0;
}

double
rmsError(const std::vector<double> &modeled,
         const std::vector<double> &measured)
{
    checkSameLength(modeled, measured, "rmsError");
    checkFinite(modeled, "rmsError");
    checkFinite(measured, "rmsError");
    if (modeled.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < modeled.size(); ++i) {
        const double d = modeled[i] - measured[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(modeled.size()));
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    checkSameLength(a, b, "pearson");
    checkFinite(a, "pearson");
    checkFinite(b, "pearson");
    RunningCovariance cov;
    for (size_t i = 0; i < a.size(); ++i)
        cov.add(a[i], b[i]);
    return cov.correlation();
}

double
rSquared(const std::vector<double> &modeled,
         const std::vector<double> &measured)
{
    checkSameLength(modeled, measured, "rSquared");
    checkFinite(modeled, "rSquared");
    checkFinite(measured, "rSquared");
    if (modeled.empty())
        return 0.0;
    RunningStats meas_stats;
    for (double v : measured)
        meas_stats.add(v);
    const double mean = meas_stats.mean();
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (size_t i = 0; i < modeled.size(); ++i) {
        ss_res += (measured[i] - modeled[i]) * (measured[i] - modeled[i]);
        ss_tot += (measured[i] - mean) * (measured[i] - mean);
    }
    return ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
}

} // namespace tdp

/**
 * @file
 * Tests for the sharded ingest admission path: shard stability,
 * watermark shedding determinism, hard overflow and accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "stream/ingest.hh"

namespace tdp {
namespace stream {
namespace {

StreamSample
sampleFor(uint64_t client, uint64_t seq)
{
    StreamSample s;
    s.client = client;
    s.seq = seq;
    return s;
}

TEST(ShardedIngest, ShardAssignmentIsStable)
{
    IngestConfig cfg;
    cfg.shards = 8;
    cfg.seed = 42;
    ShardedIngest a(cfg), b(cfg);
    for (uint64_t client = 0; client < 100; ++client) {
        const int shard = a.shardOf(client);
        EXPECT_GE(shard, 0);
        EXPECT_LT(shard, cfg.shards);
        EXPECT_EQ(shard, b.shardOf(client));
    }
}

TEST(ShardedIngest, AdmitsBelowWatermark)
{
    IngestConfig cfg;
    cfg.shards = 1;
    cfg.ringCapacity = 16;
    cfg.highWatermark = 8;
    ShardedIngest ingest(cfg);
    for (uint64_t seq = 1; seq <= 8; ++seq) {
        EXPECT_EQ(ingest.offer(0, sampleFor(1, seq)),
                  Admission::Admitted);
    }
    EXPECT_EQ(ingest.stats().admitted, 8u);
    EXPECT_EQ(ingest.stats().shed, 0u);
    EXPECT_EQ(ingest.stats().highWater, 8u);
}

TEST(ShardedIngest, OverflowsAtCapacity)
{
    IngestConfig cfg;
    cfg.shards = 1;
    cfg.ringCapacity = 4;
    cfg.highWatermark = 0; // disable shedding: overflow only
    ShardedIngest ingest(cfg);
    for (uint64_t seq = 1; seq <= 4; ++seq) {
        EXPECT_EQ(ingest.offer(0, sampleFor(1, seq)),
                  Admission::Admitted);
    }
    EXPECT_EQ(ingest.offer(0, sampleFor(1, 5)), Admission::Overflow);
    EXPECT_EQ(ingest.stats().overflow, 1u);
    EXPECT_EQ(ingest.shard(0).size(), 4u);
}

TEST(ShardedIngest, ShedDecisionIsAPureFunctionOfIdentity)
{
    IngestConfig cfg;
    cfg.shards = 1;
    cfg.ringCapacity = 32;
    cfg.highWatermark = 8;
    cfg.seed = 7;

    // Drive two independent instances through the same offered
    // sequence: the admit/shed pattern must match sample for sample.
    ShardedIngest a(cfg), b(cfg);
    uint64_t shed = 0;
    for (uint64_t seq = 1; seq <= 32; ++seq) {
        const Admission ra = a.offer(0, sampleFor(3, seq));
        const Admission rb = b.offer(0, sampleFor(3, seq));
        EXPECT_EQ(ra, rb) << "seq " << seq;
        if (ra == Admission::Shed)
            ++shed;
    }
    // The ramp is linear from the watermark to capacity; with 32
    // offers into a 32-slot ring some sheds must have happened.
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(a.stats().shed, shed);
    EXPECT_EQ(a.stats().admitted + a.stats().shed +
                  a.stats().overflow,
              a.stats().offered);
}

TEST(ShardedIngest, ShedRampReachesCertaintyNearCapacity)
{
    IngestConfig cfg;
    cfg.shards = 1;
    cfg.ringCapacity = 8;
    cfg.highWatermark = 2;
    ShardedIngest ingest(cfg);
    // Keep offering without draining; every sample is eventually
    // admitted, shed or overflowed but the ring never exceeds its
    // capacity and no state is silently evicted.
    for (uint64_t seq = 1; seq <= 100; ++seq)
        ingest.offer(0, sampleFor(9, seq));
    EXPECT_LE(ingest.shard(0).size(), 8u);
    EXPECT_EQ(ingest.stats().offered, 100u);
    EXPECT_GT(ingest.stats().shed, 0u);
    EXPECT_EQ(ingest.stats().admitted + ingest.stats().shed +
                  ingest.stats().overflow,
              100u);
}

TEST(ShardedIngest, StampsEnqueueTick)
{
    IngestConfig cfg;
    cfg.shards = 1;
    cfg.ringCapacity = 4;
    cfg.highWatermark = 0;
    ShardedIngest ingest(cfg);
    ASSERT_EQ(ingest.offer(17, sampleFor(1, 1)), Admission::Admitted);
    StreamSample out;
    ASSERT_TRUE(ingest.shard(0).pop(out));
    EXPECT_EQ(out.enqueueTick, 17u);
}

TEST(ShardedIngest, MalformedConfigIsFatal)
{
    IngestConfig bad;
    bad.shards = 0;
    EXPECT_THROW(ShardedIngest ingest(bad), FatalError);

    IngestConfig watermark;
    watermark.ringCapacity = 8;
    watermark.highWatermark = 9;
    EXPECT_THROW(ShardedIngest ingest(watermark), FatalError);
}

} // namespace
} // namespace stream
} // namespace tdp

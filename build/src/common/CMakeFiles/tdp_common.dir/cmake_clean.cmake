file(REMOVE_RECURSE
  "CMakeFiles/tdp_common.dir/logging.cc.o"
  "CMakeFiles/tdp_common.dir/logging.cc.o.d"
  "CMakeFiles/tdp_common.dir/random.cc.o"
  "CMakeFiles/tdp_common.dir/random.cc.o.d"
  "CMakeFiles/tdp_common.dir/running_stats.cc.o"
  "CMakeFiles/tdp_common.dir/running_stats.cc.o.d"
  "CMakeFiles/tdp_common.dir/strings.cc.o"
  "CMakeFiles/tdp_common.dir/strings.cc.o.d"
  "CMakeFiles/tdp_common.dir/table.cc.o"
  "CMakeFiles/tdp_common.dir/table.cc.o.d"
  "libtdp_common.a"
  "libtdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH_*.json trajectory.

Compares freshly produced bench JSON (format_version 2, see
bench/common/bench_stats.hh) against the baselines committed at the
repo root. Only metrics marked "gate": true participate: those are
machine-portable by construction (deterministic counters and
scalar-vs-SIMD ratios), never wall-clock seconds.

Gate rule per metric, driven by its "direction":
  higher:  fail when current mean < baseline mean - threshold
  lower:   fail when current mean > baseline mean + threshold
  exact:   fail on any mean change beyond epsilon
  ceiling: fail when current mean > the baseline's hard "limit"
           (carried in the baseline file, never re-derived from
           noise - used for the telemetry overhead ratio)
with threshold = max(k_sigma * baseline stddev, rel_tol * |baseline
mean|). The stddev term absorbs run-to-run noise measured at baseline
time; the relative floor absorbs cross-machine variation (CI runners
are not the machines baselines were recorded on).

The gate never stops at the first problem: every bench file and
every gated metric is checked and reported in one run, so a single
CI pass shows the complete damage (an unreadable or wrong-format
file counts as that bench's failure and the remaining benches are
still checked).

Exit status: 0 when every gated metric passes, 1 on any regression
or unreadable file, 2 on usage errors.
"""

import argparse
import glob
import json
import math
import os
import sys

EXACT_EPS = 1e-9


def load(path):
    """Returns (doc, None), or (None, reason) on a bad file.

    Load problems are per-bench failures, not process aborts: one
    corrupt file must not hide regressions in the benches after it.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        return None, f"cannot read {path}: {err}"
    if doc.get("format_version") != 2:
        return None, (f"{path}: unsupported format_version "
                      f"{doc.get('format_version')!r} (want 2)")
    return doc, None


def metric_map(doc):
    return {m["name"]: m for m in doc.get("metrics", [])}


def machine_line(doc):
    machine = doc.get("machine", {})
    return "{} x{} / {} @ {}".format(
        machine.get("cpu", "?"), machine.get("cores", "?"),
        machine.get("compiler", "?"), machine.get("git_sha", "?"))


def check_bench(base_doc, cur_doc, k_sigma, rel_tol, verbose):
    """Returns (n_checked, failures) for one bench file pair."""
    failures = []
    checked = 0
    cur_metrics = metric_map(cur_doc)
    for name, base in metric_map(base_doc).items():
        if not base.get("gate", False):
            continue
        checked += 1
        cur = cur_metrics.get(name)
        if cur is None:
            failures.append(
                f"{name}: gated in the baseline but missing from "
                f"the current run - if the metric was renamed or "
                f"removed, refresh the committed baseline in the "
                f"same commit")
            continue
        try:
            base_mean = float(base["mean"])
            cur_mean = float(cur["mean"])
        except (KeyError, TypeError, ValueError) as err:
            failures.append(
                f"{name}: malformed metric (missing or non-numeric "
                f"'mean': {err!r}) - regenerate the JSON with the "
                f"current bench binary")
            continue
        direction = base.get("direction", "lower")
        if direction == "exact":
            if math.isnan(cur_mean) or \
                    abs(cur_mean - base_mean) > EXACT_EPS:
                failures.append(
                    f"{name}: expected exactly {base_mean:g}, "
                    f"got {cur_mean:g}")
            elif verbose:
                print(f"    ok   {name}: {cur_mean:g} (exact)")
            continue
        if direction == "ceiling":
            try:
                limit = float(base["limit"])
            except (KeyError, TypeError, ValueError) as err:
                failures.append(
                    f"{name}: ceiling metric lacks a numeric "
                    f"'limit' ({err!r}) - regenerate the baseline "
                    f"with the current bench binary")
                continue
            if math.isnan(limit):
                failures.append(f"{name}: ceiling limit is NaN")
                continue
            if math.isnan(cur_mean) or cur_mean > limit:
                failures.append(
                    f"{name}: exceeded the hard ceiling "
                    f"(limit {limit:g}, current {cur_mean:g})")
            elif verbose:
                print(f"    ok   {name}: {cur_mean:g} "
                      f"(ceiling {limit:g})")
            continue
        threshold = max(k_sigma * float(base.get("stddev", 0.0)),
                        rel_tol * abs(base_mean))
        if direction == "higher":
            bad = cur_mean < base_mean - threshold
            verdict = "fell"
        elif direction == "lower":
            bad = cur_mean > base_mean + threshold
            verdict = "rose"
        else:
            failures.append(
                f"{name}: unknown direction {direction!r}")
            continue
        if math.isnan(cur_mean) or bad:
            failures.append(
                f"{name}: {verdict} beyond threshold "
                f"(baseline {base_mean:g} +/- {threshold:g}, "
                f"current {cur_mean:g})")
        elif verbose:
            print(f"    ok   {name}: {cur_mean:g} "
                  f"(baseline {base_mean:g} +/- {threshold:g}, "
                  f"{direction})")
    return checked, failures


def run_gate(baseline_dir, current_dir, k_sigma, rel_tol, verbose):
    baselines = sorted(
        glob.glob(os.path.join(baseline_dir, "BENCH_*.json")))
    if not baselines:
        raise SystemExit(
            f"error: no BENCH_*.json baselines in {baseline_dir}")

    total_checked = 0
    total_failures = 0
    for baseline_path in baselines:
        name = os.path.basename(baseline_path)
        current_path = os.path.join(current_dir, name)
        print(f"== {name}")
        if not os.path.exists(current_path):
            print(f"    FAIL baseline {name} has no counterpart in "
                  f"the current run ({current_path} not found).\n"
                  f"         If the bench still exists, its CI run "
                  f"step is missing or failed upstream; if the "
                  f"bench was removed, delete the committed "
                  f"baseline {name} in the same commit.")
            total_failures += 1
            continue
        base_doc, base_err = load(baseline_path)
        cur_doc, cur_err = load(current_path)
        if base_err or cur_err:
            print(f"    FAIL {base_err or cur_err} - regenerate "
                  f"the file; the remaining benches were still "
                  f"checked")
            total_failures += 1
            continue
        if machine_line(base_doc) != machine_line(cur_doc):
            print(f"    note machine changed:")
            print(f"         baseline: {machine_line(base_doc)}")
            print(f"         current:  {machine_line(cur_doc)}")
        checked, failures = check_bench(
            base_doc, cur_doc, k_sigma, rel_tol, verbose)
        total_checked += checked
        total_failures += len(failures)
        for failure in failures:
            print(f"    FAIL {failure}")
        if not failures:
            print(f"    {checked} gated metric(s) ok")

    # The reverse direction: a fresh result with no committed
    # baseline means a new bench joined the suite but nothing will
    # ever gate it - fail with the recipe instead of silently
    # passing forever.
    known = {os.path.basename(p) for p in baselines}
    for current_path in sorted(
            glob.glob(os.path.join(current_dir, "BENCH_*.json"))):
        name = os.path.basename(current_path)
        if name in known:
            continue
        print(f"== {name}")
        print(f"    FAIL current run produced {name} but no "
              f"baseline is committed.\n"
              f"         Commit a baseline: run the bench with "
              f"--repetitions 5 on a quiet machine and commit the "
              f"resulting {name} at the repo root (next to the "
              f"other BENCH_*.json files).")
        total_failures += 1

    print(f"== {total_checked} gated metric(s) checked, "
          f"{total_failures} regression(s)")
    return 1 if total_failures else 0


def self_test():
    """Exercise the gate end-to-end against synthetic dirs.

    Covers the failure modes CI relies on: a clean pass, an exact
    metric drifting, a baseline whose current result is missing, a
    new current result with no baseline, and a malformed metric -
    each must fail with a message, never a traceback.
    """
    import contextlib
    import io
    import tempfile

    def doc(mean=5.0, name="ops", gate=True, drop_mean=False,
            direction="exact", limit=None):
        metric = {"name": name, "unit": "count", "gate": gate,
                  "direction": direction, "mean": mean,
                  "stddev": 0.0, "min": mean, "max": mean,
                  "values": [mean]}
        if limit is not None:
            metric["limit"] = limit
        if drop_mean:
            del metric["mean"]
        return {"bench": "self", "format_version": 2,
                "machine": {"cpu": "x", "cores": 1, "compiler": "y",
                            "git_sha": "z"},
                "repetitions": 1, "metrics": [metric]}

    def write(directory, filename, payload):
        with open(os.path.join(directory, filename), "w",
                  encoding="utf-8") as fh:
            json.dump(payload, fh)

    def gate(base_dir, cur_dir):
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            status = run_gate(base_dir, cur_dir, 3.0, 0.30, False)
        return status, out.getvalue()

    failures = []

    def expect(label, status, want_status, text, *want_text):
        if status != want_status:
            failures.append(
                f"{label}: exit {status}, want {want_status}")
        for fragment in want_text:
            if fragment not in text:
                failures.append(
                    f"{label}: output lacks {fragment!r}")

    with tempfile.TemporaryDirectory() as root:
        base = os.path.join(root, "base")
        cur = os.path.join(root, "cur")
        os.mkdir(base)
        os.mkdir(cur)

        write(base, "BENCH_a.json", doc())
        write(cur, "BENCH_a.json", doc())
        status, text = gate(base, cur)
        expect("clean pass", status, 0, text, "1 gated metric(s) ok")

        write(cur, "BENCH_a.json", doc(mean=6.0))
        status, text = gate(base, cur)
        expect("exact drift", status, 1, text, "expected exactly 5")

        write(cur, "BENCH_a.json", doc())
        write(base, "BENCH_gone.json", doc(name="x"))
        status, text = gate(base, cur)
        expect("missing current", status, 1, text,
               "no counterpart in the current run",
               "delete the committed baseline")
        os.remove(os.path.join(base, "BENCH_gone.json"))

        write(cur, "BENCH_new.json", doc(name="fresh"))
        status, text = gate(base, cur)
        expect("missing baseline", status, 1, text,
               "no baseline is committed", "Commit a baseline")
        os.remove(os.path.join(cur, "BENCH_new.json"))

        write(base, "BENCH_a.json", doc(drop_mean=True))
        status, text = gate(base, cur)
        expect("malformed metric", status, 1, text,
               "malformed metric")

        # Ceiling metrics: under the baseline's hard limit passes,
        # over it fails, and a ceiling baseline without a limit is
        # malformed - the limit is carried in the file, never
        # re-derived from noise.
        write(base, "BENCH_a.json",
              doc(mean=1.0, direction="ceiling", limit=1.05))
        write(cur, "BENCH_a.json",
              doc(mean=1.02, direction="ceiling", limit=1.05))
        status, text = gate(base, cur)
        expect("ceiling pass", status, 0, text,
               "1 gated metric(s) ok")

        write(cur, "BENCH_a.json",
              doc(mean=1.2, direction="ceiling", limit=1.05))
        status, text = gate(base, cur)
        expect("ceiling breach", status, 1, text,
               "exceeded the hard ceiling")

        write(base, "BENCH_a.json", doc(mean=1.0,
                                        direction="ceiling"))
        status, text = gate(base, cur)
        expect("ceiling without limit", status, 1, text,
               "lacks a numeric 'limit'")
        write(cur, "BENCH_a.json", doc())

        # Everything in one run: a corrupt baseline file plus two
        # independently drifted metrics in another bench must all
        # appear in a single report - the gate never stops at the
        # first failure.
        write(base, "BENCH_a.json", doc())
        with open(os.path.join(base, "BENCH_broken.json"), "w",
                  encoding="utf-8") as fh:
            fh.write("{not json")
        write(cur, "BENCH_broken.json", doc())

        def two_metrics(first_mean, second_mean):
            payload = doc(mean=first_mean)
            second = dict(payload["metrics"][0])
            second.update(name="ops2", mean=second_mean,
                          min=second_mean, max=second_mean,
                          values=[second_mean])
            payload["metrics"].append(second)
            return payload

        write(base, "BENCH_multi.json", two_metrics(5.0, 7.0))
        write(cur, "BENCH_multi.json", two_metrics(6.0, 8.0))
        status, text = gate(base, cur)
        expect("all failures in one run", status, 1, text,
               "cannot read", "expected exactly 5",
               "expected exactly 7", "3 regression(s)")

    if failures:
        for failure in failures:
            print(f"self-test FAIL: {failure}")
        return 1
    print("self-test ok: 9 scenario(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Gate current bench JSON against the committed "
                    "baselines.")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory with committed BENCH_*.json "
                             "(default: repo root)")
    parser.add_argument("--current-dir",
                        help="directory with freshly produced "
                             "BENCH_*.json")
    parser.add_argument("--k-sigma", type=float, default=3.0,
                        help="noise multiplier on baseline stddev "
                             "(default 3)")
    parser.add_argument("--rel-tol", type=float, default=0.30,
                        help="relative threshold floor for "
                             "cross-machine variation (default 0.30)")
    parser.add_argument("--verbose", action="store_true",
                        help="print passing metrics too")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in scenario suite and "
                             "exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.current_dir:
        parser.error("--current-dir is required (or --self-test)")
    return run_gate(args.baseline_dir, args.current_dir,
                    args.k_sigma, args.rel_tol, args.verbose)


if __name__ == "__main__":
    sys.exit(main())

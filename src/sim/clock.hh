/**
 * @file
 * Clock domains: frequency bookkeeping and tick/cycle conversion.
 */

#ifndef TDP_SIM_CLOCK_HH
#define TDP_SIM_CLOCK_HH

#include "common/logging.hh"
#include "common/units.hh"

namespace tdp {

/**
 * A clock domain with a (scalable) frequency. CPU cores, buses and
 * device controllers each reference a domain; DVFS-style frequency
 * changes (used by the power-capping example) go through setFrequency.
 */
class ClockDomain
{
  public:
    /** @param frequency nominal frequency in Hz. */
    explicit ClockDomain(Hertz frequency) : nominal_(frequency),
                                            current_(frequency)
    {
        if (frequency <= 0.0)
            fatal("ClockDomain frequency must be positive, got %g",
                  frequency);
    }

    /** Nominal (design) frequency in Hz. */
    Hertz nominalFrequency() const { return nominal_; }

    /** Current operating frequency in Hz. */
    Hertz frequency() const { return current_; }

    /** Current / nominal frequency ratio. */
    double scale() const { return current_ / nominal_; }

    /**
     * Change the operating frequency (DVFS). Clamped to
     * [0.1, 1.0] x nominal, mirroring real P-state tables.
     */
    void
    setFrequency(Hertz f)
    {
        const Hertz lo = 0.1 * nominal_;
        if (f < lo)
            f = lo;
        if (f > nominal_)
            f = nominal_;
        current_ = f;
    }

    /** Cycles elapsed over a tick span at the current frequency. */
    Cycles
    cycles(Tick span) const
    {
        return ticksToCycles(span, current_);
    }

  private:
    Hertz nominal_;
    Hertz current_;
};

} // namespace tdp

#endif // TDP_SIM_CLOCK_HH

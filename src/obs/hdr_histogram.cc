/**
 * @file
 * Implementation of the log-linear HDR-style histogram.
 */

#include "obs/hdr_histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace tdp {
namespace obs {

HdrHistogram::HdrHistogram(int subBucketBits) : bits_(subBucketBits)
{
    if (bits_ < 1 || bits_ > 12)
        fatal("HdrHistogram: subBucketBits %d out of [1, 12]", bits_);
    // Linear region: one bucket per value below 2^bits. Above it,
    // each power of two is split into 2^bits sub-buckets; a 64-bit
    // value spans (64 - bits) such half-decades on top of the two
    // exact ones, giving (65 - bits) * 2^bits buckets in total.
    const size_t sub = size_t(1) << bits_;
    counts_.assign((size_t(65) - static_cast<size_t>(bits_)) * sub, 0);
}

size_t
HdrHistogram::indexOf(uint64_t value) const
{
    const uint64_t sub = uint64_t(1) << bits_;
    if (value < sub)
        return static_cast<size_t>(value);
    const int shift = std::bit_width(value) - 1 - bits_;
    const uint64_t top = value >> shift; // in [sub, 2 * sub)
    return static_cast<size_t>(shift) * static_cast<size_t>(sub) +
           static_cast<size_t>(top);
}

uint64_t
HdrHistogram::bucketHigh(size_t index) const
{
    const uint64_t sub = uint64_t(1) << bits_;
    if (index < sub)
        return index;
    const uint64_t shift = index / sub - 1;
    const uint64_t top = index - shift * sub;
    return ((top + 1) << shift) - 1;
}

uint64_t
HdrHistogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the order statistic we estimate: ceil(q * n), at
    // least 1 so q=0 is the minimum, exactly n at q=1.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(total_)));
    rank = std::clamp<uint64_t>(rank, 1, total_);
    uint64_t seen = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank)
            return std::min(bucketHigh(i), max_);
    }
    return max_;
}

double
HdrHistogram::relativeErrorBound() const
{
    return std::ldexp(1.0, -bits_);
}

size_t
HdrHistogram::bucketsUsed() const
{
    size_t used = 0;
    for (uint64_t c : counts_)
        used += c != 0;
    return used;
}

void
HdrHistogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    max_ = 0;
}

void
HdrHistogram::mergeFrom(const HdrHistogram &other)
{
    // Different sub-bucket bits mean different bucket geometries:
    // summing the count arrays index-by-index would silently blend
    // values from unrelated latency ranges into nonsense quantiles.
    if (other.bits_ != bits_)
        fatal("HdrHistogram::mergeFrom: cannot merge a %d-bit "
              "histogram into a %d-bit one - the bucket geometries "
              "differ, so counts would land in the wrong value "
              "ranges. Construct both histograms with the same "
              "subBucketBits (e.g. one TelemetryConfig::hdrBits) "
              "before merging.",
              other.bits_, bits_);
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    max_ = std::max(max_, other.max_);
}

} // namespace obs
} // namespace tdp

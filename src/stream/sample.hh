/**
 * @file
 * The wire sample of the streaming estimation service.
 *
 * A client periodically ships the *raw cumulative* PMU counter values
 * of its node (wrapping at the configured counter width, exactly like
 * a real perfctr read), the OS-attributed interrupt deltas, and -
 * when the node has sense hardware - the measured rail powers of the
 * same window. The service recovers counter deltas per client via
 * wrappedCounterDelta and derives the paper's event rates from them;
 * measured watts, when finite, feed the drift-guarded incremental
 * refits.
 *
 * The struct is fixed-size and trivially copyable on purpose: the
 * per-shard ingest rings store samples by value, so admission never
 * allocates.
 */

#ifndef TDP_STREAM_SAMPLE_HH
#define TDP_STREAM_SAMPLE_HH

#include <array>
#include <cstdint>

#include "cpu/perf_counters.hh"
#include "measure/rail.hh"

namespace tdp {
namespace stream {

/** One client sample offered to the ingest path. */
struct StreamSample
{
    /** Stable client identity (sharding + session key). */
    uint64_t client = 0;

    /** Per-client monotonically increasing sequence number (>= 1). */
    uint64_t seq = 0;

    /** Client clock at the window end (s). */
    double time = 0.0;

    /** Sampling window length (s). */
    double interval = 1.0;

    /**
     * Raw cumulative counters summed across the client's CPUs,
     * wrapping at the session's configured counter width. The session
     * layer turns consecutive reads into deltas.
     */
    CounterSnapshot raw;

    /** Interrupt *delta* of the disk HBA vector over the window. */
    double osDiskInterrupts = 0.0;

    /** Interrupt *delta* of all device vectors over the window. */
    double osDeviceInterrupts = 0.0;

    /**
     * Measured rail powers over the window (W). NaN entries mean "no
     * sense hardware on this rail"; such samples are estimated but do
     * not feed the refit windows.
     */
    std::array<double, numRails> measuredWatts{};

    /** CPUs the raw counters were summed over (>= 1). */
    int cpus = 1;

    /** Service tick at admission; stamped by the ingest layer. */
    uint64_t enqueueTick = 0;
};

} // namespace stream
} // namespace tdp

#endif // TDP_STREAM_SAMPLE_HH

file(REMOVE_RECURSE
  "CMakeFiles/tdp_memory.dir/bus.cc.o"
  "CMakeFiles/tdp_memory.dir/bus.cc.o.d"
  "CMakeFiles/tdp_memory.dir/controller.cc.o"
  "CMakeFiles/tdp_memory.dir/controller.cc.o.d"
  "CMakeFiles/tdp_memory.dir/dram.cc.o"
  "CMakeFiles/tdp_memory.dir/dram.cc.o.d"
  "libtdp_memory.a"
  "libtdp_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

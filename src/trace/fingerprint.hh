/**
 * @file
 * Structured FNV-1a fingerprinting for cache keys.
 *
 * The trace cache is content-addressed by *inputs*: a key is a hash
 * of every value that determines a simulated trace (workload launch
 * parameters, seed, quantum, fault plan) plus format and
 * code-version salts. The hasher here makes those keys stable and
 * unambiguous: every mix operation is length-prefixed by type so
 * e.g. the field sequence (1.0, 2) can never collide with (1, 2.0),
 * and doubles are mixed as their raw bit patterns so -0.0 / 0.0 and
 * every NaN payload are distinct inputs.
 */

#ifndef TDP_TRACE_FINGERPRINT_HH
#define TDP_TRACE_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "fault/fault_plan.hh"

namespace tdp {

/** Incremental FNV-1a 64 hasher over typed fields. */
class Fingerprint
{
  public:
    /** Mix raw bytes. */
    Fingerprint &mixBytes(const void *data, size_t len);

    /** Mix an unsigned 64-bit value. */
    Fingerprint &mixU64(uint64_t value);

    /** Mix a signed value (sign-extended through two's complement). */
    Fingerprint &mixI64(int64_t value);

    /** Mix a double as its 64-bit pattern (bit-exact, NaN-safe). */
    Fingerprint &mixDouble(double value);

    /** Mix a string, length-prefixed. */
    Fingerprint &mixString(const std::string &value);

    /** Mix every field of a fault plan, including the event mask. */
    Fingerprint &mixFaultPlan(const FaultPlan &plan);

    /** Current digest. */
    uint64_t digest() const { return hash_; }

  private:
    /** Tag each field with its type so field boundaries are unambiguous. */
    Fingerprint &mixTag(uint8_t tag);

    uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace tdp

#endif // TDP_TRACE_FINGERPRINT_HH

file(REMOVE_RECURSE
  "libtdp_sim.a"
)

/**
 * @file
 * Implementation of the write-ahead run journal.
 */

#include "resilience/run_journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace tdp {
namespace resilience {

namespace {

/** FNV-1a 64 over a string view (local copy: no measure dependency). */
uint64_t
lineHash(const char *data, size_t len)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < len; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/** Percent-escape so the detail stays one whitespace-free token. */
std::string
escapeDetail(const std::string &detail)
{
    if (detail.empty())
        return "-";
    std::string out;
    out.reserve(detail.size());
    for (const char c : detail) {
        if (c == ' ' || c == '%' || c == '\n' || c == '\r' ||
            c == '\t') {
            out += formatString("%%%02x",
                                static_cast<unsigned char>(c));
        } else {
            out += c;
        }
    }
    return out;
}

bool
unescapeDetail(const std::string &token, std::string *out)
{
    if (token == "-") {
        out->clear();
        return true;
    }
    std::string result;
    result.reserve(token.size());
    for (size_t i = 0; i < token.size(); ++i) {
        if (token[i] != '%') {
            result += token[i];
            continue;
        }
        if (i + 2 >= token.size())
            return false;
        unsigned value = 0;
        if (std::sscanf(token.c_str() + i + 1, "%02x", &value) != 1)
            return false;
        result += static_cast<char>(value);
        i += 2;
    }
    *out = std::move(result);
    return true;
}

constexpr JournalKind allKinds[] = {
    JournalKind::RunBegin,      JournalKind::TaskQueued,
    JournalKind::TaskStarted,   JournalKind::TracePublished,
    JournalKind::TaskFailed,    JournalKind::TaskQuarantined,
    JournalKind::RunEnd,        JournalKind::Shutdown,
};

bool
parseKind(const std::string &name, JournalKind *out)
{
    for (const JournalKind kind : allKinds) {
        if (name == journalKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

/** Parse one line (no trailing newline). */
bool
parseRecord(const std::string &line, JournalRecord *out)
{
    // Split into exactly 8 tokens.
    std::istringstream is(line);
    std::string tokens[8];
    for (std::string &token : tokens)
        if (!(is >> token))
            return false;
    std::string extra;
    if (is >> extra)
        return false;

    if (tokens[0] != RunJournal::magic)
        return false;

    // Checksum covers everything before the final separator.
    const size_t crc_sep = line.rfind(' ');
    uint64_t stored_crc = 0;
    if (std::sscanf(tokens[7].c_str(), "%016" SCNx64, &stored_crc) !=
        1)
        return false;
    if (lineHash(line.data(), crc_sep) != stored_crc)
        return false;

    JournalRecord record;
    char *end = nullptr;
    record.seq = std::strtoull(tokens[1].c_str(), &end, 10);
    if (*end != '\0')
        return false;
    if (!parseKind(tokens[2], &record.kind))
        return false;
    record.task = std::strtoull(tokens[3].c_str(), &end, 10);
    if (*end != '\0')
        return false;
    if (std::sscanf(tokens[4].c_str(), "%016" SCNx64,
                    &record.fingerprint) != 1)
        return false;
    const long attempt = std::strtol(tokens[5].c_str(), &end, 10);
    if (*end != '\0' || attempt < 0)
        return false;
    record.attempt = static_cast<int>(attempt);
    if (!unescapeDetail(tokens[6], &record.detail))
        return false;
    *out = std::move(record);
    return true;
}

std::string
formatRecord(const JournalRecord &record)
{
    std::string body = formatString(
        "%s %llu %s %llu %016llx %d %s", RunJournal::magic,
        static_cast<unsigned long long>(record.seq),
        journalKindName(record.kind),
        static_cast<unsigned long long>(record.task),
        static_cast<unsigned long long>(record.fingerprint),
        record.attempt, escapeDetail(record.detail).c_str());
    body += formatString(" %016llx\n",
                         static_cast<unsigned long long>(
                             lineHash(body.data(), body.size())));
    return body;
}

} // namespace

const char *
journalKindName(JournalKind kind)
{
    switch (kind) {
      case JournalKind::RunBegin: return "run-begin";
      case JournalKind::TaskQueued: return "task-queued";
      case JournalKind::TaskStarted: return "task-started";
      case JournalKind::TracePublished: return "trace-published";
      case JournalKind::TaskFailed: return "task-failed";
      case JournalKind::TaskQuarantined: return "task-quarantined";
      case JournalKind::RunEnd: return "run-end";
      case JournalKind::Shutdown: return "shutdown";
    }
    panic("journalKindName: unknown kind %d", static_cast<int>(kind));
}

RunJournal::~RunJournal()
{
    close();
}

bool
RunJournal::open(const std::string &path, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0)
        panic("RunJournal::open: journal already open (%s)",
              path_.c_str());

    uint64_t next_seq = 0;
    uint64_t keep_bytes = 0;
    bool truncate_tail = false;
    if (std::filesystem::exists(path)) {
        const Replay existing = replay(path);
        if (!existing.valid()) {
            if (error)
                *error = existing.error;
            return false;
        }
        if (!existing.records.empty())
            next_seq = existing.records.back().seq + 1;
        keep_bytes = existing.validBytes;
        truncate_tail = existing.tornTail;
    }

    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
        if (error)
            *error = formatString("cannot open %s: %s", path.c_str(),
                                  std::strerror(errno));
        return false;
    }
    if (truncate_tail) {
        warn("run journal: %s has a torn final record (crash "
             "mid-append); truncating to the valid prefix",
             path.c_str());
        if (::ftruncate(fd, static_cast<off_t>(keep_bytes)) != 0) {
            if (error)
                *error = formatString("cannot truncate torn tail of "
                                      "%s: %s",
                                      path.c_str(),
                                      std::strerror(errno));
            ::close(fd);
            return false;
        }
    }
    if (::lseek(fd, 0, SEEK_END) < 0) {
        if (error)
            *error = formatString("cannot seek %s: %s", path.c_str(),
                                  std::strerror(errno));
        ::close(fd);
        return false;
    }

    fd_ = fd;
    path_ = path;
    nextSeq_ = next_seq;
    return true;
}

bool
RunJournal::append(JournalKind kind, uint64_t task,
                   uint64_t fingerprint, int attempt,
                   const std::string &detail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ < 0)
        return false;

    JournalRecord record;
    record.seq = nextSeq_;
    record.kind = kind;
    record.task = task;
    record.fingerprint = fingerprint;
    record.attempt = attempt;
    record.detail = detail;
    const std::string line = formatRecord(record);

    // One write(2) per record: a crash tears at most the final line.
    size_t written = 0;
    while (written < line.size()) {
        const ssize_t n = ::write(fd_, line.data() + written,
                                  line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("run journal: append to %s failed (%s); journaling "
                 "degraded to best-effort",
                 path_.c_str(), std::strerror(errno));
            return false;
        }
        written += static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0) {
        warn("run journal: fsync %s failed (%s)", path_.c_str(),
             std::strerror(errno));
        return false;
    }
    ++nextSeq_;
    return true;
}

void
RunJournal::close()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

RunJournal::Replay
RunJournal::replay(const std::string &path)
{
    Replay out;
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        out.error = formatString("cannot open journal %s", path.c_str());
        return out;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string content = buffer.str();

    size_t offset = 0;
    while (offset < content.size()) {
        const size_t newline = content.find('\n', offset);
        // A final chunk without '\n' is torn by construction: every
        // append ends in a newline.
        const bool torn_chunk = newline == std::string::npos;
        const std::string line =
            torn_chunk ? content.substr(offset)
                       : content.substr(offset, newline - offset);
        const size_t next =
            torn_chunk ? content.size() : newline + 1;

        JournalRecord record;
        if (torn_chunk || !parseRecord(line, &record)) {
            if (next < content.size()) {
                // A bad record with valid data after it is
                // corruption, not a crash: reject the journal.
                out.error = formatString(
                    "journal %s: corrupt record at byte %llu",
                    path.c_str(),
                    static_cast<unsigned long long>(offset));
                out.records.clear();
                return out;
            }
            // Bad final record: torn append, tolerated and dropped.
            out.tornTail = true;
            return out;
        }
        if (record.seq != out.records.size()) {
            out.error = formatString(
                "journal %s: sequence gap at byte %llu (record %llu, "
                "expected %zu)",
                path.c_str(), static_cast<unsigned long long>(offset),
                static_cast<unsigned long long>(record.seq),
                out.records.size());
            out.records.clear();
            return out;
        }
        out.records.push_back(std::move(record));
        offset = next;
        out.validBytes = offset;
    }
    return out;
}

} // namespace resilience
} // namespace tdp

/**
 * @file
 * Minimal ThreadContext stub shared by the OS and CPU test suites.
 */

#ifndef TDP_TESTS_OS_STUB_THREAD_HH
#define TDP_TESTS_OS_STUB_THREAD_HH

#include <string>

#include "os/thread_context.hh"

namespace tdp {

/** Scriptable thread: fixed demand, manual state transitions. */
class StubThread : public ThreadContext
{
  public:
    explicit StubThread(std::string name, ThreadDemand demand = {},
                        double footprint_mb = 0.0)
        : name_(std::move(name)), demand_(demand),
          footprintMb_(footprint_mb)
    {
    }

    const std::string &threadName() const override { return name_; }
    ThreadState state() const override { return state_; }
    ThreadDemand demand() const override { return demand_; }

    void
    commit(double uops, Seconds dt) override
    {
        committedUops += uops;
        committedTime += dt;
        ++commitCalls;
    }

    double footprintMB() const override { return footprintMb_; }

    void start() override { state_ = ThreadState::Runnable; }

    /** Manual state control for tests. */
    void setState(ThreadState s) { state_ = s; }

    /** Mutable demand for tests. */
    void setDemand(const ThreadDemand &d) { demand_ = d; }

    double committedUops = 0.0;
    double committedTime = 0.0;
    int commitCalls = 0;

  private:
    std::string name_;
    ThreadDemand demand_;
    double footprintMb_;
    ThreadState state_ = ThreadState::NotStarted;
};

} // namespace tdp

#endif // TDP_TESTS_OS_STUB_THREAD_HH

/**
 * @file
 * Reproduces paper Figure 1: the propagation of performance events
 * from the CPU into the other subsystems. Instead of a hand-drawn
 * diagram, this binary demonstrates the propagation on the live
 * system: it perturbs one event source at a time (L3 misses, DMA
 * traffic, interrupts, uncacheable accesses) and reports which
 * subsystem rails respond, printing the reachability table the figure
 * depicts.
 */

#include <cstdio>
#include <iostream>
#include <iterator>

#include "common/running_stats.hh"
#include "common/table.hh"

#include "common/bench_util.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;

/** The figure's shortened characterisation run for one workload. */
RunSpec
probeRun(const std::string &workload)
{
    RunSpec spec = characterizationRun(workload);
    spec.duration = 120.0;
    return spec;
}

/** Mean rail power over a collected trace. */
std::array<double, numRails>
railMeans(const SampleTrace &trace)
{
    std::array<double, numRails> means{};
    for (const AlignedSample &s : trace.samples())
        for (int r = 0; r < numRails; ++r)
            means[static_cast<size_t>(r)] +=
                s.measured(static_cast<Rail>(r));
    for (double &m : means)
        m /= static_cast<double>(trace.size());
    return means;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    std::printf(
        "Figure 1: Propagation of Performance Events (live system)\n"
        "Each row perturbs one event source; '+x.x' marks the rails\n"
        "that moved versus idle (the trickle-down paths of Fig. 1).\n\n");

    struct Probe
    {
        const char *label;
        const char *workload;
    };
    // Workloads chosen to excite one dominant event path each.
    const Probe probes[] = {
        {"L3/TLB misses -> memory bus (mgrid)", "mgrid"},
        {"Fetch activity -> CPU power (vortex)", "vortex"},
        {"DMA + interrupts -> I/O, disk (diskload)", "diskload"},
    };

    // Idle baseline plus the three probes, fanned across the pool.
    std::vector<RunSpec> specs = {probeRun("idle")};
    for (const Probe &probe : probes)
        specs.push_back(probeRun(probe.workload));
    const std::vector<SampleTrace> traces = runTraces(specs);

    const auto idle = railMeans(traces[0]);

    TableWriter table({"event source", "CPU", "Chipset", "Memory",
                       "I/O", "Disk"});
    for (size_t p = 0; p < std::size(probes); ++p) {
        const Probe &probe = probes[p];
        const auto loaded = railMeans(traces[p + 1]);
        std::vector<std::string> row = {probe.label};
        for (int r = 0; r < numRails; ++r) {
            const double delta = loaded[static_cast<size_t>(r)] -
                                 idle[static_cast<size_t>(r)];
            row.push_back(delta > 0.5
                              ? "+" + TableWriter::num(delta, 1)
                              : "-");
        }
        table.addRow(row);
    }
    table.render(std::cout);

    std::printf(
        "\nPropagation chains exercised (paper Figure 1):\n"
        "  CPU --L3 miss--> memory bus --> memory controller/DRAM\n"
        "  CPU --TLB miss--> page walk --> memory (and disk when "
        "paging)\n"
        "  I/O device --DMA--> memory controller --> DRAM (snooped by "
        "CPU)\n"
        "  I/O device --interrupt--> CPU (vector identifies source)\n"
        "  CPU --uncacheable access--> I/O chips\n");
    return 0;
}

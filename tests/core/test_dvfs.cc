/**
 * @file
 * Tests for the DVFS-aware CPU model extension, including an
 * end-to-end check against the simulated packages' real DVFS
 * behaviour.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/dvfs.hh"
#include "platform/server.hh"

#include "synthetic_trace.hh"

namespace tdp {
namespace {

std::unique_ptr<CpuPowerModel>
paperCpuModel()
{
    auto model = std::make_unique<CpuPowerModel>();
    model->setCoefficients({4.0 * 9.25, 26.45, 4.31});
    return model;
}

EventVector
busyEvents()
{
    SyntheticPoint pt;
    pt.activeFraction = 1.0;
    pt.uopsPerCycle = 1.5;
    return EventVector::fromSample(makeSyntheticSample(pt, {}));
}

TEST(DvfsAwareCpuModel, IdentityAtNominalFrequency)
{
    DvfsAwareCpuModel model(paperCpuModel());
    const EventVector ev = busyEvents();
    CpuPowerModel reference;
    reference.setCoefficients({4.0 * 9.25, 26.45, 4.31});
    EXPECT_NEAR(model.estimate(ev), reference.estimate(ev), 1e-9);
}

TEST(DvfsAwareCpuModel, PowerDropsWithFrequency)
{
    DvfsAwareCpuModel model(paperCpuModel());
    const EventVector ev = busyEvents();
    const Watts nominal = model.estimate(ev);
    model.setFrequencyScale(0.5);
    const Watts half = model.estimate(ev);
    EXPECT_LT(half, 0.6 * nominal);
    // Static share keeps it well above zero.
    EXPECT_GT(half, 0.25 * nominal);
}

TEST(DvfsAwareCpuModel, ScaleClamped)
{
    DvfsAwareCpuModel model(paperCpuModel());
    model.setFrequencyScale(5.0);
    EXPECT_DOUBLE_EQ(model.frequencyScale(), 1.0);
    model.setFrequencyScale(-1.0);
    EXPECT_DOUBLE_EQ(model.frequencyScale(), 0.1);
}

TEST(DvfsAwareCpuModel, CoefficientPassthrough)
{
    DvfsAwareCpuModel model(paperCpuModel());
    const auto coeffs = model.coefficients();
    ASSERT_EQ(coeffs.size(), 3u);
    EXPECT_DOUBLE_EQ(coeffs[1], 26.45);
    model.setCoefficients({10.0, 20.0, 3.0});
    EXPECT_DOUBLE_EQ(model.coefficients()[0], 10.0);
    EXPECT_TRUE(model.trained());
}

TEST(DvfsAwareCpuModel, NullBaseFatal)
{
    EXPECT_THROW(DvfsAwareCpuModel(nullptr), FatalError);
}

TEST(DvfsAwareCpuModel, TracksSimulatedDvfsEndToEnd)
{
    // Run the same workload at nominal and at 60% frequency; the
    // DVFS-corrected model must track the throttled machine far
    // better than the fixed-frequency model does.
    auto run_at = [](double scale) {
        Server server(33);
        server.runner().launchStaggered("vortex", 8, 0.5, 0.0);
        for (int i = 0; i < 4; ++i)
            server.cpus().core(i).clock().setFrequency(2.8e9 * scale);
        server.run(20.0);
        return server.rig().collect().slice(10.0, 21.0);
    };
    const SampleTrace throttled = run_at(0.6);

    DvfsAwareCpuModel model(paperCpuModel());
    model.setFrequencyScale(0.6);
    CpuPowerModel fixed;
    fixed.setCoefficients({4.0 * 9.25, 26.45, 4.31});

    double err_dvfs = 0.0, err_fixed = 0.0;
    for (const AlignedSample &s : throttled.samples()) {
        const EventVector ev = EventVector::fromSample(s);
        const double meas = s.measured(Rail::Cpu);
        err_dvfs += std::abs(model.estimate(ev) - meas) / meas;
        err_fixed += std::abs(fixed.estimate(ev) - meas) / meas;
    }
    err_dvfs /= static_cast<double>(throttled.size());
    err_fixed /= static_cast<double>(throttled.size());
    EXPECT_LT(err_dvfs, 0.10);
    EXPECT_GT(err_fixed, 3.0 * err_dvfs);
}

TEST(DvfsAwareCpuModel, DescribeMentionsScale)
{
    DvfsAwareCpuModel model(paperCpuModel());
    model.setFrequencyScale(0.7);
    EXPECT_NE(model.describe().find("0.70"), std::string::npos);
}

} // namespace
} // namespace tdp

/**
 * @file
 * Discrete-event queue for the simulation kernel.
 *
 * Events fire in (tick, priority, insertion-order) order, so
 * simultaneous events are deterministic. Components either subclass
 * Event or schedule a LambdaEvent.
 *
 * The hot path is allocation-free in steady state and avoids the
 * abstraction overhead the seed implementation paid per event:
 *  - heap entries are 32-byte trivially-copyable values in a 4-ary
 *    implicit heap (no shared_ptr control blocks; sifts are plain
 *    copies and the wider node halves the tree depth);
 *  - scheduleFn() recycles LambdaEvent slots through a free list, and
 *    each slot stores its callable in a fixed 48-byte inline buffer
 *    (SlotCallback) instead of a std::function, so rebinding a slot
 *    is a placement-new, not a type-erased manager round trip;
 *  - externally-owned events live in a side pool with its own free
 *    list so the heap itself never owns anything.
 * A simulation that schedules and fires events at a bounded rate
 * reaches a fixed pool size and stops touching the allocator.
 */

#ifndef TDP_SIM_EVENT_QUEUE_HH
#define TDP_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.hh"

namespace tdp {

/**
 * A schedulable unit of work. Ownership stays with the queue once
 * scheduled; process() runs exactly once per scheduling.
 */
class Event
{
  public:
    /** @param name diagnostic label shown in traces and errors. */
    explicit Event(std::string name) : name_(std::move(name)) {}

    virtual ~Event() = default;

    /** Perform the event's work at its scheduled tick. */
    virtual void process() = 0;

    /** Diagnostic label. */
    const std::string &name() const { return name_; }

  protected:
    /** Replace the label; used by recyclable subclasses. */
    void rename(std::string name) { name_ = std::move(name); }

    /**
     * Same, without materialising a temporary std::string. Recycled
     * slots usually get the same label back (self-rescheduling
     * timers), so an equality check beats an unconditional assign.
     */
    void
    rename(std::string_view name)
    {
        if (name_ != name)
            name_.assign(name.data(), name.size());
    }

  private:
    std::string name_;
};

/**
 * Move-nothing callable holder for pooled event slots. Slots have
 * stable addresses (the pool holds them by unique_ptr), so the holder
 * only needs emplace / invoke / reset — no move support and no
 * std::function manager machinery. Callables up to inlineSize bytes
 * live in the inline buffer; larger ones fall back to the heap.
 */
class SlotCallback
{
  public:
    /** Covers every capture list the simulator uses today. */
    static constexpr size_t inlineSize = 48;

    SlotCallback() = default;
    ~SlotCallback() { reset(); }

    SlotCallback(const SlotCallback &) = delete;
    SlotCallback &operator=(const SlotCallback &) = delete;

    /** Destroy any held callable and store a new one. */
    template <typename Fn>
    void
    emplace(Fn &&fn)
    {
        using T = std::decay_t<Fn>;
        reset();
        if constexpr (sizeof(T) <= inlineSize &&
                      alignof(T) <= alignof(std::max_align_t)) {
            target_ = new (buf_) T(std::forward<Fn>(fn));
            invoke_ = [](void *p) { (*static_cast<T *>(p))(); };
            // Trivially destructible callables (the common case) need
            // no teardown at all; reset() becomes two pointer writes.
            if constexpr (!std::is_trivially_destructible_v<T>)
                destroy_ = [](void *p) { static_cast<T *>(p)->~T(); };
        } else {
            target_ = new T(std::forward<Fn>(fn));
            invoke_ = [](void *p) { (*static_cast<T *>(p))(); };
            destroy_ = [](void *p) { delete static_cast<T *>(p); };
        }
    }

    void operator()() { invoke_(target_); }

    /** Drop the held callable (and anything it captured). */
    void
    reset()
    {
        if (destroy_)
            destroy_(target_);
        destroy_ = nullptr;
        invoke_ = nullptr;
    }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    alignas(std::max_align_t) unsigned char buf_[inlineSize];
    void *target_ = nullptr;
    void (*invoke_)(void *) = nullptr;
    void (*destroy_)(void *) = nullptr;
};

/**
 * Event wrapping an arbitrary callable. Final so the queue's pooled
 * dispatch path is a direct (devirtualised) call.
 */
class LambdaEvent final : public Event
{
  public:
    /** An unarmed slot; rebind() before scheduling. */
    LambdaEvent() : Event(std::string()) {}

    template <typename Fn>
    LambdaEvent(std::string name, Fn &&fn) : Event(std::move(name))
    {
        fn_.emplace(std::forward<Fn>(fn));
    }

    void process() override { fn_(); }

    /** Re-arm a recycled slot with a new label and callable. */
    template <typename Fn>
    void
    rebind(std::string_view name, Fn &&fn)
    {
        rename(name);
        fn_.emplace(std::forward<Fn>(fn));
    }

    /** Drop the callable (and anything it captured) after firing. */
    void release() { fn_.reset(); }

  private:
    SlotCallback fn_;
};

/**
 * Priority queue of events ordered by tick, then priority, then
 * insertion order. Lower priority values fire first within a tick.
 */
class EventQueue
{
  public:
    /** Default priority for ordinary events. */
    static constexpr int defaultPriority = 100;

    /**
     * Schedule an event at an absolute tick. Scheduling in the past
     * (before the current tick) is a bug and panics.
     */
    void schedule(std::unique_ptr<Event> ev, Tick when,
                  int priority = defaultPriority);

    /**
     * Schedule a callable at an absolute tick. The callable runs on a
     * pooled LambdaEvent slot that is recycled after it fires, so
     * steady-state scheduling does not allocate (beyond what captures
     * larger than SlotCallback::inlineSize need). The name is copied
     * into the slot's stable label without a temporary std::string.
     */
    template <typename Fn>
    void
    scheduleFn(std::string_view name, Tick when, Fn &&fn,
               int priority = defaultPriority)
    {
        if (when < now_)
            pastScheduleError(name, when);
        int32_t slot;
        LambdaEvent *ev;
        if (freeSlots_.empty()) {
            slot = growPool();
            ev = pool_.back().get();
            ev->rebind(name, std::forward<Fn>(fn));
        } else {
            slot = freeSlots_.back();
            freeSlots_.pop_back();
            ev = pool_[static_cast<size_t>(slot)].get();
            ev->rebind(name, std::forward<Fn>(fn));
        }
        push(Entry{when, priority, slot, nextSequence_++, ev});
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t size() const { return heap_.size(); }

    /** Tick of the next pending event; panics when empty. */
    Tick nextTick() const;

    /**
     * Pop and process the next event, advancing time to its tick.
     * Panics when empty.
     */
    void
    step()
    {
        if (heap_.empty())
            emptyQueueError("step");
        const Entry entry = popTop();
        now_ = entry.when;
        ++processed_;
        if (entry.slot >= 0) {
            // Direct (final-class) dispatch. The event may reschedule
            // through the queue; its own slot is still in flight, so
            // a nested scheduleFn never reuses it.
            LambdaEvent &ev = *static_cast<LambdaEvent *>(entry.ev);
            ev.process();
            ev.release();
            freeSlots_.push_back(entry.slot);
        } else {
            entry.ev->process();
            // Destroy only after process(): the event may have
            // scheduled follow-ups (growing owned_), so re-derive the
            // slot index.
            const int32_t idx = -1 - entry.slot;
            owned_[static_cast<size_t>(idx)].reset();
            freeOwned_.push_back(idx);
        }
    }

    /**
     * Run until the queue empties or simulated time would pass
     * until_tick. Events exactly at until_tick are processed; time
     * finishes at until_tick.
     */
    void runUntil(Tick until_tick);

    /** Total number of events processed so far. */
    uint64_t processedCount() const { return processed_; }

    /**
     * LambdaEvent slots ever allocated (pool growth). The steady-state
     * allocations-per-event figure is this divided by processedCount().
     */
    uint64_t lambdaSlotsAllocated() const { return slotsAllocated_; }

    /** Current pool size (allocated slots, free or in flight). */
    size_t lambdaPoolSize() const { return pool_.size(); }

    /** Pool slots currently available for reuse. */
    size_t lambdaPoolFree() const { return freeSlots_.size(); }

  private:
    /**
     * One pending firing. Trivially copyable on purpose: heap sifts
     * are then plain 32-byte copies. `ev` is a borrowed pointer into
     * pool_ (slot >= 0) or owned_ (slot < 0, index -1 - slot).
     */
    struct Entry
    {
        Tick when;
        int32_t priority;
        int32_t slot;
        uint64_t sequence;
        Event *ev;
    };
    static_assert(std::is_trivially_copyable_v<Entry>,
                  "heap sifts rely on Entry being a plain value");

    /** True when a fires after b (min-heap comparator). */
    static bool
    after(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.sequence > b.sequence;
    }

    void
    push(Entry entry)
    {
        heap_.push_back(entry);
        siftUp(heap_.size() - 1);
    }

    Entry
    popTop()
    {
        const Entry top = heap_[0];
        const size_t rest = heap_.size() - 1;
        if (rest > 0)
            heap_[0] = heap_[rest];
        heap_.pop_back();
        if (rest > 1)
            siftDown(0);
        return top;
    }

    void siftUp(size_t hole);
    void siftDown(size_t hole);

    /** Append a fresh unarmed slot; returns its index. Cold path. */
    int32_t growPool();

    [[noreturn]] void pastScheduleError(std::string_view name,
                                        Tick when) const;
    [[noreturn]] void emptyQueueError(const char *what) const;

    /** Implicit 4-ary min-heap on (when, priority, sequence). */
    std::vector<Entry> heap_;
    /** Recyclable scheduleFn() slots (stable addresses). */
    std::vector<std::unique_ptr<LambdaEvent>> pool_;
    std::vector<int32_t> freeSlots_;
    /** Externally-constructed events, owned until they fire. */
    std::vector<std::unique_ptr<Event>> owned_;
    std::vector<int32_t> freeOwned_;
    Tick now_ = 0;
    uint64_t nextSequence_ = 0;
    uint64_t processed_ = 0;
    uint64_t slotsAllocated_ = 0;
};

} // namespace tdp

#endif // TDP_SIM_EVENT_QUEUE_HH

# Empty dependencies file for test_measure.
# This may be replaced when dependencies are built.

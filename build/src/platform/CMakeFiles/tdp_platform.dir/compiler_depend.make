# Empty compiler generated dependencies file for tdp_platform.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for eq_model_fits.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dvfs.cc" "src/core/CMakeFiles/tdp_core.dir/dvfs.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/dvfs.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/tdp_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/events.cc" "src/core/CMakeFiles/tdp_core.dir/events.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/events.cc.o.d"
  "/root/repo/src/core/model.cc" "src/core/CMakeFiles/tdp_core.dir/model.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/model.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/core/CMakeFiles/tdp_core.dir/selector.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/selector.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/core/CMakeFiles/tdp_core.dir/serialize.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/serialize.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/tdp_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/validator.cc" "src/core/CMakeFiles/tdp_core.dir/validator.cc.o" "gcc" "src/core/CMakeFiles/tdp_core.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/tdp_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tdp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tdp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/tdp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/tdp_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tdp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tdp_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

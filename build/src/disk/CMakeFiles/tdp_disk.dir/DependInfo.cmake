
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/disk_controller.cc" "src/disk/CMakeFiles/tdp_disk.dir/disk_controller.cc.o" "gcc" "src/disk/CMakeFiles/tdp_disk.dir/disk_controller.cc.o.d"
  "/root/repo/src/disk/scsi_disk.cc" "src/disk/CMakeFiles/tdp_disk.dir/scsi_disk.cc.o" "gcc" "src/disk/CMakeFiles/tdp_disk.dir/scsi_disk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/tdp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tdp_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Checkpoint serialization, rotation and restore for the streaming
 * service. The per-class column encoders live with their classes
 * (session.cc, rls.cc, drift.cc, ingest.cc); this file owns the
 * file format, the StreamService-level sections and the rotation
 * policy.
 */

#include "stream/checkpoint.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "measure/trace_io.hh"
#include "obs/run_manifest.hh"
#include "stream/service.hh"

namespace tdp {
namespace stream {

namespace {

constexpr char kMagic[4] = {'T', 'D', 'P', 'C'};

/** Fixed header preceding the section table. */
struct Header
{
    uint32_t version = 0;
    uint64_t fingerprint = 0;
    uint64_t generation = 0;
    uint64_t tick = 0;
    uint64_t digest = 0;
    uint32_t sectionCount = 0;
};

/** One parsed, CRC-verified checkpoint file held in memory. */
struct Parsed
{
    Header header;
    std::vector<std::pair<uint32_t, std::string>> sections;
    uint64_t fileCrc = 0;
    std::string path;

    const std::string *
    section(uint32_t id) const
    {
        for (const auto &entry : sections) {
            if (entry.first == id)
                return &entry.second;
        }
        return nullptr;
    }
};

void
saveSample(CheckpointWriter &w, const StreamSample &sample)
{
    w.u64(sample.client);
    w.u64(sample.seq);
    w.f64(sample.time);
    w.f64(sample.interval);
    for (int e = 0; e < numPerfEvents; ++e)
        w.f64(sample.raw.counts[static_cast<size_t>(e)]);
    w.f64(sample.osDiskInterrupts);
    w.f64(sample.osDeviceInterrupts);
    for (int r = 0; r < numRails; ++r)
        w.f64(sample.measuredWatts[static_cast<size_t>(r)]);
    w.u32(static_cast<uint32_t>(sample.cpus));
    w.u64(sample.enqueueTick);
}

void
restoreSample(CheckpointReader &r, StreamSample &sample)
{
    sample.client = r.u64();
    sample.seq = r.u64();
    sample.time = r.f64();
    sample.interval = r.f64();
    for (int e = 0; e < numPerfEvents; ++e)
        sample.raw.counts[static_cast<size_t>(e)] = r.f64();
    sample.osDiskInterrupts = r.f64();
    sample.osDeviceInterrupts = r.f64();
    for (int rail = 0; rail < numRails; ++rail)
        sample.measuredWatts[static_cast<size_t>(rail)] = r.f64();
    sample.cpus = static_cast<int>(r.u32());
    sample.enqueueTick = r.u64();
}

void
appendSection(std::string &file, uint32_t id, const std::string &payload)
{
    const uint64_t length = payload.size();
    const uint64_t crc = fnv1a64(payload.data(), payload.size());
    file.append(reinterpret_cast<const char *>(&id), sizeof id);
    file.append(reinterpret_cast<const char *>(&length), sizeof length);
    file.append(payload);
    file.append(reinterpret_cast<const char *>(&crc), sizeof crc);
}

/**
 * Read and validate one checkpoint file end to end (magic, version,
 * bounds, per-section CRC). Returns false with a one-line reason;
 * never fatals - a torn file is an expected input here.
 */
bool
parseCheckpointFile(const std::string &path, Parsed &out,
                    std::string &why)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        why = "cannot open";
        return false;
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        why = "read failed";
        return false;
    }

    size_t pos = 0;
    auto need = [&](size_t n) { return bytes.size() - pos >= n; };
    auto take = [&](void *dst, size_t n) {
        std::memcpy(dst, bytes.data() + pos, n);
        pos += n;
    };

    char magic[4];
    if (!need(sizeof magic)) {
        why = "truncated before magic";
        return false;
    }
    take(magic, sizeof magic);
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
        why = "bad magic (not a TDPC checkpoint)";
        return false;
    }

    Header &h = out.header;
    if (!need(sizeof h.version + 4 * sizeof(uint64_t) +
              sizeof h.sectionCount)) {
        why = "truncated header";
        return false;
    }
    take(&h.version, sizeof h.version);
    if (h.version != kCheckpointVersion) {
        why = "unsupported version " + std::to_string(h.version);
        return false;
    }
    take(&h.fingerprint, sizeof h.fingerprint);
    take(&h.generation, sizeof h.generation);
    take(&h.tick, sizeof h.tick);
    take(&h.digest, sizeof h.digest);
    take(&h.sectionCount, sizeof h.sectionCount);

    out.sections.clear();
    out.sections.reserve(h.sectionCount);
    for (uint32_t s = 0; s < h.sectionCount; ++s) {
        uint32_t id;
        uint64_t length;
        if (!need(sizeof id + sizeof length)) {
            why = "truncated section header";
            return false;
        }
        take(&id, sizeof id);
        take(&length, sizeof length);
        if (!need(length + sizeof(uint64_t))) {
            why = "truncated section " + std::to_string(id);
            return false;
        }
        std::string payload(bytes.data() + pos,
                            static_cast<size_t>(length));
        pos += static_cast<size_t>(length);
        uint64_t storedCrc;
        take(&storedCrc, sizeof storedCrc);
        if (fnv1a64(payload.data(), payload.size()) != storedCrc) {
            why = "CRC mismatch in section " + std::to_string(id);
            return false;
        }
        out.sections.emplace_back(id, std::move(payload));
    }
    if (pos != bytes.size()) {
        why = "trailing bytes after last section";
        return false;
    }

    out.fileCrc = fnv1a64(bytes.data(), bytes.size());
    out.path = path;
    return true;
}

/** True when @p path exists (any kind of entry). */
bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

} // namespace

std::string
checkpointGenerationPath(const std::string &base, uint64_t generation)
{
    return base + (generation % 2 == 0 ? ".gen0" : ".gen1");
}

bool
writeStreamCheckpoint(const StreamService &service,
                      const std::string &base, uint64_t generation,
                      const std::string &meta, CheckpointInfo *info,
                      std::string *error)
{
    std::string file;
    file.append(kMagic, sizeof kMagic);
    const uint32_t version = kCheckpointVersion;
    const uint64_t fingerprint = service.checkpointFingerprint();
    const uint64_t tick = service.now();
    const uint64_t digest = service.digest();
    const size_t shards =
        static_cast<size_t>(service.config().ingest.shards);
    const uint32_t sectionCount = static_cast<uint32_t>(3 + shards);
    file.append(reinterpret_cast<const char *>(&version),
                sizeof version);
    file.append(reinterpret_cast<const char *>(&fingerprint),
                sizeof fingerprint);
    file.append(reinterpret_cast<const char *>(&generation),
                sizeof generation);
    file.append(reinterpret_cast<const char *>(&tick), sizeof tick);
    file.append(reinterpret_cast<const char *>(&digest), sizeof digest);
    file.append(reinterpret_cast<const char *>(&sectionCount),
                sizeof sectionCount);

    {
        CheckpointWriter w;
        service.checkpointSaveIngest(w);
        appendSection(file, kSecIngest, w.buffer());
    }
    // Deterministic shard order: shard s is always section
    // kSecShardBase + s, whatever --jobs produced the state.
    for (size_t s = 0; s < shards; ++s) {
        CheckpointWriter w;
        service.checkpointSaveShard(s, w);
        appendSection(file, kSecShardBase + static_cast<uint32_t>(s),
                      w.buffer());
    }
    {
        CheckpointWriter w;
        service.checkpointSaveService(w);
        appendSection(file, kSecService, w.buffer());
    }
    appendSection(file, kSecMeta, meta);

    const std::string path = checkpointGenerationPath(base, generation);
    const bool ok = writeFileAtomic(
        path,
        [&](std::ostream &os) {
            os.write(file.data(),
                     static_cast<std::streamsize>(file.size()));
            return os.good();
        },
        error);
    if (ok && info != nullptr) {
        info->generation = generation;
        info->tick = tick;
        info->digest = digest;
        info->crc = fnv1a64(file.data(), file.size());
        info->path = path;
    }
    return ok;
}

RestoreResult
restoreStreamCheckpoint(StreamService &service, const std::string &base)
{
    RestoreResult res;
    if (service.now() != 0 || service.activeSessions() != 0) {
        res.error = "restore requires a freshly constructed service";
        return res;
    }

    // Validate both rotation slots fully in memory, then take the
    // newest usable generation. A slot that exists but fails any
    // check (torn write, CRC, foreign fingerprint) is a fallback
    // event, not a fatal.
    const uint64_t fingerprint = service.checkpointFingerprint();
    std::vector<Parsed> valid;
    std::string reasons;
    bool sawUnusable = false;
    for (int slot = 0; slot < 2; ++slot) {
        const std::string path =
            checkpointGenerationPath(base, static_cast<uint64_t>(slot));
        if (!fileExists(path))
            continue;
        Parsed parsed;
        std::string why;
        if (!parseCheckpointFile(path, parsed, why)) {
            sawUnusable = true;
            reasons += (reasons.empty() ? "" : "; ") + path + ": " + why;
            continue;
        }
        if (parsed.header.fingerprint != fingerprint) {
            sawUnusable = true;
            reasons += (reasons.empty() ? "" : "; ") + path +
                       ": config fingerprint mismatch";
            continue;
        }
        valid.push_back(std::move(parsed));
    }
    if (valid.empty()) {
        res.error = "no usable checkpoint at " + base +
                    (reasons.empty() ? " (no generation files)"
                                     : " (" + reasons + ")");
        return res;
    }
    size_t best = 0;
    for (size_t v = 1; v < valid.size(); ++v) {
        if (valid[v].header.generation >
            valid[best].header.generation)
            best = v;
    }
    const Parsed &chosen = valid[best];
    res.usedFallback = sawUnusable;
    if (sawUnusable) {
        res.warning = "falling back to generation " +
                      std::to_string(chosen.header.generation) + " (" +
                      reasons + ")";
        warn("stream checkpoint: %s", res.warning.c_str());
    }

    const size_t shards =
        static_cast<size_t>(service.config().ingest.shards);
    auto restoreSection = [&](uint32_t id, const char *what,
                              auto &&fn) -> bool {
        const std::string *payload = chosen.section(id);
        if (payload == nullptr) {
            res.error = std::string("missing section: ") + what;
            return false;
        }
        CheckpointReader r(payload->data(), payload->size());
        if (!fn(r) || !r.ok()) {
            res.error = std::string(what) + ": " +
                        (r.ok() ? "restore failed" : r.error());
            return false;
        }
        if (r.remaining() != 0) {
            res.error = std::string(what) + ": trailing bytes";
            return false;
        }
        return true;
    };

    if (!restoreSection(kSecIngest, "ingest", [&](CheckpointReader &r) {
            return service.checkpointRestoreIngest(r);
        }))
        return res;
    for (size_t s = 0; s < shards; ++s) {
        const std::string what = "shard " + std::to_string(s);
        if (!restoreSection(
                kSecShardBase + static_cast<uint32_t>(s), what.c_str(),
                [&](CheckpointReader &r) {
                    return service.checkpointRestoreShard(s, r);
                }))
            return res;
    }
    if (!restoreSection(kSecService, "service",
                        [&](CheckpointReader &r) {
                            return service.checkpointRestoreService(r);
                        }))
        return res;

    if (service.digest() != chosen.header.digest ||
        service.now() != chosen.header.tick) {
        res.error = "restored state does not match checkpoint header "
                    "(digest/tick)";
        return res;
    }
    if (const std::string *meta = chosen.section(kSecMeta))
        res.meta = *meta;

    service.checkpointRestoreFinish(chosen.header.generation,
                                    res.usedFallback);
    res.info.generation = chosen.header.generation;
    res.info.tick = chosen.header.tick;
    res.info.digest = chosen.header.digest;
    res.info.crc = chosen.fileCrc;
    res.info.path = chosen.path;
    res.ok = true;
    return res;
}

bool
peekStreamCheckpointMeta(const std::string &base, std::string *meta,
                         std::string *error)
{
    Parsed slots[2];
    bool usable[2] = {false, false};
    std::string reasons;
    for (int slot = 0; slot < 2; ++slot) {
        const std::string path =
            checkpointGenerationPath(base, static_cast<uint64_t>(slot));
        if (!fileExists(path))
            continue;
        std::string why;
        usable[slot] = parseCheckpointFile(path, slots[slot], why);
        if (!usable[slot])
            reasons += (reasons.empty() ? "" : "; ") + path + ": " + why;
    }
    const Parsed *best = nullptr;
    for (int slot = 0; slot < 2; ++slot) {
        if (usable[slot] &&
            (best == nullptr ||
             slots[slot].header.generation > best->header.generation))
            best = &slots[slot];
    }
    if (best == nullptr) {
        if (error != nullptr)
            *error = "no usable checkpoint at " + base +
                     (reasons.empty() ? " (no generation files)"
                                      : " (" + reasons + ")");
        return false;
    }
    const std::string *payload = best->section(kSecMeta);
    if (meta != nullptr)
        *meta = payload != nullptr ? *payload : "";
    return true;
}

StreamCheckpointer::StreamCheckpointer(StreamService &service,
                                       std::string base,
                                       uint64_t everyTicks,
                                       uint64_t startGeneration)
    : service_(service), base_(std::move(base)), every_(everyTicks),
      generation_(startGeneration)
{
    if (every_ == 0)
        fatal("StreamCheckpointer: everyTicks must be >= 1");
    if (base_.empty())
        fatal("StreamCheckpointer: base path must not be empty");
    if (startGeneration == 0) {
        // Fresh rotation: stale generations from a previous run with
        // the same base must not shadow this run's checkpoints.
        std::remove(checkpointGenerationPath(base_, 0).c_str());
        std::remove(checkpointGenerationPath(base_, 1).c_str());
    }
}

void
StreamCheckpointer::onTick()
{
    const uint64_t now = service_.now();
    if (now == 0 || now % every_ != 0)
        return;
    writeNow();
}

bool
StreamCheckpointer::writeNow()
{
    const uint64_t generation = generation_ + 1;
    CheckpointInfo info;
    std::string error;
    if (!writeStreamCheckpoint(service_, base_, generation, meta_,
                               &info, &error)) {
        ++failures_;
        service_.noteCheckpointFailure(generation);
        warn("stream checkpoint: generation %llu failed: %s",
             static_cast<unsigned long long>(generation),
             error.c_str());
        return false;
    }
    generation_ = generation;
    ++written_;
    last_ = info;
    service_.noteCheckpoint(info.generation, info.crc);
    return true;
}

void
StreamCheckpointer::addManifestSections(
    obs::RunManifest &manifest) const
{
    const char *section = "stream.checkpoint";
    manifest.addSectionEntry(section, "enabled", uint64_t{1});
    manifest.addSectionEntry(section, "every_ticks", every_);
    manifest.addSectionEntry(section, "generation", last_.generation);
    manifest.addSectionEntry(section, "tick", last_.tick);
    manifest.addSectionEntry(section, "digest", last_.digest);
    manifest.addSectionEntry(section, "crc", last_.crc);
    manifest.addSectionEntry(section, "written", written_);
    manifest.addSectionEntry(section, "failures", failures_);
    manifest.addSectionEntry(section, "restores",
                             service_.stats().restores);
    manifest.addSectionEntry(section, "fallbacks",
                             service_.stats().restoreFallbacks);
}

void
CheckpointReader::bytes(void *out, size_t n)
{
    if (!ok_ || size_ - pos_ < n) {
        fail("short read");
        std::memset(out, 0, n);
        return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
}

// ---------------------------------------------------------------------
// StreamService checkpoint sections. These are members (declared in
// service.hh) so the format stays in one translation unit without
// widening the service's public state surface.

uint64_t
StreamService::checkpointFingerprint() const
{
    uint64_t h = fnv1aBasis;
    auto fold = [&h](uint64_t v) { h = fnv1a64(&v, sizeof v, h); };
    auto foldDouble = [&fold](double v) {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        fold(bits);
    };

    fold(0x7d9c0001ull); // fingerprint format tag
    fold(static_cast<uint64_t>(kCheckpointVersion));
    fold(static_cast<uint64_t>(cfg_.ingest.shards));
    fold(cfg_.ingest.ringCapacity);
    fold(cfg_.ingest.highWatermark);
    fold(cfg_.ingest.seed);
    fold(static_cast<uint64_t>(cfg_.session.counterWidthBits));
    fold(cfg_.session.idleTimeoutTicks);
    fold(cfg_.session.quarantineThreshold);
    fold(cfg_.session.wattsWindow);
    fold(cfg_.drift.window);
    foldDouble(cfg_.drift.factor);
    foldDouble(cfg_.drift.floorWatts);
    fold(cfg_.drift.healthyWindows);
    fold(cfg_.refitBlockRows);
    fold(cfg_.refitWindowBlocks);
    fold(cfg_.drainBudget);
    fold(cfg_.evictEveryTicks);
    fold(cfg_.verifyRefits ? 1 : 0);

    // The fallback rungs never refit at runtime, so their trained
    // coefficients identify the training run: a checkpoint written
    // against a differently trained estimator must not restore.
    for (int r = 0; r < numRails; ++r) {
        const Rail rail = static_cast<Rail>(r);
        fold(est_.model(rail).coefficients().size());
        for (const auto &rung : est_.fallbacks(rail)) {
            fold(rung->trained() ? 1 : 0);
            if (!rung->trained())
                continue;
            const std::vector<double> coefs = rung->coefficients();
            fold(coefs.size());
            for (const double c : coefs)
                foldDouble(c);
        }
    }
    return h;
}

void
StreamService::checkpointSaveIngest(CheckpointWriter &w) const
{
    ingest_.checkpointSave(w);
}

bool
StreamService::checkpointRestoreIngest(CheckpointReader &r)
{
    return ingest_.checkpointRestore(r);
}

void
StreamService::checkpointSaveShard(size_t shard,
                                   CheckpointWriter &w) const
{
    sessions_[shard].checkpointSave(w);
    const SampleRing &ring = ingest_.shard(static_cast<int>(shard));
    w.u64(ring.size());
    for (size_t i = 0; i < ring.size(); ++i)
        saveSample(w, ring.at(i));
}

bool
StreamService::checkpointRestoreShard(size_t shard,
                                      CheckpointReader &r)
{
    if (!sessions_[shard].checkpointRestore(r))
        return false;
    SampleRing &ring = ingest_.shard(static_cast<int>(shard));
    ring.clear();
    const uint64_t queued = r.u64();
    if (queued > ring.capacity()) {
        r.fail("ring occupancy exceeds capacity");
        return false;
    }
    StreamSample sample;
    for (uint64_t i = 0; i < queued; ++i) {
        restoreSample(r, sample);
        if (!r.ok())
            return false;
        ring.push(sample);
    }
    return r.ok();
}

void
StreamService::checkpointSaveService(CheckpointWriter &w) const
{
    w.u64(now_);
    w.u64(digest_);
    w.u64(stats_.ticks);
    w.u64(stats_.drained);
    w.u64(stats_.estimates);
    w.u64(stats_.quarantinedAtDoor);
    w.u64(stats_.evictionSweeps);
    w.u64(stats_.checkpoints);
    w.u64(stats_.checkpointFailures);
    w.u64(stats_.restores);
    w.u64(stats_.restoreFallbacks);
    for (int b = 0; b < obs::histogramBuckets; ++b)
        w.u64(latency_[static_cast<size_t>(b)]);
    w.u64(latencyCount_);
    w.u64(latencyMax_);

    for (int r = 0; r < numRails; ++r) {
        const Rail rail = static_cast<Rail>(r);
        const RailState &state = rails_[static_cast<size_t>(r)];
        w.u64(state.refits);
        w.u64(state.fullQrRefits);
        w.u64(state.verifiedRefits);
        w.u64(state.degradedPublishes);
        w.u64(state.unestimable);
        w.u64(state.blocksAtLastRefit);
        w.f64(state.lastRefitRmse);
        w.u8(state.publishingFallback ? 1 : 0);
        state.drift->checkpointSave(w);
        state.rls->checkpointSave(w);
        // The primary model refits at runtime; its live coefficients
        // are state. (The chipset's intercept-only fit included.)
        const std::vector<double> coefs =
            est_.model(rail).coefficients();
        w.u32(static_cast<uint32_t>(coefs.size()));
        for (const double c : coefs)
            w.f64(c);
    }
}

bool
StreamService::checkpointRestoreService(CheckpointReader &r)
{
    now_ = r.u64();
    digest_ = r.u64();
    stats_.ticks = r.u64();
    stats_.drained = r.u64();
    stats_.estimates = r.u64();
    stats_.quarantinedAtDoor = r.u64();
    stats_.evictionSweeps = r.u64();
    stats_.checkpoints = r.u64();
    stats_.checkpointFailures = r.u64();
    stats_.restores = r.u64();
    stats_.restoreFallbacks = r.u64();
    for (int b = 0; b < obs::histogramBuckets; ++b)
        latency_[static_cast<size_t>(b)] = r.u64();
    latencyCount_ = r.u64();
    latencyMax_ = r.u64();

    std::vector<double> coefs;
    for (int rail = 0; rail < numRails; ++rail) {
        RailState &state = rails_[static_cast<size_t>(rail)];
        state.refits = r.u64();
        state.fullQrRefits = r.u64();
        state.verifiedRefits = r.u64();
        state.degradedPublishes = r.u64();
        state.unestimable = r.u64();
        state.blocksAtLastRefit = r.u64();
        state.lastRefitRmse = r.f64();
        state.publishingFallback = r.u8() != 0;
        if (!state.drift->checkpointRestore(r))
            return false;
        if (!state.rls->checkpointRestore(r))
            return false;
        const uint32_t count = r.u32();
        SubsystemModel &model =
            est_.model(static_cast<Rail>(rail));
        if (count != model.coefficients().size()) {
            r.fail("primary coefficient count mismatch");
            return false;
        }
        coefs.resize(count);
        for (uint32_t c = 0; c < count; ++c)
            coefs[static_cast<size_t>(c)] = r.f64();
        if (!r.ok())
            return false;
        model.setCoefficients(coefs);
    }
    return r.ok();
}

void
StreamService::checkpointRestoreFinish(uint64_t generation,
                                       bool usedFallback)
{
    ++stats_.restores;
    if (usedFallback)
        ++stats_.restoreFallbacks;
    // Prime the timeline delta base with the restored cumulative
    // counters: the first window sealed after restore must report
    // the activity of that window, not of the whole previous life.
    telemetry_.primeDeltaBase(cumulativeTimelineCounters());
    telemetry_.flight(telemetry_.serviceRing(), FlightKind::Restore,
                      now_, generation, usedFallback ? 1 : 0);
}

void
StreamService::noteCheckpoint(uint64_t generation, uint64_t crc)
{
    ++stats_.checkpoints;
    telemetry_.flight(telemetry_.serviceRing(), FlightKind::Checkpoint,
                      now_, generation, crc);
}

void
StreamService::noteCheckpointFailure(uint64_t generation)
{
    ++stats_.checkpointFailures;
    telemetry_.flight(telemetry_.serviceRing(),
                      FlightKind::CheckpointFailed, now_, generation);
}

} // namespace stream
} // namespace tdp

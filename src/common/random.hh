/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (sensor noise, seek
 * distances, sampling jitter, ...) draws from Rng instances seeded from
 * an experiment-level master seed, so every run is reproducible
 * bit-for-bit. The generator is xoshiro256++ seeded via SplitMix64,
 * which is fast, has a 2^256-1 period and passes BigCrush.
 */

#ifndef TDP_COMMON_RANDOM_HH
#define TDP_COMMON_RANDOM_HH

#include <cstdint>
#include <string>

namespace tdp {

/** SplitMix64 step; used for seeding and cheap hashing. */
uint64_t splitMix64(uint64_t &state);

/** Stable 64-bit hash of a string (FNV-1a finalized by SplitMix64). */
uint64_t hashString(const std::string &s);

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Construct a stream derived from a parent seed and a stream name.
     * Distinct names give statistically independent streams, so
     * components can be added/removed without perturbing each other's
     * draws.
     */
    Rng(uint64_t parent_seed, const std::string &stream_name);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller with a cached spare. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Exponential with the given rate (mean 1/rate). */
    double exponential(double rate);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /**
     * Poisson-distributed count with the given mean. Uses Knuth's
     * algorithm for small means and a normal approximation above 64,
     * which is ample for per-quantum event counts.
     */
    uint64_t poisson(double mean);

  private:
    uint64_t s_[4];
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

} // namespace tdp

#endif // TDP_COMMON_RANDOM_HH

file(REMOVE_RECURSE
  "CMakeFiles/ablate_memory_inputs.dir/ablate_memory_inputs.cc.o"
  "CMakeFiles/ablate_memory_inputs.dir/ablate_memory_inputs.cc.o.d"
  "ablate_memory_inputs"
  "ablate_memory_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_memory_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

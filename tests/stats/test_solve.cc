/**
 * @file
 * Tests for the linear solvers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "stats/solve.hh"

namespace tdp {
namespace {

TEST(SolveLinear, TwoByTwo)
{
    const Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    const auto x = solveLinearSystem(a, {5, 10});
    ASSERT_EQ(x.size(), 2u);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinear, RequiresPivoting)
{
    // Zero on the diagonal: naive elimination would fail.
    const Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
    const auto x = solveLinearSystem(a, {2, 3});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveLinear, SingularFatal)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {2, 4}});
    EXPECT_THROW(solveLinearSystem(a, {1, 2}), FatalError);
}

TEST(SolveLinear, RandomRoundTrip)
{
    Rng rng(21);
    const size_t n = 6;
    Matrix a(n, n);
    std::vector<double> x_true(n);
    for (size_t r = 0; r < n; ++r) {
        x_true[r] = rng.uniform(-5, 5);
        for (size_t c = 0; c < n; ++c)
            a(r, c) = rng.uniform(-1, 1);
        a(r, r) += 4.0; // diagonally dominant, well conditioned
    }
    const std::vector<double> b = a * x_true;
    const auto x = solveLinearSystem(a, b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SolveQr, ExactSquareSystem)
{
    const Matrix a = Matrix::fromRows({{1, 1}, {1, 2}});
    const auto x = solveLeastSquaresQr(a, {3, 5});
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(SolveQr, OverdeterminedLeastSquares)
{
    // Noisy y ~ 2x + 1; the exact least-squares solution for this
    // data is intercept 1.06, slope 1.96 (hand-computed).
    const Matrix a =
        Matrix::fromRows({{1, 0}, {1, 1}, {1, 2}, {1, 3}});
    const std::vector<double> b = {1.1, 2.9, 5.1, 6.9};
    const auto x = solveLeastSquaresQr(a, b);
    EXPECT_NEAR(x[0], 1.06, 1e-10);
    EXPECT_NEAR(x[1], 1.96, 1e-10);
}

TEST(SolveQr, UnderdeterminedFatal)
{
    const Matrix a(1, 2);
    EXPECT_THROW(solveLeastSquaresQr(a, {1.0}), FatalError);
}

TEST(SolveQr, RankDeficientFatal)
{
    const Matrix a =
        Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
    EXPECT_THROW(solveLeastSquaresQr(a, {1, 2, 3}), FatalError);
}

TEST(SolveQr, ColumnAlreadyTriangular)
{
    // First column has a single nonzero entry at the diagonal - the
    // Householder reflection degenerates; the sign convention must
    // keep it stable.
    const Matrix a = Matrix::fromRows({{3, 1}, {0, 2}});
    const auto x = solveLeastSquaresQr(a, {9, 4});
    EXPECT_NEAR(x[0], 7.0 / 3.0, 1e-10);
    EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(SolveQr, MatchesNormalEquationsOnRandomProblem)
{
    Rng rng(31);
    const size_t m = 40, n = 4;
    Matrix a(m, n);
    std::vector<double> coef = {3.0, -1.5, 0.25, 2.0};
    std::vector<double> b(m);
    for (size_t r = 0; r < m; ++r) {
        double acc = 0.0;
        for (size_t c = 0; c < n; ++c) {
            a(r, c) = rng.uniform(-2, 2);
            acc += a(r, c) * coef[c];
        }
        b[r] = acc; // exact, so both methods agree to round-off
    }
    const auto x = solveLeastSquaresQr(a, b);
    for (size_t c = 0; c < n; ++c)
        EXPECT_NEAR(x[c], coef[c], 1e-9);
}

} // namespace
} // namespace tdp

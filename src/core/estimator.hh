/**
 * @file
 * System power estimator: the runtime artifact the paper enables -
 * five trained subsystem models fed by one per-second counter sample,
 * no power sensing hardware required.
 *
 * Production PMUs cannot always schedule every event (multiplexing
 * pressure), so each rail may carry a *fallback chain* behind its
 * primary model: e.g. memory Equation 3 (bus transactions) degrades
 * to Equation 2 (L3 misses) and finally to a trained constant when
 * the required events read as NaN. Every degraded estimate is
 * recorded in a Health report naming the rung used and why.
 */

#ifndef TDP_CORE_ESTIMATOR_HH
#define TDP_CORE_ESTIMATOR_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/model.hh"

namespace tdp {

/** One estimate: per-subsystem and total power. */
struct PowerBreakdown
{
    /** Per-rail estimated power (W). */
    std::array<Watts, numRails> watts{};

    /** Power of one rail. */
    Watts
    rail(Rail r) const
    {
        return watts[static_cast<size_t>(r)];
    }

    /** Total system power (W). */
    Watts total() const;
};

/** How one rail's estimates have been produced since the last reset. */
struct RailHealth
{
    /** Rail display name. */
    std::string rail;

    /** Model names, primary first, then the fallback rungs. */
    std::vector<std::string> rungNames;

    /** Estimates produced by each rung (index-parallel to names). */
    std::vector<uint64_t> rungUses;

    /** Total estimates for this rail. */
    uint64_t estimates = 0;

    /** Estimates that came from a fallback rung. */
    uint64_t degraded = 0;

    /** Estimates where no rung produced a finite value. */
    uint64_t unestimable = 0;

    /** Unique degradation reasons observed (bounded). */
    std::vector<std::string> reasons;

    /** True when every estimate came from the primary model. */
    bool healthy() const { return degraded == 0 && unestimable == 0; }
};

/** Degradation report across all rails. */
struct HealthReport
{
    /** Per-rail health, in rail order. */
    std::array<RailHealth, numRails> rails;

    /** True when any rail estimated below its primary model. */
    bool degraded() const;

    /** Human-readable multi-line summary. */
    std::string describe() const;
};

/**
 * Holds one model per subsystem and evaluates them together. The
 * default configuration is the paper's final model set: CPU fetch
 * model, memory bus-transaction model, disk interrupt+DMA model, I/O
 * interrupt model and the chipset constant.
 *
 * Health accounting is not synchronised: share one estimator across
 * threads only for read-free use, or give each thread its own copy.
 */
class SystemPowerEstimator
{
  public:
    /** Build with the paper's final model set (untrained). */
    static SystemPowerEstimator makePaperModelSet();

    /**
     * Build the paper model set with graceful-degradation fallback
     * chains: memory bus -> L3 miss -> constant; CPU, disk and I/O
     * each degrade to a trained constant. The chipset primary is
     * already a constant and needs no fallback.
     */
    static SystemPowerEstimator makeDegradableModelSet();

    /** Build empty; add models with setModel(). */
    SystemPowerEstimator() = default;

    /** Install (or replace) the primary model for its rail. */
    void setModel(std::unique_ptr<SubsystemModel> model);

    /**
     * Append a fallback rung behind the rail's primary model. The
     * primary must already be installed; rungs are consulted in
     * installation order when every earlier rung yields a non-finite
     * estimate (e.g. its PMU events are unavailable).
     */
    void addFallback(std::unique_ptr<SubsystemModel> model);

    /** The fallback chain of one rail (may be empty). */
    const std::vector<std::unique_ptr<SubsystemModel>> &
    fallbacks(Rail rail) const
    {
        return fallbacks_[static_cast<size_t>(rail)];
    }

    /** The primary model for one rail; fatal() if absent. */
    SubsystemModel &model(Rail rail);

    /** The primary model for one rail; fatal() if absent. */
    const SubsystemModel &model(Rail rail) const;

    /** True when all five rails have trained primary models. */
    bool ready() const;

    /** Train every installed model (and rung) on one shared trace. */
    void trainAll(const SampleTrace &trace);

    /**
     * Train one rail's primary model and fallback rungs on one
     * trace. When the rail has fallbacks, a rung whose fit fails
     * (e.g. its PMU events were unavailable all run, leaving the
     * regressors non-finite) is left untrained with a warning and
     * the chain degrades at estimate time; a single-model rail
     * propagates the failure as before.
     */
    void trainRail(Rail rail, const SampleTrace &trace);

    /**
     * Estimate one rail for one sample, walking the fallback chain
     * until a trained rung yields a finite value. Degradations are
     * recorded in the health report.
     */
    Watts estimateRail(const EventVector &events, Rail rail) const;

    /** Estimate all subsystems for one sample. */
    PowerBreakdown estimate(const EventVector &events) const;

    /** Estimate across a whole trace. */
    std::vector<PowerBreakdown> estimateTrace(
        const SampleTrace &trace) const;

    /** Modeled power column for one rail over a trace. */
    std::vector<double> modeledColumn(const SampleTrace &trace,
                                      Rail rail) const;

    /** Degradation report accumulated since the last reset. */
    HealthReport health() const;

    /** Clear the degradation accounting. */
    void resetHealth();

    /** Describe all models (fitted equations). */
    std::string describe() const;

  private:
    /** Mutable per-rail health accumulators. */
    struct RailHealthState
    {
        uint64_t estimates = 0;
        uint64_t degraded = 0;
        uint64_t unestimable = 0;
        std::vector<uint64_t> rungUses;
        std::vector<std::string> reasons;
    };

    void recordReason(RailHealthState &state,
                      const EventVector &events,
                      const std::string &from,
                      const std::string &to) const;

    std::array<std::unique_ptr<SubsystemModel>, numRails> models_;
    std::array<std::vector<std::unique_ptr<SubsystemModel>>, numRails>
        fallbacks_;
    mutable std::array<RailHealthState, numRails> health_;
};

} // namespace tdp

#endif // TDP_CORE_ESTIMATOR_HH

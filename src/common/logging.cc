/**
 * @file
 * Implementation of the status and error reporting helpers.
 */

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tdp {

namespace {

LogLevel globalLevel = LogLevel::Warn;

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

std::string
vformatString(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformatString(fmt, args);
    va_end(args);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    if (globalLevel >= LogLevel::Error)
        emit("fatal", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    if (globalLevel >= LogLevel::Error)
        emit("panic", msg);
    throw PanicError(msg);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", vformatString(fmt, args));
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Info)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", vformatString(fmt, args));
    va_end(args);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel < LogLevel::Debug)
        return;
    va_list args;
    va_start(args, fmt);
    emit("debug", vformatString(fmt, args));
    va_end(args);
}

} // namespace tdp

/**
 * @file
 * End-to-end integration tests: the paper's full methodology - run
 * instrumented workloads, train the five models on their training
 * traces, validate on unseen runs - must land within the paper's
 * error envelope.
 */

#include <gtest/gtest.h>

#include "core/trainer.hh"
#include "core/validator.hh"
#include "platform/server.hh"
#include "stats/metrics.hh"

namespace tdp {
namespace {

/** Run one workload and return the aligned trace. */
SampleTrace
runWorkload(const std::string &name, int instances, Seconds stagger,
            Seconds duration, uint64_t seed, Seconds skip = 0.0)
{
    Server server(seed);
    if (instances > 0)
        server.runner().launchStaggered(name, instances, 1.0, stagger);
    server.run(duration);
    const SampleTrace &trace = server.rig().collect();
    return skip > 0.0 ? trace.slice(skip, duration + 1.0) : trace;
}

/** Shared trained estimator (expensive; built once). */
const SystemPowerEstimator &
estimator()
{
    static const SystemPowerEstimator est = [] {
        SystemPowerEstimator e =
            SystemPowerEstimator::makePaperModelSet();
        ModelTrainer trainer;
        trainer.setTrainingTrace(
            Rail::Cpu, runWorkload("gcc", 8, 30.0, 280.0, 0xAA));
        trainer.setTrainingTrace(
            Rail::Memory, runWorkload("mcf", 8, 30.0, 280.0, 0xBB));
        const SampleTrace diskload =
            runWorkload("diskload", 8, 5.0, 160.0, 0xCC);
        trainer.setTrainingTrace(Rail::Disk, diskload);
        trainer.setTrainingTrace(Rail::Io, diskload);
        trainer.setTrainingTrace(
            Rail::Chipset, runWorkload("idle", 0, 0.0, 60.0, 0xDD));
        EXPECT_TRUE(trainer.complete());
        trainer.train(e);
        return e;
    }();
    return est;
}

TEST(FullPipeline, EstimatorTrainsToReadiness)
{
    EXPECT_TRUE(estimator().ready());
}

TEST(FullPipeline, CpuModelCoefficientsNearGroundTruth)
{
    const auto coeffs =
        estimator().model(Rail::Cpu).coefficients();
    ASSERT_EQ(coeffs.size(), 3u);
    // Intercept ~ 4 x 9.25 (idle per package); active ~ 26.45; the
    // uop coefficient absorbs gcc's speculation overhead so it sits
    // a little above the true 4.31.
    EXPECT_NEAR(coeffs[0], 37.0, 3.0);
    EXPECT_NEAR(coeffs[1], 26.45, 3.0);
    EXPECT_NEAR(coeffs[2], 4.31, 2.0);
}

TEST(FullPipeline, ValidationWithinPaperEnvelope)
{
    Validator validator(estimator(), 0.0);

    struct Expectation
    {
        const char *workload;
        Rail rail;
        double max_error;
    };
    // Bounds are ~1.5x the paper's reported errors: the claim under
    // test is the envelope ("average error below 9-15% per rail"),
    // not the exact decimals.
    const Expectation cases[] = {
        {"vortex", Rail::Cpu, 0.10},
        {"vortex", Rail::Memory, 0.10},
        {"mesa", Rail::Cpu, 0.08},
        {"mesa", Rail::Io, 0.02},
        {"mesa", Rail::Disk, 0.02},
        {"specjbb", Rail::Cpu, 0.12},
        {"specjbb", Rail::Memory, 0.12},
    };
    for (const Expectation &e : cases) {
        const SampleTrace trace =
            runWorkload(e.workload, 8, 0.0, 120.0, 0x11, 30.0);
        const auto result = validator.validate(e.workload, trace);
        EXPECT_LT(result.error(e.rail), e.max_error)
            << e.workload << " / " << railName(e.rail);
    }
}

TEST(FullPipeline, McfCpuErrorIsTheWorst)
{
    // The paper's signature result: the fetch-based CPU model
    // underestimates mcf (speculative stall power), making it the
    // worst CPU-model workload.
    Validator validator(estimator(), 0.0);
    const auto mcf = validator.validate(
        "mcf", runWorkload("mcf", 8, 0.0, 120.0, 0x12, 30.0));
    const auto vortex = validator.validate(
        "vortex", runWorkload("vortex", 8, 0.0, 120.0, 0x12, 30.0));
    EXPECT_GT(mcf.error(Rail::Cpu), vortex.error(Rail::Cpu));
    EXPECT_GT(mcf.error(Rail::Cpu), 0.05);
    EXPECT_LT(mcf.error(Rail::Cpu), 0.20);
}

TEST(FullPipeline, MemoryModelHoldsOnMcfButL3ModelFails)
{
    // Section 4.2.2 end-to-end: on the mcf ramp the bus-transaction
    // model stays accurate while an L3-miss model trained on mesa
    // underestimates.
    auto l3 = makeMemoryL3Model();
    l3->train(runWorkload("mesa", 8, 30.0, 280.0, 0xEE));

    const SampleTrace mcf_trace =
        runWorkload("mcf", 8, 30.0, 280.0, 0x13);
    std::vector<double> l3_modeled, bus_modeled, measured;
    const SubsystemModel &bus_model = estimator().model(Rail::Memory);
    for (const AlignedSample &s : mcf_trace.samples()) {
        const EventVector ev = EventVector::fromSample(s);
        l3_modeled.push_back(l3->estimate(ev));
        bus_modeled.push_back(bus_model.estimate(ev));
        measured.push_back(s.measured(Rail::Memory));
    }
    const double l3_err = averageError(l3_modeled, measured);
    const double bus_err = averageError(bus_modeled, measured);
    EXPECT_GT(l3_err, 2.0 * bus_err);
    EXPECT_LT(bus_err, 0.05);
}

TEST(FullPipeline, TotalSystemPowerWithinFivePercent)
{
    // The headline capability: complete-system power from counters
    // alone.
    Validator validator(estimator(), 0.0);
    for (const char *workload : {"specjbb", "wupwise"}) {
        const SampleTrace trace =
            runWorkload(workload, 8, 0.0, 120.0, 0x14, 30.0);
        double measured_total = 0.0, modeled_total = 0.0;
        for (const AlignedSample &s : trace.samples()) {
            for (int r = 0; r < numRails; ++r)
                measured_total += s.measured(static_cast<Rail>(r));
            modeled_total +=
                estimator()
                    .estimate(EventVector::fromSample(s))
                    .total();
        }
        EXPECT_NEAR(modeled_total / measured_total, 1.0, 0.05)
            << workload;
    }
}

} // namespace
} // namespace tdp

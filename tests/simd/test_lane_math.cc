/**
 * @file
 * Bit-identity tests for the elementwise lane kernels: every dispatch
 * level the CPU supports must produce byte-for-byte the scalar
 * level's output, including on adversarial IEEE-754 inputs (NaN
 * payloads, infinities, signed zeros, denormals) and on lengths that
 * are not a multiple of the lane width.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "simd/dispatch.hh"
#include "simd/lane_math.hh"

namespace tdp {
namespace {

/** Levels this machine can actually execute. */
std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (detectedSimdLevel() >= SimdLevel::Sse2)
        levels.push_back(SimdLevel::Sse2);
    if (detectedSimdLevel() >= SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
    return levels;
}

/**
 * Adversarial values: the cases where "equal" and "bitwise equal"
 * diverge, plus ordinary magnitudes to exercise the arithmetic.
 *
 * Only one side of each binary operation may carry NaNs (see the
 * lane_math.hh contract: a two-NaN add keeps the first operand's
 * payload, and operand order is the compiler's choice at the scalar
 * level), so the other side draws from the NaN-free set -- which
 * still includes infinities, signed zeros and denormals, and can
 * still *generate* NaNs (Inf - Inf, 0 * Inf); those are the default
 * NaN whatever the operand order.
 */
std::vector<double>
adversarialValues(size_t n, uint32_t salt)
{
    const double quiet_nan =
        std::bit_cast<double>(UINT64_C(0x7ff8dead00000000));
    const double other_nan =
        std::bit_cast<double>(UINT64_C(0x7ff8000000c0ffee));
    const double denormal = 5e-324;
    const double small_denormal = 2.2250738585072011e-308;
    const double patterns[] = {
        0.0,       -0.0,       1.0,          -1.0,
        quiet_nan, other_nan,  1e308,        -1e308,
        denormal,  -denormal,  small_denormal,
        1.0 / 0.0, -1.0 / 0.0, 3.7,          -123.456,
        1e-9,
    };
    constexpr size_t kPatterns = sizeof(patterns) / sizeof(double);
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = patterns[(i * 2654435761u + salt) % kPatterns];
    return out;
}

/** Same soup minus the NaNs, for the other side of each operation. */
std::vector<double>
nanFreeValues(size_t n, uint32_t salt)
{
    const double denormal = 5e-324;
    const double small_denormal = 2.2250738585072011e-308;
    const double patterns[] = {
        0.0,      -0.0,      1.0,        -1.0,   1e308,
        -1e308,   denormal,  -denormal,  small_denormal,
        1.0 / 0.0, -1.0 / 0.0, 3.7,      -123.456, 1e-9,
    };
    constexpr size_t kPatterns = sizeof(patterns) / sizeof(double);
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = patterns[(i * 2654435761u + salt) % kPatterns];
    return out;
}

void
expectBitEqual(const std::vector<double> &a,
               const std::vector<double> &b, const char *what,
               SimdLevel level)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(std::bit_cast<uint64_t>(a[i]),
                  std::bit_cast<uint64_t>(b[i]))
            << what << " differs from scalar at index " << i
            << " under " << simdLevelName(level);
    }
}

/** Lengths covering every n % kSimdLanes residue and the empty case. */
const size_t kLengths[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 13, 64, 67};

TEST(LaneMath, AddAssignBitIdenticalAcrossLevels)
{
    for (size_t n : kLengths) {
        const std::vector<double> src = adversarialValues(n, 7);
        const std::vector<double> base = nanFreeValues(n, 99);
        std::vector<double> ref = base;
        lanes::addAssignAt(SimdLevel::Scalar, ref.data(), src.data(),
                           n);
        for (SimdLevel level : supportedLevels()) {
            std::vector<double> dst = base;
            lanes::addAssignAt(level, dst.data(), src.data(), n);
            expectBitEqual(ref, dst, "addAssign", level);
        }
    }
}

TEST(LaneMath, AddBroadcastBitIdenticalAcrossLevels)
{
    const double broadcasts[] = {0.0, -0.0, 2.5,
                                 std::bit_cast<double>(
                                     UINT64_C(0x7ff8dead00000000)),
                                 1.0 / 0.0, 5e-324};
    for (size_t n : kLengths) {
        for (double v : broadcasts) {
            // A NaN broadcast may meet NaN slots only on one side.
            const std::vector<double> base =
                std::isnan(v) ? nanFreeValues(n, 3)
                              : adversarialValues(n, 3);
            std::vector<double> ref = base;
            lanes::addBroadcastAt(SimdLevel::Scalar, ref.data(), v, n);
            for (SimdLevel level : supportedLevels()) {
                std::vector<double> dst = base;
                lanes::addBroadcastAt(level, dst.data(), v, n);
                expectBitEqual(ref, dst, "addBroadcast", level);
            }
        }
    }
}

TEST(LaneMath, SubtractBitIdenticalAcrossLevels)
{
    for (size_t n : kLengths) {
        const std::vector<double> cur = adversarialValues(n, 11);
        const std::vector<double> prev = nanFreeValues(n, 23);
        std::vector<double> ref(n);
        lanes::subtractAt(SimdLevel::Scalar, ref.data(), cur.data(),
                          prev.data(), n);
        for (SimdLevel level : supportedLevels()) {
            std::vector<double> out(n);
            lanes::subtractAt(level, out.data(), cur.data(),
                              prev.data(), n);
            expectBitEqual(ref, out, "subtract", level);
        }
    }
}

TEST(LaneMath, WrappedDeltasBitIdenticalAcrossLevels)
{
    // Mix in-range counter pairs (including wraparounds, where
    // cur < prev) with the adversarial soup: the blend mask path must
    // agree with scalar on every input class.
    for (size_t n : kLengths) {
        std::vector<double> cur = adversarialValues(n, 31);
        std::vector<double> prev = nanFreeValues(n, 47);
        for (size_t i = 0; i + 1 < n; i += 2) {
            cur[i] = static_cast<double>((i * 977) % 5000);
            prev[i] = static_cast<double>((i * 1993) % 5000);
        }
        const double span = 4294967296.0;
        std::vector<double> ref(n);
        lanes::wrappedDeltasAt(SimdLevel::Scalar, ref.data(),
                               cur.data(), prev.data(), span, n);
        for (SimdLevel level : supportedLevels()) {
            std::vector<double> out(n);
            lanes::wrappedDeltasAt(level, out.data(), cur.data(),
                                   prev.data(), span, n);
            expectBitEqual(ref, out, "wrappedDeltas", level);
        }
    }
}

TEST(LaneMath, MulAddBitIdenticalAcrossLevels)
{
    // mul+add is the kernel FMA contraction would silently change;
    // identity across levels also guards the -ffp-contract=off
    // build contract.
    for (size_t n : kLengths) {
        const std::vector<double> a = adversarialValues(n, 5);
        const std::vector<double> b = nanFreeValues(n, 17);
        const std::vector<double> c = nanFreeValues(n, 29);
        std::vector<double> ref(n);
        lanes::mulAddAt(SimdLevel::Scalar, ref.data(), a.data(),
                        b.data(), c.data(), n);
        for (SimdLevel level : supportedLevels()) {
            std::vector<double> out(n);
            lanes::mulAddAt(level, out.data(), a.data(), b.data(),
                            c.data(), n);
            expectBitEqual(ref, out, "mulAdd", level);
        }
    }
}

TEST(LaneMath, WrappedDeltasRecoverWraparound)
{
    const double span = 1000.0;
    const double cur[] = {10.0, 950.0, 0.0};
    const double prev[] = {990.0, 900.0, 999.0};
    double out[3] = {};
    lanes::wrappedDeltas(out, cur, prev, span, 3);
    EXPECT_DOUBLE_EQ(out[0], 20.0);
    EXPECT_DOUBLE_EQ(out[1], 50.0);
    EXPECT_DOUBLE_EQ(out[2], 1.0);
}

} // namespace
} // namespace tdp

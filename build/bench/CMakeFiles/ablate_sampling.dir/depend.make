# Empty dependencies file for ablate_sampling.
# This may be replaced when dependencies are built.

/**
 * @file
 * Write-ahead run journal.
 *
 * The journal is the orchestration layer's crash-safety backbone: an
 * append-only log of task state transitions, one fsync'd, checksummed
 * record per transition, so a run killed at any instant leaves a
 * parseable prefix of its history on disk. `--resume <journal>`
 * replays that prefix, treats every task with a trace-published
 * record (whose trace still verifies in the cache) as done, and
 * re-runs only the remainder - with stdout bit-identical to an
 * uninterrupted run, because cached traces are lossless.
 *
 * On-disk format: one text line per record,
 *
 *   TDPJ1 <seq> <kind> <task> <fingerprint:016x> <attempt> \
 *       <detail> <crc:016x>\n
 *
 * where crc is the FNV-1a 64 hash of everything before the last
 * separator. `detail` is percent-escaped so the line stays exactly
 * 8 space-separated tokens. Records are written with a single
 * write(2) followed by fsync(2), so a crash can only tear the *last*
 * record.
 *
 * Replay policy mirrors that write discipline: a torn or corrupt
 * final record is tolerated (flagged, dropped - the crash case), but
 * a bad record with valid records after it, a checksum mismatch in
 * the body, or a sequence-number gap rejects the whole journal -
 * that is corruption or tampering, and resuming from it could
 * silently skip work.
 */

#ifndef TDP_RESILIENCE_RUN_JOURNAL_HH
#define TDP_RESILIENCE_RUN_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tdp {
namespace resilience {

/** Task state transitions the journal records. */
enum class JournalKind
{
    /** A batch of tasks begins (detail = tool/batch label). */
    RunBegin,

    /** A task joined the batch (fingerprint + workload detail). */
    TaskQueued,

    /** An attempt at a task started (attempt >= 1). */
    TaskStarted,

    /** The task's trace landed in the cache (detail = provenance). */
    TracePublished,

    /** An attempt failed (detail = reason). */
    TaskFailed,

    /** The task exhausted its retries and was quarantined. */
    TaskQuarantined,

    /** The batch finished (detail = "complete" or "aborted"). */
    RunEnd,

    /** A graceful shutdown drained this run (detail = trigger). */
    Shutdown,
};

/** Stable wire name of a record kind. */
const char *journalKindName(JournalKind kind);

/** One journal record. */
struct JournalRecord
{
    uint64_t seq = 0;
    JournalKind kind = JournalKind::RunBegin;
    uint64_t task = 0;
    uint64_t fingerprint = 0;
    int attempt = 0;
    std::string detail;
};

/** Append-only, fsync'd, checksummed run journal. */
class RunJournal
{
  public:
    /** Line magic; doubles as the format version. */
    static constexpr const char *magic = "TDPJ1";

    RunJournal() = default;
    ~RunJournal();

    RunJournal(const RunJournal &) = delete;
    RunJournal &operator=(const RunJournal &) = delete;

    /**
     * Open for appending (created if missing). When the file already
     * has records, it is replayed first: a rejected journal fails the
     * open, a torn tail is truncated away, and new records continue
     * the surviving sequence. Returns false with a reason in *error.
     */
    bool open(const std::string &path, std::string *error = nullptr);

    /** True while a journal file is open. */
    bool isOpen() const { return fd_ >= 0; }

    /** Path given to open(). */
    const std::string &path() const { return path_; }

    /**
     * Append one record (thread-safe) and fsync it. Failures warn
     * and return false; the run continues - the journal degrades to
     * best-effort rather than taking the sweep down with it.
     */
    bool append(JournalKind kind, uint64_t task, uint64_t fingerprint,
                int attempt, const std::string &detail);

    /** Close the file (open() may be called again). */
    void close();

    /** Result of replaying a journal file. */
    struct Replay
    {
        /** Parsed records, in sequence order. */
        std::vector<JournalRecord> records;

        /**
         * True when the final record was torn (crash mid-append) and
         * dropped; the rest of the journal is still trustworthy.
         */
        bool tornTail = false;

        /** Non-empty when the journal was rejected outright. */
        std::string error;

        /** Byte length of the valid prefix (excludes a torn tail). */
        uint64_t validBytes = 0;

        /** True when the journal can be resumed from. */
        bool valid() const { return error.empty(); }
    };

    /**
     * Parse a journal file. A missing file is an error (resuming
     * from nothing is a caller bug worth surfacing).
     */
    static Replay replay(const std::string &path);

  private:
    std::mutex mutex_;
    std::string path_;
    int fd_ = -1;
    uint64_t nextSeq_ = 0;
};

} // namespace resilience
} // namespace tdp

#endif // TDP_RESILIENCE_RUN_JOURNAL_HH

/**
 * @file
 * The paper's subsystem power models (Equations 1-5).
 *
 * Every model maps the per-CPU event rates of one sample to the power
 * of one subsystem, summing a per-CPU linear or quadratic form across
 * the processors (the paper's NumCPUs sigma). Coefficients come from
 * regression against measured power (ModelTrainer) or can be set
 * explicitly.
 */

#ifndef TDP_CORE_MODEL_HH
#define TDP_CORE_MODEL_HH

#include <memory>
#include <string>
#include <vector>

#include "core/events.hh"
#include "measure/rail.hh"
#include "measure/trace.hh"

namespace tdp {

/** Abstract subsystem power model. */
class SubsystemModel
{
  public:
    virtual ~SubsystemModel() = default;

    /** Which rail this model estimates. */
    virtual Rail rail() const = 0;

    /** Short name, e.g. "cpu-fetch" or "memory-bus". */
    virtual const std::string &name() const = 0;

    /** Estimate the subsystem power for one sample (W). */
    virtual Watts estimate(const EventVector &events) const = 0;

    /** Fit coefficients from an aligned training trace. */
    virtual void train(const SampleTrace &trace) = 0;

    /** True once coefficients are available. */
    virtual bool trained() const = 0;

    /** Human-readable equation with fitted coefficients. */
    virtual std::string describe() const = 0;

    /** Flat coefficient list (intercept first), for serialisation. */
    virtual std::vector<double> coefficients() const = 0;

    /** Restore from a flat coefficient list. */
    virtual void setCoefficients(const std::vector<double> &coeffs) = 0;
};

/**
 * Equation 1: per-CPU linear model
 *   sum_i  idle + activeCoef * percentActive_i + uopCoef * uops_i .
 * The idle (per-CPU) constant folds into the fitted intercept.
 */
class CpuPowerModel : public SubsystemModel
{
  public:
    CpuPowerModel();

    Rail rail() const override { return Rail::Cpu; }
    const std::string &name() const override { return name_; }
    Watts estimate(const EventVector &events) const override;
    void train(const SampleTrace &trace) override;
    bool trained() const override { return trained_; }
    std::string describe() const override;
    std::vector<double> coefficients() const override;
    void setCoefficients(const std::vector<double> &coeffs) override;

    /**
     * Per-CPU power attribution: the per-package share of the model's
     * estimate, the capability the paper highlights for billing in
     * shared/virtualised servers (section 4.2.1).
     */
    Watts estimateCpu(const EventVector &events, int cpu) const;

  private:
    std::string name_ = "cpu-fetch";
    double intercept_ = 0.0;
    double activeCoef_ = 0.0;
    double uopCoef_ = 0.0;
    bool trained_ = false;
};

/**
 * A per-CPU quadratic in one event rate:
 *   intercept + sum_i (a * x_i + b * x_i^2)
 * covering Equations 2 (L3 misses), 3 (bus transactions) and 5
 * (interrupts), which differ only in the chosen rate.
 */
class QuadraticEventModel : public SubsystemModel
{
  public:
    /**
     * @param name model name.
     * @param rail estimated rail.
     * @param field event-rate selector.
     */
    QuadraticEventModel(std::string name, Rail rail,
                        double CpuEventRates::*field);

    Rail rail() const override { return rail_; }
    const std::string &name() const override { return name_; }
    Watts estimate(const EventVector &events) const override;
    void train(const SampleTrace &trace) override;
    bool trained() const override { return trained_; }
    std::string describe() const override;
    std::vector<double> coefficients() const override;
    void setCoefficients(const std::vector<double> &coeffs) override;

  private:
    std::string name_;
    Rail rail_;
    double CpuEventRates::*field_;
    double intercept_ = 0.0;
    double linear_ = 0.0;
    double quadratic_ = 0.0;
    bool trained_ = false;
};

/** Equation 2: memory power from L3 load misses per cycle. */
std::unique_ptr<QuadraticEventModel> makeMemoryL3Model();

/** Equation 3: memory power from bus transactions per Mcycle. */
std::unique_ptr<QuadraticEventModel> makeMemoryBusModel();

/** Equation 5: I/O power from device interrupts per cycle. */
std::unique_ptr<QuadraticEventModel> makeIoInterruptModel();

/**
 * Equation 4: disk power from per-CPU quadratics in disk-controller
 * interrupts per cycle and DMA accesses per cycle.
 */
class DiskPowerModel : public SubsystemModel
{
  public:
    DiskPowerModel();

    Rail rail() const override { return Rail::Disk; }
    const std::string &name() const override { return name_; }
    Watts estimate(const EventVector &events) const override;
    void train(const SampleTrace &trace) override;
    bool trained() const override { return trained_; }
    std::string describe() const override;
    std::vector<double> coefficients() const override;
    void setCoefficients(const std::vector<double> &coeffs) override;

  private:
    std::string name_ = "disk-irq-dma";
    double intercept_ = 0.0;
    double irqLinear_ = 0.0;
    double irqQuadratic_ = 0.0;
    double dmaLinear_ = 0.0;
    double dmaQuadratic_ = 0.0;
    bool trained_ = false;
};

/**
 * A trained constant for any rail: the mean measured power of the
 * training trace (finite samples only). The bottom rung of every
 * graceful-degradation chain - it consumes no counter events, so it
 * stays usable when the PMU can schedule nothing at all.
 */
class ConstantPowerModel : public SubsystemModel
{
  public:
    explicit ConstantPowerModel(Rail rail);

    Rail rail() const override { return rail_; }
    const std::string &name() const override { return name_; }
    Watts estimate(const EventVector &events) const override;
    void train(const SampleTrace &trace) override;
    bool trained() const override { return trained_; }
    std::string describe() const override;
    std::vector<double> coefficients() const override;
    void setCoefficients(const std::vector<double> &coeffs) override;

  private:
    Rail rail_;
    std::string name_;
    double constant_ = 0.0;
    bool trained_ = false;
};

/** The paper's chipset model: a fitted constant (section 4.2.5). */
class ChipsetPowerModel : public SubsystemModel
{
  public:
    ChipsetPowerModel();

    Rail rail() const override { return Rail::Chipset; }
    const std::string &name() const override { return name_; }
    Watts estimate(const EventVector &events) const override;
    void train(const SampleTrace &trace) override;
    bool trained() const override { return trained_; }
    std::string describe() const override;
    std::vector<double> coefficients() const override;
    void setCoefficients(const std::vector<double> &coeffs) override;

  private:
    std::string name_ = "chipset-const";
    double constant_ = 0.0;
    bool trained_ = false;
};

} // namespace tdp

#endif // TDP_CORE_MODEL_HH

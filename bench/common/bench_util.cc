/**
 * @file
 * Implementation of the bench helpers.
 */

#include "bench_util.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"
#include "exp/experiment_pool.hh"

namespace tdp {
namespace bench {

namespace {

/** 0 until resolved; set by initBench()/setJobs(). */
int configuredJobs = 0;

int
parseJobsValue(const char *text)
{
    const int parsed = std::atoi(text);
    if (parsed <= 0)
        fatal("--jobs expects a positive integer, got '%s'", text);
    return parsed;
}

} // namespace

void
setJobs(int jobs_count)
{
    if (jobs_count <= 0)
        fatal("setJobs: worker count must be positive, got %d",
              jobs_count);
    configuredJobs = jobs_count;
}

int
jobs()
{
    if (configuredJobs == 0)
        configuredJobs = ExperimentPool::defaultJobs();
    return configuredJobs;
}

void
initBench(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            if (i + 1 >= argc)
                fatal("%s expects a worker count", arg);
            setJobs(parseJobsValue(argv[++i]));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            setJobs(parseJobsValue(arg + 7));
        } else if (std::strncmp(arg, "-j", 2) == 0 && arg[2] != '\0') {
            setJobs(parseJobsValue(arg + 2));
        }
    }
}

std::vector<std::string>
positionalArgs(int argc, char **argv)
{
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 ||
            std::strcmp(arg, "-j") == 0) {
            ++i; // skip the value
        } else if (std::strncmp(arg, "--jobs=", 7) != 0 &&
                   !(std::strncmp(arg, "-j", 2) == 0 &&
                     arg[2] != '\0')) {
            out.push_back(arg);
        }
    }
    return out;
}

std::vector<SampleTrace>
runTraces(const std::vector<RunSpec> &specs)
{
    ExperimentPool pool(jobs());
    return pool.map<SampleTrace>(
        specs.size(), [&](size_t i) { return runTrace(specs[i]); });
}

RunSpec
characterizationRun(const std::string &workload)
{
    RunSpec spec;
    spec.workload = workload;
    if (workload == "idle") {
        spec.instances = 0;
        spec.duration = 120.0;
        spec.skip = 10.0;
    } else if (workload == "diskload") {
        spec.instances = 8;
        // Staggered starts desynchronise the periodic sync() flushes,
        // giving the sustained disk/I/O activity of the paper's trace.
        spec.stagger = 1.5;
        spec.duration = 200.0;
        spec.skip = 30.0;
    } else {
        spec.instances = 8;
        spec.duration = 180.0;
        spec.skip = 30.0;
    }
    return spec;
}

RunSpec
trainingRun(const std::string &workload)
{
    RunSpec spec;
    spec.workload = workload;
    spec.instances = 8;
    spec.firstStart = 1.0;
    spec.stagger = 30.0;
    spec.duration = 390.0;
    spec.skip = 0.0;
    // A different seed stream than the validation runs, so the models
    // are never validated on their own noise realisation.
    spec.seed = defaultSeed ^ 0x7e57ab1e;
    if (workload == "idle") {
        spec.instances = 0;
        spec.duration = 120.0;
    } else if (workload == "diskload") {
        spec.stagger = 5.0;
        spec.duration = 240.0;
    }
    return spec;
}

SampleTrace
runTrace(const RunSpec &spec, std::unique_ptr<Server> &out)
{
    Server::Params params;
    params.rig.faults = spec.faults;
    out = std::make_unique<Server>(spec.seed, params);
    if (spec.instances > 0) {
        out->runner().launchStaggered(spec.workload, spec.instances,
                                      spec.firstStart, spec.stagger);
    }
    out->run(spec.duration);
    const SampleTrace &full = out->rig().collect();
    if (spec.skip <= 0.0)
        return full;
    return full.slice(spec.skip, spec.duration + 1.0);
}

SampleTrace
runTrace(const RunSpec &spec)
{
    std::unique_ptr<Server> server;
    return runTrace(spec, server);
}

SystemPowerEstimator
trainPaperEstimator(uint64_t seed)
{
    SystemPowerEstimator estimator =
        SystemPowerEstimator::makePaperModelSet();

    auto spec_for = [seed](const std::string &name) {
        RunSpec spec = trainingRun(name);
        spec.seed ^= seed;
        return spec;
    };

    // The four training runs are independent systems; fan them across
    // the experiment pool.
    const std::vector<SampleTrace> traces =
        runTraces({spec_for("gcc"), spec_for("mcf"),
                   spec_for("diskload"), spec_for("idle")});

    ModelTrainer trainer;
    trainer.setTrainingTrace(Rail::Cpu, traces[0]);
    trainer.setTrainingTrace(Rail::Memory, traces[1]);
    trainer.setTrainingTrace(Rail::Disk, traces[2]);
    trainer.setTrainingTrace(Rail::Io, traces[2]);
    trainer.setTrainingTrace(Rail::Chipset, traces[3]);
    trainer.train(estimator);
    return estimator;
}

SystemPowerEstimator
trainDegradableEstimator(uint64_t seed, const FaultPlan &faults,
                         TrainingReport *report)
{
    SystemPowerEstimator estimator =
        SystemPowerEstimator::makeDegradableModelSet();

    auto spec_for = [seed, &faults](const std::string &name) {
        RunSpec spec = trainingRun(name);
        spec.seed ^= seed;
        spec.faults = faults;
        return spec;
    };

    const std::vector<SampleTrace> traces =
        runTraces({spec_for("gcc"), spec_for("mcf"),
                   spec_for("diskload"), spec_for("idle")});

    ModelTrainer trainer;
    trainer.setTrainingTrace(Rail::Cpu, traces[0]);
    trainer.setTrainingTrace(Rail::Memory, traces[1]);
    trainer.setTrainingTrace(Rail::Disk, traces[2]);
    trainer.setTrainingTrace(Rail::Io, traces[2]);
    trainer.setTrainingTrace(Rail::Chipset, traces[3]);
    const TrainingReport scrubbed = trainer.train(estimator);
    if (report)
        *report = scrubbed;
    return estimator;
}

std::vector<ValidationResult>
printErrorTable(const SystemPowerEstimator &estimator,
                const std::vector<std::string> &workloads,
                const std::string &average_label, uint64_t seed)
{
    // Tables 3/4 report Equation 6 on the raw rail values; the
    // DC-subtracted disk metric is only used for the Figure 6 trace.
    Validator validator(estimator, 0.0);

    std::vector<RunSpec> specs;
    for (const std::string &name : workloads) {
        RunSpec spec = characterizationRun(name);
        spec.seed = seed;
        specs.push_back(spec);
    }
    const std::vector<SampleTrace> traces = runTraces(specs);

    std::vector<ValidationResult> results;
    for (size_t i = 0; i < workloads.size(); ++i)
        results.push_back(validator.validate(workloads[i], traces[i]));

    TableWriter table(
        {"workload", "CPU", "Chipset", "Memory", "I/O", "Disk"});
    auto add_row = [&table](const ValidationResult &r) {
        table.addRow({r.workload, TableWriter::pct(r.error(Rail::Cpu)),
                      TableWriter::pct(r.error(Rail::Chipset)),
                      TableWriter::pct(r.error(Rail::Memory)),
                      TableWriter::pct(r.error(Rail::Io)),
                      TableWriter::pct(r.error(Rail::Disk))});
    };
    for (const ValidationResult &r : results)
        add_row(r);
    add_row(Validator::average(results, average_label));
    table.render(std::cout);
    return results;
}

} // namespace bench
} // namespace tdp

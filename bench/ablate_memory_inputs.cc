/**
 * @file
 * Ablation A1 (paper section 4.2.2 narrative): memory model input
 * choice. Compares, across all twelve workloads, the average error of
 *   (a) the L3-load-miss model (Equation 2),
 *   (b) a bus-transaction model with the DMA/other traffic excluded
 *       (what a CPU-only view would give), and
 *   (c) the full bus-transaction model including DMA (Equation 3).
 * All three are trained on the staggered mcf trace.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/model.hh"
#include "stats/metrics.hh"
#include "workloads/suite.hh"

#include "common/bench_util.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;

/** Bus-transaction rate with the DMA/other share removed. */
struct CpuOnlyBusModel : QuadraticEventModel
{
    CpuOnlyBusModel()
        : QuadraticEventModel("memory-bus-nodma", Rail::Memory,
                              &CpuEventRates::busTxPerMcycle)
    {
    }
};

double
errorOn(SubsystemModel &model, const SampleTrace &trace,
        bool exclude_dma)
{
    std::vector<double> modeled, measured;
    for (const AlignedSample &s : trace.samples()) {
        EventVector ev = EventVector::fromSample(s);
        if (exclude_dma) {
            for (CpuEventRates &c : ev.cpu)
                c.busTxPerMcycle -= c.dmaPerCycle * 1e6;
        }
        modeled.push_back(model.estimate(ev));
        measured.push_back(s.measured(Rail::Memory));
    }
    return averageError(modeled, measured);
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    std::printf("Ablation A1: memory model inputs "
                "(L3 misses vs bus tx w/o DMA vs bus tx + DMA)\n\n");

    // The training run and the twelve validation runs are all
    // independent; fan the whole batch across the pool.
    const std::vector<std::string> names = paperWorkloadOrder();
    std::vector<RunSpec> specs = {trainingRun("mcf")};
    for (const std::string &name : names)
        specs.push_back(characterizationRun(name));
    const std::vector<SampleTrace> traces = runTraces(specs);

    const SampleTrace &mcf_train = traces[0];

    auto l3 = makeMemoryL3Model();
    l3->train(mcf_train);

    // Model (b): trained on DMA-less inputs of the same trace.
    SampleTrace stripped;
    for (AlignedSample s : mcf_train.samples()) {
        for (CounterSnapshot &snap : s.perCpu) {
            snap[PerfEvent::BusTransactions] -=
                snap[PerfEvent::DmaOtherAccesses];
            snap[PerfEvent::DmaOtherAccesses] = 0.0;
        }
        stripped.add(std::move(s));
    }
    CpuOnlyBusModel no_dma;
    no_dma.train(stripped);

    auto full = makeMemoryBusModel();
    full->train(mcf_train);

    TableWriter table({"workload", "L3-miss (Eq2)", "bus w/o DMA",
                       "bus + DMA (Eq3)"});
    for (size_t w = 0; w < names.size(); ++w) {
        const std::string &name = names[w];
        const SampleTrace &trace = traces[w + 1];
        table.addRow({name,
                      TableWriter::pct(errorOn(*l3, trace, false)),
                      TableWriter::pct(errorOn(no_dma, trace, true)),
                      TableWriter::pct(errorOn(*full, trace, false))});
    }
    table.render(std::cout);
    std::printf("\nExpected shape (paper): Eq3 dominates on "
                "DMA-heavy workloads (mcf at scale, diskload);\n"
                "Eq2 fails there because prefetch, writeback and DMA "
                "traffic are invisible to L3 load misses.\n");
    return 0;
}

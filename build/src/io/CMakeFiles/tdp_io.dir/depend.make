# Empty dependencies file for tdp_io.
# This may be replaced when dependencies are built.

/**
 * @file
 * Error metrics, including the paper's Equation 6 average error.
 */

#ifndef TDP_STATS_METRICS_HH
#define TDP_STATS_METRICS_HH

#include <cstdint>
#include <vector>

namespace tdp {

/**
 * Paper Equation 6: mean over samples of
 * |modeled - measured| / measured, as a fraction (multiply by 100 for
 * percent). Samples with measured == 0 are skipped. Pairs where
 * either value is NaN/Inf (a glitched window or an unestimable
 * sample) are skipped and counted into *discarded when given.
 */
double averageError(const std::vector<double> &modeled,
                    const std::vector<double> &measured,
                    uint64_t *discarded = nullptr);

/**
 * Equation 6 applied after removing a DC offset from both series, the
 * way the paper reports disk error ("this error is calculated by first
 * subtracting the 21.6W of idle (DC) disk power"). Samples whose
 * offset-corrected measured value is <= 0 are skipped; non-finite
 * pairs are skipped and counted into *discarded when given.
 */
double averageErrorAboveDc(const std::vector<double> &modeled,
                           const std::vector<double> &measured,
                           double dc_offset,
                           uint64_t *discarded = nullptr);

/**
 * Root-mean-square error between two equal-length series; fatal() on
 * non-finite values (clean inputs are the caller's contract here).
 */
double rmsError(const std::vector<double> &modeled,
                const std::vector<double> &measured);

/**
 * Pearson correlation between two equal-length series; fatal() on
 * non-finite values.
 */
double pearson(const std::vector<double> &a, const std::vector<double> &b);

/**
 * Coefficient of determination of modeled against measured; fatal()
 * on non-finite values.
 */
double rSquared(const std::vector<double> &modeled,
                const std::vector<double> &measured);

} // namespace tdp

#endif // TDP_STATS_METRICS_HH

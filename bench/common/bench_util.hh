/**
 * @file
 * Shared helpers for the bench binaries: canonical experiment
 * protocols (how each paper workload is launched), trace collection
 * and training-set construction.
 */

#ifndef TDP_BENCH_BENCH_UTIL_HH
#define TDP_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_stats.hh"
#include "core/estimator.hh"
#include "core/trainer.hh"
#include "core/validator.hh"
#include "fault/fault_plan.hh"
#include "measure/trace.hh"
#include "obs/run_manifest.hh"
#include "platform/server.hh"
#include "resilience/chaos.hh"
#include "trace/trace_cache.hh"

namespace tdp {
namespace bench {

/** Default master seed for all experiments (reproducible runs). */
constexpr uint64_t defaultSeed = 0x5eed2007;

/**
 * Parse the shared bench flags and configure the experiment helpers.
 * Call first thing in every bench main. Unrecognised arguments are
 * left alone for the binary's own parsing.
 *
 *  - `--jobs N` / `-j N` / `--jobs=N`: experiment worker count
 *    (default: TDP_JOBS, else the hardware concurrency);
 *  - `--trace-cache` / `--trace-cache=DIR`: enable the trace cache
 *    (default directory `.tdp-trace-cache` when no DIR is given);
 *  - `--no-trace-cache`: force the cache off.
 *  - `--trace-out FILE` / `--trace-out=FILE`: record spans and write
 *    a Chrome trace-event JSON to FILE at exit (TDP_TRACE_OUT when
 *    the flag is absent);
 *  - `--manifest-out FILE` / `--manifest-out=FILE`: write the unified
 *    run manifest (runs, metrics, stats snapshot) to FILE at exit
 *    (TDP_MANIFEST_OUT when the flag is absent);
 *  - `--timeline-out FILE` / `--timeline-out=FILE`: enable stream
 *    telemetry and dump the tick-indexed timeline + flight recorder
 *    to FILE (TDP_TIMELINE_OUT when the flag is absent). Consumed by
 *    the stream benches via timelineOutPath(); also answers SIGUSR2
 *    mid-run dumps (suffix `.sigusr2`);
 *  - `--prom-out FILE` / `--prom-out=FILE`: write the stats registry
 *    in Prometheus text exposition format to FILE at exit
 *    (TDP_PROM_OUT when the flag is absent);
 *  - `--journal FILE` / `--journal=FILE`: append a write-ahead run
 *    journal of task transitions to FILE (TDP_RUN_JOURNAL when the
 *    flag is absent);
 *  - `--resume FILE` / `--resume=FILE`: resume from an interrupted
 *    run's journal - tasks whose traces already landed in the cache
 *    are skipped - and keep journalling to the same FILE. Requires
 *    the trace cache;
 *  - `--task-timeout S` / `--task-timeout=S`: per-attempt watchdog
 *    deadline in seconds (TDP_TASK_TIMEOUT when the flag is absent;
 *    0 disables);
 *  - `--task-retries N` / `--task-retries=N`: attempts per task
 *    including the first (TDP_TASK_RETRIES when the flag is absent;
 *    default 3 once the resilient path is active);
 *  - `--repetitions N` / `--repetitions=N`: statistical repetitions
 *    of the measured section for benches that report repetition
 *    series (TDP_BENCH_REPS when the flag is absent; default 5).
 *
 * Any of the journal/resume/timeout/retries knobs (or an enabled
 * chaos plan) routes runTraces() through the crash-safe orchestration
 * path; with all of them off the classic path runs and every bench
 * byte-stream is unchanged.
 *
 * Without a cache flag the TDP_TRACE_CACHE environment variable
 * decides (unset/empty/"0" off, "1" default directory, else the
 * directory itself). The cache defaults OFF: with it disabled every
 * bench byte-stream is identical to a build without the cache code.
 *
 * Any observability flag enables the global StatsRegistry; with all
 * of them absent the instrumentation stays off and every bench
 * byte-stream (stdout in particular) is identical to a build without
 * the telemetry code. Also applies TDP_LOG_LEVEL to the logger.
 */
void initBench(int argc, char **argv);

/** Override the worker count used by the parallel helpers. */
void setJobs(int jobs);

/** Worker count the parallel helpers will use (>= 1). */
int jobs();

/**
 * The arguments that remain after dropping the shared flags consumed
 * by initBench(); binaries with their own positional arguments parse
 * this instead of raw argv.
 */
std::vector<std::string> positionalArgs(int argc, char **argv);

/** How a workload is launched for an experiment. */
struct RunSpec
{
    /** Workload profile name. */
    std::string workload;

    /** Number of thread instances ("idle" uses zero). */
    int instances = 8;

    /** First launch time (s). */
    Seconds firstStart = 1.0;

    /** Stagger between launches (s). */
    Seconds stagger = 0.0;

    /** Total simulated duration (s). */
    Seconds duration = 180.0;

    /** Samples before this time are dropped (init transients). */
    Seconds skip = 30.0;

    /** Master seed. */
    uint64_t seed = defaultSeed;

    /** Simulator activity quantum (ticks). */
    Tick quantum = ticksPerMs;

    /**
     * Measurement faults injected into the run. Disabled by default;
     * a disabled plan leaves the run bit-identical to one with no
     * fault machinery.
     */
    FaultPlan faults;
};

/** The paper's characterisation run (Table 1/2): all threads at once. */
RunSpec characterizationRun(const std::string &workload);

/** The paper's training run: staggered starts for high variation. */
RunSpec trainingRun(const std::string &workload);

/** Execute a run and return the aligned trace (post-skip). */
SampleTrace runTrace(const RunSpec &spec);

/**
 * Execute several independent runs across the experiment pool and
 * return their traces in spec order. Each run builds its own Server
 * seeded from its spec, so results are bit-identical to running the
 * specs serially, whatever the worker count.
 *
 * When the trace cache is enabled (see initBench), each spec is
 * first looked up by its fingerprint; hits are loaded from disk
 * (bit-identical to a fresh simulation, by the binary format's
 * losslessness) and only the misses are simulated - and then stored
 * for the next run. Rejected (stale/corrupt) entries fall back to
 * simulation with a logged warning. A per-call hit/miss summary goes
 * to stderr, never stdout, so captured bench output is unaffected.
 */
std::vector<SampleTrace> runTraces(const std::vector<RunSpec> &specs);

/**
 * Content fingerprint of a run spec: every field that determines the
 * simulated trace (workload, instance count, launch times, duration,
 * skip, seed, quantum, the full fault plan) plus the binary format
 * version and a code-version salt. Bump traceCacheCodeSalt whenever
 * a change alters simulation behaviour for identical specs, so stale
 * caches miss instead of resurrecting pre-change traces.
 */
uint64_t runFingerprint(const RunSpec &spec);

/**
 * Code-version salt mixed into every fingerprint; see
 * runFingerprint.
 */
constexpr uint64_t traceCacheCodeSalt = 1;

/**
 * Enable the trace cache rooted at `root`, or disable it when root
 * is empty. Overrides flags/environment; mainly for tests and
 * benches that manage their own cache directory.
 */
void setTraceCacheRoot(const std::string &root);

/** The active trace cache, or nullptr when caching is disabled. */
TraceCache *traceCache();

/**
 * Append the write-ahead run journal to `path` ("" disables).
 * Overrides the --journal flag and TDP_RUN_JOURNAL; mainly for tests
 * and the chaos sweep. Takes effect at the next runTraces() call.
 */
void setRunJournalPath(const std::string &path);

/**
 * Resume from the journal at `path` ("" disables): the journal is
 * replayed (a corrupt journal is fatal), tasks whose traces already
 * landed in the cache are served from it, and new records are
 * appended to the same file. Requires the trace cache.
 */
void setResumeJournalPath(const std::string &path);

/** Per-attempt watchdog deadline (s); <= 0 disables. */
void setTaskTimeout(Seconds timeout);

/** Attempts per task including the first; 0 restores the default. */
void setTaskRetries(int max_attempts);

/**
 * Inject orchestration chaos into subsequent runTraces() calls:
 * installs the publish-fault hook and applies the plan's kill/stall/
 * poison decisions to every task attempt. A disabled plan removes
 * the injector. See resilience::ChaosPlan.
 */
void setChaosPlan(const resilience::ChaosPlan &plan);

/** The active chaos injector, or nullptr when chaos is off. */
resilience::ChaosInjector *chaosInjector();

/**
 * True when the next runTraces() call will take the resilient
 * orchestration path (any journal/resume/timeout/retries knob set,
 * via flag, environment or setter, or chaos enabled).
 */
bool resilienceActive();

/** True when any observability flag (or env) enabled telemetry. */
bool observabilityEnabled();

/** Stream-timeline dump path (--timeline-out); empty when unset. */
const std::string &timelineOutPath();

/** Prometheus text output path (--prom-out); empty when unset. */
const std::string &promOutPath();

/**
 * The process-wide run manifest the helpers accumulate into (runs,
 * bench metrics, training/health sections). Only written at exit when
 * a manifest path is configured; binaries may add their own sections.
 */
obs::RunManifest &runManifest();

/**
 * Flush observability outputs now: write the span trace and the
 * manifest to their configured paths. Installed atexit by initBench;
 * safe to call repeatedly (later calls overwrite with newer state)
 * and a no-op when telemetry is off.
 */
void flushObservability();

/** Execute a run and return both the server (for inspection) and trace. */
SampleTrace runTrace(const RunSpec &spec, std::unique_ptr<Server> &out);

/**
 * Build the paper's trained estimator: CPU model trained on staggered
 * gcc, memory on staggered mcf, disk and I/O on DiskLoad, chipset
 * constant on idle.
 */
SystemPowerEstimator trainPaperEstimator(uint64_t seed = defaultSeed);

/**
 * Like trainPaperEstimator, but the models carry graceful-degradation
 * fallback chains (makeDegradableModelSet) and the training runs are
 * executed under the given fault plan. The trainer's scrub report is
 * returned through *report when given.
 */
SystemPowerEstimator trainDegradableEstimator(
    uint64_t seed, const FaultPlan &faults,
    TrainingReport *report = nullptr);

/** Idle disk power used as the DC offset in disk error reporting. */
constexpr double diskIdleDcWatts = 21.6;

/**
 * Validate the trained estimator on the named workloads (paper
 * characterisation protocol) and print a Table 3/4 style error table,
 * appending the per-group average row. Returns the results.
 */
std::vector<ValidationResult> printErrorTable(
    const SystemPowerEstimator &estimator,
    const std::vector<std::string> &workloads,
    const std::string &average_label, uint64_t seed = defaultSeed);

/** One metric of a machine-readable bench result. */
struct BenchMetric
{
    /** Metric name, e.g. "cold_seconds". */
    std::string name;

    /** Metric value. */
    double value = 0.0;

    /** Unit label, e.g. "s" or "samples/s" (may be empty). */
    std::string unit;
};

/**
 * Write a machine-readable bench result file named
 * `BENCH_<bench>.json` so perf trajectories can be collected by
 * scripts/CI instead of scraped from stdout. Single-value
 * convenience over writeBenchSeriesJson (bench_stats.hh): each
 * metric becomes a one-repetition, ungated series, and the machine
 * context rides along. Benches that measure repeatedly should build
 * MetricSeries directly. Returns the path written.
 */
std::string writeBenchJson(const std::string &bench,
                           const std::vector<BenchMetric> &metrics);

/**
 * writeBenchSeriesJson plus the manifest hook: when observability is
 * on, each metric's mean is added to the run manifest. All the bench
 * binaries route their JSON through here.
 */
std::string writeBenchSeries(const std::string &bench,
                             const std::vector<MetricSeries> &metrics);

} // namespace bench
} // namespace tdp

#endif // TDP_BENCH_BENCH_UTIL_HH

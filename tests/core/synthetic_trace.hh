/**
 * @file
 * Synthetic trace builders shared by the core-library test suites:
 * hand-constructed aligned samples with known counter/power
 * relationships, so model behaviour is testable without running the
 * full simulator.
 */

#ifndef TDP_TESTS_CORE_SYNTHETIC_TRACE_HH
#define TDP_TESTS_CORE_SYNTHETIC_TRACE_HH

#include <functional>

#include "common/random.hh"
#include "measure/trace.hh"

namespace tdp {

/** Knobs for one synthetic sample. */
struct SyntheticPoint
{
    double activeFraction = 1.0;
    double uopsPerCycle = 1.0;
    double l3MissesPerCycle = 0.005;
    double busTxPerCycle = 0.01;
    double dmaPerCycle = 0.0;
    double uncacheablePerCycle = 1e-6;
    double tlbMissesPerCycle = 1e-5;
    double prefetchPerCycle = 0.002;
    double interruptsPerSecond = 1000.0;
    double diskIrqPerSecond = 0.0;
    double deviceIrqPerSecond = 50.0;
};

/** Build one aligned sample for `cpus` identical CPUs. */
inline AlignedSample
makeSyntheticSample(const SyntheticPoint &pt,
                    const std::array<double, numRails> &watts,
                    int cpus = 4, double time = 0.0)
{
    AlignedSample s;
    s.time = time;
    s.interval = 1.0;
    const double cycles = 2.8e9;
    s.perCpu.resize(static_cast<size_t>(cpus));
    for (CounterSnapshot &snap : s.perCpu) {
        snap[PerfEvent::Cycles] = cycles;
        snap[PerfEvent::HaltedCycles] =
            cycles * (1.0 - pt.activeFraction);
        snap[PerfEvent::FetchedUops] = cycles * pt.uopsPerCycle;
        snap[PerfEvent::L3LoadMisses] = cycles * pt.l3MissesPerCycle;
        snap[PerfEvent::TlbMisses] = cycles * pt.tlbMissesPerCycle;
        snap[PerfEvent::DmaOtherAccesses] = cycles * pt.dmaPerCycle;
        snap[PerfEvent::BusTransactions] = cycles * pt.busTxPerCycle;
        snap[PerfEvent::PrefetchTransactions] =
            cycles * pt.prefetchPerCycle;
        snap[PerfEvent::UncacheableAccesses] =
            cycles * pt.uncacheablePerCycle;
        snap[PerfEvent::InterruptsServiced] =
            pt.interruptsPerSecond / cpus;
    }
    s.osInterruptsTotal = pt.interruptsPerSecond;
    s.osDiskInterrupts = pt.diskIrqPerSecond;
    s.osDeviceInterrupts = pt.deviceIrqPerSecond;
    s.measuredWatts = watts;
    return s;
}

/**
 * Build a trace by sweeping a load factor u in [0, 1] through a
 * user-supplied generator.
 */
inline SampleTrace
sweepTrace(int samples,
           const std::function<AlignedSample(double, int)> &generator)
{
    SampleTrace trace;
    for (int i = 0; i < samples; ++i) {
        const double u =
            samples > 1 ? static_cast<double>(i) / (samples - 1) : 0.0;
        trace.add(generator(u, i));
    }
    return trace;
}

} // namespace tdp

#endif // TDP_TESTS_CORE_SYNTHETIC_TRACE_HH

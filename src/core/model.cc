/**
 * @file
 * Implementation of the subsystem power models.
 */

#include "core/model.hh"

#include <cmath>

#include "common/logging.hh"
#include "stats/regression.hh"

namespace tdp {

namespace {

/**
 * Streams a trace's regressor rows to the fitters: each row is
 * derived on the fly from the sample's event vector, so no per-fit
 * column copies of the trace are ever materialised. The regressor
 * layout is [x0, x0^2, x1, x1^2, ...] when with_squares is set,
 * matching the models' coefficient order.
 */
class TraceDesignSource : public DesignSource
{
  public:
    TraceDesignSource(const SampleTrace &trace, Rail rail,
                      const std::vector<double CpuEventRates::*> &fields,
                      bool with_squares)
        : trace_(trace), rail_(rail), fields_(fields),
          withSquares_(with_squares)
    {
    }

    size_t sampleCount() const override { return trace_.size(); }

    size_t
    regressorCount() const override
    {
        return fields_.size() * (withSquares_ ? 2 : 1);
    }

    void
    row(size_t i, double *out) const override
    {
        const EventVector ev = EventVector::fromSample(trace_[i]);
        size_t o = 0;
        for (double CpuEventRates::*field : fields_) {
            out[o++] = ev.total(field);
            if (withSquares_)
                out[o++] = ev.totalSquared(field);
        }
    }

    double
    response(size_t i) const override
    {
        return trace_[i].measured(rail_);
    }

  private:
    const SampleTrace &trace_;
    Rail rail_;
    const std::vector<double CpuEventRates::*> &fields_;
    bool withSquares_;
};

/**
 * Shared training helper: fit the trace's streamed design by OLS.
 *
 * Follows the paper's model-format discipline (section 3.3.1): the
 * quadratic form is used when the data supports it; when the squared
 * columns are (numerically) collinear with the linear ones - e.g. a
 * bursty two-valued interrupt rate - the fit falls back to the linear
 * form and reports zero quadratic coefficients. The returned
 * coefficient vector is always laid out [x0, x0^2, x1, x1^2, ...]
 * when with_squares is set.
 */
FitResult
fitColumns(const SampleTrace &trace, Rail rail,
           const std::vector<double CpuEventRates::*> &fields,
           bool with_squares)
{
    if (trace.empty())
        fatal("model training requires a non-empty trace");

    if (with_squares) {
        try {
            return fitOlsAuto(
                TraceDesignSource(trace, rail, fields, true));
        } catch (const FatalError &) {
            warn("quadratic fit for %s rank-deficient; "
                 "falling back to linear form",
                 railName(rail));
        }
    }

    FitResult fit =
        fitOlsAuto(TraceDesignSource(trace, rail, fields, false));
    if (with_squares) {
        // Re-expand to the quadratic layout with zero square terms.
        std::vector<double> expanded(fields.size() * 2, 0.0);
        for (size_t f = 0; f < fields.size(); ++f)
            expanded[f * 2] = fit.coefficients[f];
        fit.coefficients = std::move(expanded);
    }
    return fit;
}

} // namespace

// ---------------------------------------------------------------- CPU

CpuPowerModel::CpuPowerModel() = default;

Watts
CpuPowerModel::estimate(const EventVector &events) const
{
    if (!trained_)
        panic("CpuPowerModel::estimate before training");
    return intercept_ +
           activeCoef_ * events.total(&CpuEventRates::percentActive) +
           uopCoef_ * events.total(&CpuEventRates::uopsPerCycle);
}

Watts
CpuPowerModel::estimateCpu(const EventVector &events, int cpu) const
{
    if (!trained_)
        panic("CpuPowerModel::estimateCpu before training");
    if (cpu < 0 || cpu >= static_cast<int>(events.cpu.size()))
        panic("CpuPowerModel: cpu %d out of %zu", cpu, events.cpu.size());
    const CpuEventRates &rates = events.cpu[static_cast<size_t>(cpu)];
    return intercept_ / static_cast<double>(events.cpu.size()) +
           activeCoef_ * rates.percentActive +
           uopCoef_ * rates.uopsPerCycle;
}

void
CpuPowerModel::train(const SampleTrace &trace)
{
    const FitResult fit = fitColumns(
        trace, Rail::Cpu,
        {&CpuEventRates::percentActive, &CpuEventRates::uopsPerCycle},
        false);
    intercept_ = fit.intercept;
    activeCoef_ = fit.coefficients[0];
    uopCoef_ = fit.coefficients[1];
    trained_ = true;
}

std::string
CpuPowerModel::describe() const
{
    return formatString(
        "P_cpu = %.3f + sum_i [%.3f * active_i + %.3f * uops_i]",
        intercept_, activeCoef_, uopCoef_);
}

std::vector<double>
CpuPowerModel::coefficients() const
{
    return {intercept_, activeCoef_, uopCoef_};
}

void
CpuPowerModel::setCoefficients(const std::vector<double> &coeffs)
{
    if (coeffs.size() != 3)
        fatal("CpuPowerModel: expected 3 coefficients, got %zu",
              coeffs.size());
    intercept_ = coeffs[0];
    activeCoef_ = coeffs[1];
    uopCoef_ = coeffs[2];
    trained_ = true;
}

// ---------------------------------------------- quadratic single-event

QuadraticEventModel::QuadraticEventModel(std::string name, Rail rail,
                                         double CpuEventRates::*field)
    : name_(std::move(name)), rail_(rail), field_(field)
{
}

Watts
QuadraticEventModel::estimate(const EventVector &events) const
{
    if (!trained_)
        panic("%s::estimate before training", name_.c_str());
    return intercept_ + linear_ * events.total(field_) +
           quadratic_ * events.totalSquared(field_);
}

void
QuadraticEventModel::train(const SampleTrace &trace)
{
    const FitResult fit = fitColumns(trace, rail_, {field_}, true);
    intercept_ = fit.intercept;
    linear_ = fit.coefficients[0];
    quadratic_ = fit.coefficients[1];
    trained_ = true;
}

std::string
QuadraticEventModel::describe() const
{
    return formatString(
        "P_%s = %.4f + sum_i [%.6g * x_i + %.6g * x_i^2]  (%s)",
        railName(rail_), intercept_, linear_, quadratic_,
        name_.c_str());
}

std::vector<double>
QuadraticEventModel::coefficients() const
{
    return {intercept_, linear_, quadratic_};
}

void
QuadraticEventModel::setCoefficients(const std::vector<double> &coeffs)
{
    if (coeffs.size() != 3)
        fatal("%s: expected 3 coefficients, got %zu", name_.c_str(),
              coeffs.size());
    intercept_ = coeffs[0];
    linear_ = coeffs[1];
    quadratic_ = coeffs[2];
    trained_ = true;
}

std::unique_ptr<QuadraticEventModel>
makeMemoryL3Model()
{
    return std::make_unique<QuadraticEventModel>(
        "memory-l3miss", Rail::Memory,
        &CpuEventRates::l3MissesPerCycle);
}

std::unique_ptr<QuadraticEventModel>
makeMemoryBusModel()
{
    return std::make_unique<QuadraticEventModel>(
        "memory-bus", Rail::Memory, &CpuEventRates::busTxPerMcycle);
}

std::unique_ptr<QuadraticEventModel>
makeIoInterruptModel()
{
    return std::make_unique<QuadraticEventModel>(
        "io-interrupt", Rail::Io,
        &CpuEventRates::deviceInterruptsPerCycle);
}

// --------------------------------------------------------------- disk

DiskPowerModel::DiskPowerModel() = default;

Watts
DiskPowerModel::estimate(const EventVector &events) const
{
    if (!trained_)
        panic("DiskPowerModel::estimate before training");
    const auto irq = &CpuEventRates::diskInterruptsPerCycle;
    const auto dma = &CpuEventRates::dmaPerCycle;
    return intercept_ + irqLinear_ * events.total(irq) +
           irqQuadratic_ * events.totalSquared(irq) +
           dmaLinear_ * events.total(dma) +
           dmaQuadratic_ * events.totalSquared(dma);
}

void
DiskPowerModel::train(const SampleTrace &trace)
{
    const FitResult fit =
        fitColumns(trace, Rail::Disk,
                   {&CpuEventRates::diskInterruptsPerCycle,
                    &CpuEventRates::dmaPerCycle},
                   true);
    intercept_ = fit.intercept;
    irqLinear_ = fit.coefficients[0];
    irqQuadratic_ = fit.coefficients[1];
    dmaLinear_ = fit.coefficients[2];
    dmaQuadratic_ = fit.coefficients[3];
    trained_ = true;
}

std::string
DiskPowerModel::describe() const
{
    return formatString(
        "P_disk = %.4f + sum_i [%.6g * irq_i + %.6g * irq_i^2 + "
        "%.6g * dma_i + %.6g * dma_i^2]",
        intercept_, irqLinear_, irqQuadratic_, dmaLinear_,
        dmaQuadratic_);
}

std::vector<double>
DiskPowerModel::coefficients() const
{
    return {intercept_, irqLinear_, irqQuadratic_, dmaLinear_,
            dmaQuadratic_};
}

void
DiskPowerModel::setCoefficients(const std::vector<double> &coeffs)
{
    if (coeffs.size() != 5)
        fatal("DiskPowerModel: expected 5 coefficients, got %zu",
              coeffs.size());
    intercept_ = coeffs[0];
    irqLinear_ = coeffs[1];
    irqQuadratic_ = coeffs[2];
    dmaLinear_ = coeffs[3];
    dmaQuadratic_ = coeffs[4];
    trained_ = true;
}

// ----------------------------------------------------------- constant

ConstantPowerModel::ConstantPowerModel(Rail rail)
    : rail_(rail), name_(std::string(railName(rail)) + "-const")
{
}

Watts
ConstantPowerModel::estimate(const EventVector & /* events */) const
{
    if (!trained_)
        panic("%s::estimate before training", name_.c_str());
    return constant_;
}

void
ConstantPowerModel::train(const SampleTrace &trace)
{
    if (trace.empty())
        fatal("%s: empty training trace", name_.c_str());
    double acc = 0.0;
    uint64_t used = 0;
    for (const AlignedSample &sample : trace.samples()) {
        const double w = sample.measured(rail_);
        if (!std::isfinite(w))
            continue;
        acc += w;
        ++used;
    }
    if (used == 0)
        fatal("%s: no finite measured samples to train on",
              name_.c_str());
    constant_ = acc / static_cast<double>(used);
    trained_ = true;
}

std::string
ConstantPowerModel::describe() const
{
    return formatString("P_%s = %.3f (constant)", railName(rail_),
                        constant_);
}

std::vector<double>
ConstantPowerModel::coefficients() const
{
    return {constant_};
}

void
ConstantPowerModel::setCoefficients(const std::vector<double> &coeffs)
{
    if (coeffs.size() != 1)
        fatal("%s: expected 1 coefficient, got %zu", name_.c_str(),
              coeffs.size());
    constant_ = coeffs[0];
    trained_ = true;
}

// ------------------------------------------------------------ chipset

ChipsetPowerModel::ChipsetPowerModel() = default;

Watts
ChipsetPowerModel::estimate(const EventVector & /* events */) const
{
    if (!trained_)
        panic("ChipsetPowerModel::estimate before training");
    return constant_;
}

void
ChipsetPowerModel::train(const SampleTrace &trace)
{
    if (trace.empty())
        fatal("ChipsetPowerModel: empty training trace");
    double acc = 0.0;
    uint64_t used = 0;
    for (const AlignedSample &sample : trace.samples()) {
        const double w = sample.measured(Rail::Chipset);
        if (!std::isfinite(w))
            continue;
        acc += w;
        ++used;
    }
    if (used == 0)
        fatal("ChipsetPowerModel: no finite measured samples");
    constant_ = acc / static_cast<double>(used);
    trained_ = true;
}

std::string
ChipsetPowerModel::describe() const
{
    return formatString("P_chipset = %.3f (constant)", constant_);
}

std::vector<double>
ChipsetPowerModel::coefficients() const
{
    return {constant_};
}

void
ChipsetPowerModel::setCoefficients(const std::vector<double> &coeffs)
{
    if (coeffs.size() != 1)
        fatal("ChipsetPowerModel: expected 1 coefficient, got %zu",
              coeffs.size());
    constant_ = coeffs[0];
    trained_ = true;
}

} // namespace tdp

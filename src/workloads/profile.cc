/**
 * @file
 * Profile validation and registry lookups.
 */

#include "workloads/profile.hh"

#include <unordered_map>

#include "common/logging.hh"
#include "workloads/suite.hh"

namespace tdp {

void
validateProfile(const WorkloadProfile &profile)
{
    if (profile.name.empty())
        fatal("workload profile with empty name");
    if (profile.phases.empty())
        fatal("workload '%s' has no phases", profile.name.c_str());
    if (profile.footprintMB < 0.0)
        fatal("workload '%s': negative footprint", profile.name.c_str());
    for (const WorkloadPhase &phase : profile.phases) {
        if (phase.duration <= 0.0) {
            fatal("workload '%s' phase '%s': non-positive duration",
                  profile.name.c_str(), phase.label.c_str());
        }
        const ThreadDemand &d = phase.demand;
        if (d.uopsPerCycle < 0.0 || d.l3MissPerKuop < 0.0 ||
            d.tlbMissPerMuop < 0.0 || d.uncacheablePerMuop < 0.0) {
            fatal("workload '%s' phase '%s': negative demand rate",
                  profile.name.c_str(), phase.label.c_str());
        }
        if (d.dutyCycle < 0.0 || d.dutyCycle > 1.0) {
            fatal("workload '%s' phase '%s': dutyCycle out of [0,1]",
                  profile.name.c_str(), phase.label.c_str());
        }
        if (d.pageHitRate < 0.0 || d.pageHitRate > 1.0) {
            fatal("workload '%s' phase '%s': pageHitRate out of [0,1]",
                  profile.name.c_str(), phase.label.c_str());
        }
        if (d.memBoundness < 0.0 || d.memBoundness > 1.0) {
            fatal("workload '%s' phase '%s': memBoundness out of [0,1]",
                  profile.name.c_str(), phase.label.c_str());
        }
        if (phase.readCachedFraction < 0.0 ||
            phase.readCachedFraction > 1.0) {
            fatal("workload '%s' phase '%s': readCachedFraction out of "
                  "[0,1]",
                  profile.name.c_str(), phase.label.c_str());
        }
        if (phase.fileWriteBytesPerSec < 0.0 ||
            phase.fileReadBytesPerSec < 0.0 ||
            phase.fileRegionBytes < 0.0 ||
            phase.syncEverySeconds < 0.0) {
            fatal("workload '%s' phase '%s': negative I/O parameter",
                  profile.name.c_str(), phase.label.c_str());
        }
    }
}

const WorkloadProfile &
findWorkloadProfile(const std::string &name)
{
    // Index built once over the immutable suite; the magic static
    // makes concurrent first lookups from parallel experiment workers
    // safe.
    static const std::unordered_map<std::string, const WorkloadProfile *>
        index = [] {
            std::unordered_map<std::string, const WorkloadProfile *> m;
            for (const WorkloadProfile &p : workloadSuite())
                m.emplace(p.name, &p);
            return m;
        }();
    const auto it = index.find(name);
    if (it == index.end())
        fatal("unknown workload profile '%s'", name.c_str());
    return *it->second;
}

std::vector<std::string>
workloadProfileNames()
{
    std::vector<std::string> names;
    for (const WorkloadProfile &p : workloadSuite())
        names.push_back(p.name);
    return names;
}

} // namespace tdp

/**
 * @file
 * Tests for the lane-batched fused OLS path: bitwise identity of
 * fitOlsNormalAt across every dispatch level the CPU supports (the
 * 4-lane contract), agreement with the QR reference within numerical
 * tolerance, and the staging/finiteness kernels it is built from.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "simd/dispatch.hh"
#include "stats/lane_fit.hh"
#include "stats/regression.hh"

namespace tdp {
namespace {

std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (detectedSimdLevel() >= SimdLevel::Sse2)
        levels.push_back(SimdLevel::Sse2);
    if (detectedSimdLevel() >= SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
    return levels;
}

/** Dense in-memory design with a deterministic pseudo-random fill. */
class DenseDesign : public DesignSource
{
  public:
    DenseDesign(size_t n, size_t k, uint32_t seed) : n_(n), k_(k)
    {
        values_.resize(n * k);
        y_.resize(n);
        uint32_t state = seed * 2654435761u + 1013904223u;
        auto next = [&state] {
            state = state * 1664525u + 1013904223u;
            return static_cast<double>(state >> 8) /
                   static_cast<double>(1u << 24);
        };
        for (size_t r = 0; r < n; ++r) {
            double response = 3.25;
            for (size_t c = 0; c < k; ++c) {
                // Column-specific offsets/scales give each regressor
                // its own distribution, like real counter columns.
                const double v = (next() - 0.5) *
                                     (1.0 + static_cast<double>(c)) +
                                 0.1 * static_cast<double>(c);
                values_[r * k + c] = v;
                response += v * (0.5 + 0.25 * static_cast<double>(c));
            }
            // Deterministic "noise" so fits are imperfect but exact.
            response += 0.01 * (next() - 0.5);
            y_[r] = response;
        }
    }

    size_t sampleCount() const override { return n_; }
    size_t regressorCount() const override { return k_; }

    void
    row(size_t i, double *out) const override
    {
        for (size_t c = 0; c < k_; ++c)
            out[c] = values_[i * k_ + c];
    }

    double response(size_t i) const override { return y_[i]; }

    double *cell(size_t r, size_t c) { return &values_[r * k_ + c]; }

  private:
    size_t n_;
    size_t k_;
    std::vector<double> values_;
    std::vector<double> y_;
};

bool
sameBits(double a, double b)
{
    return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void
expectFitsBitIdentical(const FitResult &ref, const FitResult &other,
                       SimdLevel level, const char *what)
{
    EXPECT_TRUE(sameBits(ref.intercept, other.intercept))
        << what << ": intercept differs under "
        << simdLevelName(level);
    EXPECT_TRUE(sameBits(ref.r2, other.r2))
        << what << ": r2 differs under " << simdLevelName(level);
    EXPECT_TRUE(sameBits(ref.rmse, other.rmse))
        << what << ": rmse differs under " << simdLevelName(level);
    EXPECT_EQ(ref.sampleCount, other.sampleCount);
    ASSERT_EQ(ref.coefficients.size(), other.coefficients.size());
    for (size_t c = 0; c < ref.coefficients.size(); ++c) {
        EXPECT_TRUE(
            sameBits(ref.coefficients[c], other.coefficients[c]))
            << what << ": coefficient " << c << " differs under "
            << simdLevelName(level);
    }
}

TEST(LaneFit, LevelsBitIdenticalAcrossShapeSweep)
{
    // Every n % 4 residue, k spanning below/at/above the lane width
    // and the block boundaries of the chunked driver.
    const size_t sample_counts[] = {16, 1021, 1022, 1023, 1024, 1025,
                                    2048, 4100};
    const size_t regressor_counts[] = {1, 2, 3, 4, 5, 8, 11};
    for (size_t n : sample_counts) {
        for (size_t k : regressor_counts) {
            DenseDesign design(n, k, static_cast<uint32_t>(n * 31 + k));
            const FitResult ref =
                fitOlsNormalAt(SimdLevel::Scalar, design);
            for (SimdLevel level : supportedLevels()) {
                const FitResult fit = fitOlsNormalAt(level, design);
                expectFitsBitIdentical(ref, fit, level, "shape sweep");
            }
        }
    }
}

TEST(LaneFit, TwelveWorkloadDesignsBitIdentical)
{
    // Mirror of the bm_fit acceptance sweep in unit-test form: twelve
    // workload-shaped designs (one per paper workload slot, each with
    // its own distribution), scalar vs every wide level.
    for (uint32_t workload = 0; workload < 12; ++workload) {
        DenseDesign design(1500 + workload, 8, workload + 1);
        const FitResult ref =
            fitOlsNormalAt(SimdLevel::Scalar, design);
        for (SimdLevel level : supportedLevels()) {
            const FitResult fit = fitOlsNormalAt(level, design);
            expectFitsBitIdentical(ref, fit, level,
                                   "workload design");
        }
    }
}

TEST(LaneFit, MatchesQrReferenceNumerically)
{
    DenseDesign design(4096, 6, 42);
    const FitResult qr = fitOls(design);
    const FitResult fused = fitOlsNormal(design);
    ASSERT_EQ(qr.coefficients.size(), fused.coefficients.size());
    EXPECT_NEAR(fused.intercept, qr.intercept,
                1e-8 * (1.0 + std::fabs(qr.intercept)));
    for (size_t c = 0; c < qr.coefficients.size(); ++c) {
        EXPECT_NEAR(fused.coefficients[c], qr.coefficients[c],
                    1e-8 * (1.0 + std::fabs(qr.coefficients[c])));
    }
    EXPECT_NEAR(fused.r2, qr.r2, 1e-9);
    EXPECT_NEAR(fused.rmse, qr.rmse, 1e-9 * (1.0 + qr.rmse));
}

TEST(LaneFit, AlgebraicGoodnessMatchesExplicitResiduals)
{
    // The driver recovers ss_res from the Gram/moment accumulators;
    // cross-check against brute-force residuals through predict().
    DenseDesign design(2000, 5, 7);
    const FitResult fit = fitOlsNormal(design);
    std::vector<double> row(5);
    double ss_res = 0.0, ss_tot = 0.0, ysum = 0.0;
    for (size_t i = 0; i < design.sampleCount(); ++i)
        ysum += design.response(i);
    const double ymean =
        ysum / static_cast<double>(design.sampleCount());
    for (size_t i = 0; i < design.sampleCount(); ++i) {
        design.row(i, row.data());
        const double resid = design.response(i) - fit.predict(row);
        ss_res += resid * resid;
        ss_tot += (design.response(i) - ymean) *
                  (design.response(i) - ymean);
    }
    const double rmse = std::sqrt(
        ss_res / static_cast<double>(design.sampleCount()));
    EXPECT_NEAR(fit.rmse, rmse, 1e-9 * (1.0 + rmse));
    EXPECT_NEAR(fit.r2, 1.0 - ss_res / ss_tot, 1e-9);
}

TEST(LaneFit, NonFiniteRegressorIsFatalAtEveryLevel)
{
    for (SimdLevel level : supportedLevels()) {
        DenseDesign design(64, 3, 5);
        *design.cell(17, 1) = std::nan("");
        EXPECT_THROW(fitOlsNormalAt(level, design), FatalError)
            << "NaN regressor accepted under "
            << simdLevelName(level);
        *design.cell(17, 1) = 1.0 / 0.0;
        EXPECT_THROW(fitOlsNormalAt(level, design), FatalError)
            << "Inf regressor accepted under "
            << simdLevelName(level);
    }
}

TEST(LaneFit, FirstNonFiniteAgreesAcrossLevels)
{
    const double nan_payload =
        std::bit_cast<double>(UINT64_C(0x7ff8dead00000000));
    const size_t lengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65};
    for (size_t n : lengths) {
        // Clean input: SIZE_MAX everywhere.
        std::vector<double> values(n, 1.5);
        for (SimdLevel level : supportedLevels()) {
            EXPECT_EQ(lanefit::firstNonFinite(level, values.data(), n),
                      SIZE_MAX);
        }
        // One offender at each position; every level must report the
        // same (first) index.
        for (size_t bad = 0; bad < n; ++bad) {
            std::vector<double> poisoned(n, 2.0);
            poisoned[bad] = (bad % 2 == 0) ? nan_payload : -1.0 / 0.0;
            if (bad + 3 < n)
                poisoned[bad + 3] = nan_payload;
            for (SimdLevel level : supportedLevels()) {
                EXPECT_EQ(lanefit::firstNonFinite(
                              level, poisoned.data(), n),
                          bad)
                    << "n=" << n << " bad=" << bad << " under "
                    << simdLevelName(level);
            }
        }
    }
}

TEST(LaneFit, StageBlockIdenticalAcrossLevels)
{
    const double nan_payload =
        std::bit_cast<double>(UINT64_C(0x7ff8c0ffee000000));
    for (size_t k : {1u, 2u, 3u, 4u, 5u, 8u, 9u}) {
        const size_t groups = 6;
        const size_t nrows = groups * kSimdLanes;
        std::vector<double> rows(nrows * k);
        std::vector<double> y(nrows);
        for (size_t i = 0; i < rows.size(); ++i)
            rows[i] = (i % 7 == 0) ? nan_payload
                                   : static_cast<double>(i) * 0.375 -
                                         3.0;
        for (size_t i = 0; i < nrows; ++i)
            y[i] = (i % 5 == 0) ? -0.0 : static_cast<double>(i);

        lanefit::LaneBlock ref;
        lanefit::stageBlock(SimdLevel::Scalar, rows.data(), y.data(),
                            groups, k, ref);
        for (SimdLevel level : supportedLevels()) {
            lanefit::LaneBlock block;
            lanefit::stageBlock(level, rows.data(), y.data(), groups,
                                k, block);
            ASSERT_EQ(block.groups, ref.groups);
            ASSERT_EQ(block.k, ref.k);
            for (size_t i = 0; i < groups * k * kSimdLanes; ++i) {
                EXPECT_TRUE(sameBits(ref.z[i], block.z[i]))
                    << "z[" << i << "] k=" << k << " under "
                    << simdLevelName(level);
            }
            for (size_t i = 0; i < nrows; ++i) {
                EXPECT_TRUE(sameBits(ref.y[i], block.y[i]))
                    << "y[" << i << "] under "
                    << simdLevelName(level);
            }
        }
    }
}

} // namespace
} // namespace tdp

/**
 * @file
 * Implementation of the System scheduler.
 */

#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tdp {

System::System(uint64_t master_seed, Tick quantum)
    : masterSeed_(master_seed), quantum_(quantum)
{
    if (quantum_ == 0)
        fatal("System quantum must be positive");
}

Rng
System::makeRng(const std::string &stream_name) const
{
    return Rng(masterSeed_, stream_name);
}

void
System::registerObject(SimObject *obj)
{
    if (findObject(obj->name())) {
        fatal("System: duplicate object name '%s'", obj->name().c_str());
    }
    objects_.push_back(obj);
}

void
System::addTicked(Ticked *ticked, TickPhase phase)
{
    if (!ticked)
        panic("System::addTicked: null participant");
    tickeds_.push_back(
        TickedEntry{ticked, static_cast<int>(phase), tickeds_.size()});
    std::stable_sort(tickeds_.begin(), tickeds_.end(),
                     [](const TickedEntry &a, const TickedEntry &b) {
                         if (a.phase != b.phase)
                             return a.phase < b.phase;
                         return a.order < b.order;
                     });
}

SimObject *
System::findObject(const std::string &name) const
{
    for (SimObject *obj : objects_)
        if (obj->name() == name)
            return obj;
    return nullptr;
}

void
System::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    // startup() may construct further objects; iterate by index.
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->startup();
}

void
System::executeQuantum(Tick start)
{
    for (const TickedEntry &entry : tickeds_)
        entry.ticked->tickUpdate(start, quantum_);
    ++quantaExecuted_;
}

void
System::runUntil(Tick until_tick)
{
    ensureStarted();
    while (nextQuantumStart_ + quantum_ <= until_tick) {
        const Tick start = nextQuantumStart_;
        // Fire events due at or before the quantum start (e.g. thread
        // launches, sampler reads) so they observe the pre-quantum
        // state, then advance the quantum.
        events_.runUntil(start);
        executeQuantum(start);
        nextQuantumStart_ = start + quantum_;
    }
    events_.runUntil(until_tick);
}

void
System::runFor(Seconds seconds)
{
    if (seconds < 0.0)
        fatal("System::runFor: negative duration %g", seconds);
    runUntil(nextQuantumStart_ + secondsToTicks(seconds));
}

} // namespace tdp

/**
 * @file
 * Implementation of the discrete-event queue: the out-of-line pieces
 * of the hot path (heap sifts, pool growth) and the cold error paths.
 */

#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tdp {

void
EventQueue::pastScheduleError(std::string_view name, Tick when) const
{
    panic("EventQueue::schedule: event '%s' scheduled at %llu, "
          "before current tick %llu",
          std::string(name).c_str(),
          static_cast<unsigned long long>(when),
          static_cast<unsigned long long>(now_));
}

void
EventQueue::emptyQueueError(const char *what) const
{
    panic("EventQueue::%s on empty queue", what);
}

// 4-ary implicit heap: children of i are 4i+1..4i+4. Half the depth
// of a binary heap, and the four siblings compared per sift-down sit
// in adjacent cache lines. Entries are trivially copyable, so every
// move below is a plain 32-byte copy.

void
EventQueue::siftUp(size_t hole)
{
    const Entry entry = heap_[hole];
    while (hole > 0) {
        const size_t parent = (hole - 1) / 4;
        if (!after(heap_[parent], entry))
            break;
        heap_[hole] = heap_[parent];
        hole = parent;
    }
    heap_[hole] = entry;
}

void
EventQueue::siftDown(size_t hole)
{
    const size_t n = heap_.size();
    const Entry entry = heap_[hole];
    for (;;) {
        const size_t first = hole * 4 + 1;
        if (first >= n)
            break;
        const size_t limit = std::min(first + 4, n);
        size_t best = first;
        for (size_t c = first + 1; c < limit; ++c) {
            if (after(heap_[best], heap_[c]))
                best = c;
        }
        if (!after(entry, heap_[best]))
            break;
        heap_[hole] = heap_[best];
        hole = best;
    }
    heap_[hole] = entry;
}

int32_t
EventQueue::growPool()
{
    pool_.push_back(std::make_unique<LambdaEvent>());
    ++slotsAllocated_;
    return static_cast<int32_t>(pool_.size() - 1);
}

void
EventQueue::schedule(std::unique_ptr<Event> ev, Tick when, int priority)
{
    if (!ev)
        panic("EventQueue::schedule: null event");
    if (when < now_)
        pastScheduleError(ev->name(), when);
    int32_t idx;
    if (freeOwned_.empty()) {
        idx = static_cast<int32_t>(owned_.size());
        owned_.push_back(std::move(ev));
    } else {
        idx = freeOwned_.back();
        freeOwned_.pop_back();
        owned_[static_cast<size_t>(idx)] = std::move(ev);
    }
    push(Entry{when, priority, -1 - idx, nextSequence_++,
               owned_[static_cast<size_t>(idx)].get()});
}

Tick
EventQueue::nextTick() const
{
    if (heap_.empty())
        emptyQueueError("nextTick");
    return heap_.front().when;
}

void
EventQueue::runUntil(Tick until_tick)
{
    while (!heap_.empty() && heap_.front().when <= until_tick)
        step();
    if (now_ < until_tick)
        now_ = until_tick;
}

} // namespace tdp

/**
 * @file
 * Tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace tdp {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFn("b", 20, [&] { order.push_back(2); });
    q.scheduleFn("a", 10, [&] { order.push_back(1); });
    q.scheduleFn("c", 30, [&] { order.push_back(3); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFn("late", 10, [&] { order.push_back(3); }, 200);
    q.scheduleFn("first", 10, [&] { order.push_back(1); }, 50);
    q.scheduleFn("fifo-a", 10, [&] { order.push_back(2); }, 50);
    q.runUntil(10);
    // priority 50 events fire first, among them insertion order; but
    // "first" was inserted before "fifo-a" at equal priority.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFn("in", 10, [&] { ++fired; });
    q.scheduleFn("out", 11, [&] { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextTick(), 11u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFn("outer", 5, [&] {
        q.scheduleFn("inner", 7, [&] { ++fired; });
    });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.processedCount(), 2u);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue q;
    q.scheduleFn("now", 10, [] {});
    q.runUntil(10);
    EXPECT_THROW(q.scheduleFn("past", 5, [] {}), PanicError);
}

TEST(EventQueue, SameTickSchedulingAllowed)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFn("outer", 5, [&] {
        // Scheduling at the current tick must work (same-instant
        // follow-up work).
        q.scheduleFn("inner", 5, [&] { ++fired; });
    });
    q.runUntil(5);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyQueueQueries)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_THROW(q.nextTick(), PanicError);
    EXPECT_THROW(q.step(), PanicError);
}

TEST(EventQueue, NullEventPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(nullptr, 1), PanicError);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, LambdaSlotReusedAcrossSequentialEvents)
{
    // One event in flight at a time: the pool must stabilise at a
    // single slot however many events fire.
    EventQueue q;
    int fired = 0;
    for (Tick t = 1; t <= 1000; ++t) {
        q.scheduleFn("seq", t, [&] { ++fired; });
        q.runUntil(t);
    }
    EXPECT_EQ(fired, 1000);
    EXPECT_EQ(q.processedCount(), 1000u);
    EXPECT_EQ(q.lambdaSlotsAllocated(), 1u);
    EXPECT_EQ(q.lambdaPoolSize(), 1u);
    EXPECT_EQ(q.lambdaPoolFree(), 1u);
}

TEST(EventQueue, PoolGrowsToPeakInFlightThenStopsAllocating)
{
    EventQueue q;
    int fired = 0;
    for (int round = 0; round < 10; ++round) {
        const Tick base = q.now() + 1;
        for (int i = 0; i < 16; ++i)
            q.scheduleFn("burst", base + i, [&] { ++fired; });
        q.runUntil(base + 16);
    }
    EXPECT_EQ(fired, 160);
    // 16 were in flight at once; later rounds recycle those slots.
    EXPECT_EQ(q.lambdaSlotsAllocated(), 16u);
    EXPECT_EQ(q.lambdaPoolSize(), 16u);
    EXPECT_EQ(q.lambdaPoolFree(), 16u);
}

TEST(EventQueue, InFlightSlotNotReusedByNestedScheduling)
{
    // While an event is being processed its slot is still in flight;
    // a nested scheduleFn must get a different slot, and both events
    // must run with their own callable.
    EventQueue q;
    std::vector<int> order;
    q.scheduleFn("outer", 5, [&] {
        q.scheduleFn("inner", 6, [&] { order.push_back(2); });
        order.push_back(1);
    });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.lambdaSlotsAllocated(), 2u);
}

TEST(EventQueue, OrderingPreservedAcrossSlotReuse)
{
    // Recycled slots must not perturb (tick, priority, fifo) order.
    EventQueue q;
    std::vector<int> order;
    q.scheduleFn("warm-a", 1, [&] { order.push_back(0); });
    q.scheduleFn("warm-b", 1, [&] { order.push_back(0); });
    q.runUntil(1);
    order.clear();

    q.scheduleFn("late", 10, [&] { order.push_back(3); }, 200);
    q.scheduleFn("first", 10, [&] { order.push_back(1); }, 50);
    q.scheduleFn("fifo", 10, [&] { order.push_back(2); }, 50);
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    // Only the peak of three in flight ever allocated (two warm slots
    // recycled, one grown).
    EXPECT_EQ(q.lambdaSlotsAllocated(), 3u);
}

TEST(EventQueue, OwnedEventsBypassLambdaPool)
{
    class Marker : public Event
    {
      public:
        explicit Marker(int &hits) : Event("marker"), hits_(hits) {}
        void process() override { ++hits_; }

      private:
        int &hits_;
    };

    EventQueue q;
    int hits = 0;
    q.schedule(std::make_unique<Marker>(hits), 3);
    q.schedule(std::make_unique<Marker>(hits), 4);
    q.runUntil(5);
    EXPECT_EQ(hits, 2);
    EXPECT_EQ(q.lambdaSlotsAllocated(), 0u);
    EXPECT_EQ(q.lambdaPoolSize(), 0u);
}

TEST(EventQueue, HeapOrderingSurvivesInterleavedPopsAndPushes)
{
    // Mixed schedule/step traffic with recycled slots must fire in
    // strict (tick, priority, sequence) order.
    EventQueue q;
    std::vector<Tick> fired;
    for (int i = 0; i < 50; ++i) {
        const Tick when = static_cast<Tick>(1 + (i * 37) % 97);
        q.scheduleFn("mix", when, [&fired, &q] {
            fired.push_back(q.now());
        });
    }
    q.runUntil(200);
    ASSERT_EQ(fired.size(), 50u);
    for (size_t i = 1; i < fired.size(); ++i)
        EXPECT_LE(fired[i - 1], fired[i]);
}

} // namespace
} // namespace tdp

/**
 * @file
 * Implementation of the system power estimator.
 */

#include "core/estimator.hh"

#include "common/logging.hh"

namespace tdp {

Watts
PowerBreakdown::total() const
{
    Watts acc = 0.0;
    for (Watts w : watts)
        acc += w;
    return acc;
}

SystemPowerEstimator
SystemPowerEstimator::makePaperModelSet()
{
    SystemPowerEstimator est;
    est.setModel(std::make_unique<CpuPowerModel>());
    est.setModel(makeMemoryBusModel());
    est.setModel(std::make_unique<DiskPowerModel>());
    est.setModel(makeIoInterruptModel());
    est.setModel(std::make_unique<ChipsetPowerModel>());
    return est;
}

void
SystemPowerEstimator::setModel(std::unique_ptr<SubsystemModel> model)
{
    if (!model)
        fatal("SystemPowerEstimator: null model");
    models_[static_cast<size_t>(model->rail())] = std::move(model);
}

SubsystemModel &
SystemPowerEstimator::model(Rail rail)
{
    auto &m = models_[static_cast<size_t>(rail)];
    if (!m)
        fatal("SystemPowerEstimator: no model for rail %s",
              railName(rail));
    return *m;
}

const SubsystemModel &
SystemPowerEstimator::model(Rail rail) const
{
    const auto &m = models_[static_cast<size_t>(rail)];
    if (!m)
        fatal("SystemPowerEstimator: no model for rail %s",
              railName(rail));
    return *m;
}

bool
SystemPowerEstimator::ready() const
{
    for (const auto &m : models_)
        if (!m || !m->trained())
            return false;
    return true;
}

void
SystemPowerEstimator::trainAll(const SampleTrace &trace)
{
    for (auto &m : models_)
        if (m)
            m->train(trace);
}

PowerBreakdown
SystemPowerEstimator::estimate(const EventVector &events) const
{
    PowerBreakdown out;
    for (int r = 0; r < numRails; ++r) {
        const auto &m = models_[static_cast<size_t>(r)];
        if (!m)
            fatal("SystemPowerEstimator: no model for rail %s",
                  railName(static_cast<Rail>(r)));
        out.watts[static_cast<size_t>(r)] = m->estimate(events);
    }
    return out;
}

std::vector<PowerBreakdown>
SystemPowerEstimator::estimateTrace(const SampleTrace &trace) const
{
    std::vector<PowerBreakdown> out;
    out.reserve(trace.size());
    for (const AlignedSample &sample : trace.samples())
        out.push_back(estimate(EventVector::fromSample(sample)));
    return out;
}

std::vector<double>
SystemPowerEstimator::modeledColumn(const SampleTrace &trace,
                                    Rail rail) const
{
    std::vector<double> out;
    out.reserve(trace.size());
    const SubsystemModel &m = model(rail);
    for (const AlignedSample &sample : trace.samples())
        out.push_back(m.estimate(EventVector::fromSample(sample)));
    return out;
}

std::string
SystemPowerEstimator::describe() const
{
    std::string text;
    for (const auto &m : models_) {
        if (m && m->trained()) {
            text += m->describe();
            text += '\n';
        }
    }
    return text;
}

} // namespace tdp

file(REMOVE_RECURSE
  "CMakeFiles/process_accounting.dir/process_accounting.cpp.o"
  "CMakeFiles/process_accounting.dir/process_accounting.cpp.o.d"
  "process_accounting"
  "process_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Implementation of the bench helpers.
 */

#include "bench_util.hh"

#include <iostream>

#include "common/logging.hh"
#include "common/table.hh"

namespace tdp {
namespace bench {

RunSpec
characterizationRun(const std::string &workload)
{
    RunSpec spec;
    spec.workload = workload;
    if (workload == "idle") {
        spec.instances = 0;
        spec.duration = 120.0;
        spec.skip = 10.0;
    } else if (workload == "diskload") {
        spec.instances = 8;
        // Staggered starts desynchronise the periodic sync() flushes,
        // giving the sustained disk/I/O activity of the paper's trace.
        spec.stagger = 1.5;
        spec.duration = 200.0;
        spec.skip = 30.0;
    } else {
        spec.instances = 8;
        spec.duration = 180.0;
        spec.skip = 30.0;
    }
    return spec;
}

RunSpec
trainingRun(const std::string &workload)
{
    RunSpec spec;
    spec.workload = workload;
    spec.instances = 8;
    spec.firstStart = 1.0;
    spec.stagger = 30.0;
    spec.duration = 390.0;
    spec.skip = 0.0;
    // A different seed stream than the validation runs, so the models
    // are never validated on their own noise realisation.
    spec.seed = defaultSeed ^ 0x7e57ab1e;
    if (workload == "idle") {
        spec.instances = 0;
        spec.duration = 120.0;
    } else if (workload == "diskload") {
        spec.stagger = 5.0;
        spec.duration = 240.0;
    }
    return spec;
}

SampleTrace
runTrace(const RunSpec &spec, std::unique_ptr<Server> &out)
{
    out = std::make_unique<Server>(spec.seed);
    if (spec.instances > 0) {
        out->runner().launchStaggered(spec.workload, spec.instances,
                                      spec.firstStart, spec.stagger);
    }
    out->run(spec.duration);
    const SampleTrace &full = out->rig().collect();
    if (spec.skip <= 0.0)
        return full;
    return full.slice(spec.skip, spec.duration + 1.0);
}

SampleTrace
runTrace(const RunSpec &spec)
{
    std::unique_ptr<Server> server;
    return runTrace(spec, server);
}

SystemPowerEstimator
trainPaperEstimator(uint64_t seed)
{
    SystemPowerEstimator estimator =
        SystemPowerEstimator::makePaperModelSet();

    auto spec_for = [seed](const std::string &name) {
        RunSpec spec = trainingRun(name);
        spec.seed ^= seed;
        return spec;
    };

    ModelTrainer trainer;
    trainer.setTrainingTrace(Rail::Cpu, runTrace(spec_for("gcc")));
    trainer.setTrainingTrace(Rail::Memory, runTrace(spec_for("mcf")));
    const SampleTrace diskload = runTrace(spec_for("diskload"));
    trainer.setTrainingTrace(Rail::Disk, diskload);
    trainer.setTrainingTrace(Rail::Io, diskload);
    trainer.setTrainingTrace(Rail::Chipset, runTrace(spec_for("idle")));
    trainer.train(estimator);
    return estimator;
}

std::vector<ValidationResult>
printErrorTable(const SystemPowerEstimator &estimator,
                const std::vector<std::string> &workloads,
                const std::string &average_label, uint64_t seed)
{
    // Tables 3/4 report Equation 6 on the raw rail values; the
    // DC-subtracted disk metric is only used for the Figure 6 trace.
    Validator validator(estimator, 0.0);

    std::vector<ValidationResult> results;
    for (const std::string &name : workloads) {
        RunSpec spec = characterizationRun(name);
        spec.seed = seed;
        results.push_back(validator.validate(name, runTrace(spec)));
    }

    TableWriter table(
        {"workload", "CPU", "Chipset", "Memory", "I/O", "Disk"});
    auto add_row = [&table](const ValidationResult &r) {
        table.addRow({r.workload, TableWriter::pct(r.error(Rail::Cpu)),
                      TableWriter::pct(r.error(Rail::Chipset)),
                      TableWriter::pct(r.error(Rail::Memory)),
                      TableWriter::pct(r.error(Rail::Io)),
                      TableWriter::pct(r.error(Rail::Disk))});
    };
    for (const ValidationResult &r : results)
        add_row(r);
    add_row(Validator::average(results, average_label));
    table.render(std::cout);
    return results;
}

} // namespace bench
} // namespace tdp

# Empty dependencies file for bm_overhead.
# This may be replaced when dependencies are built.

/**
 * @file
 * Tests for the unit conversions.
 */

#include <gtest/gtest.h>

#include "common/units.hh"

namespace tdp {
namespace {

TEST(Units, SecondsToTicksRoundTrip)
{
    EXPECT_EQ(secondsToTicks(1.0), ticksPerSecond);
    EXPECT_EQ(secondsToTicks(0.001), ticksPerMs);
    EXPECT_DOUBLE_EQ(ticksToSeconds(ticksPerSecond), 1.0);
}

TEST(Units, SecondsToTicksRounds)
{
    // 1.5 us rounds to 2 ticks.
    EXPECT_EQ(secondsToTicks(1.5e-6), 2u);
    EXPECT_EQ(secondsToTicks(0.4e-6), 0u);
}

TEST(Units, TicksToCycles)
{
    // 1 ms at 2.8 GHz is 2.8 million cycles.
    EXPECT_DOUBLE_EQ(ticksToCycles(ticksPerMs, 2.8e9), 2.8e6);
}

TEST(Units, ZeroSpans)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(0), 0.0);
    EXPECT_DOUBLE_EQ(ticksToCycles(0, 1e9), 0.0);
}

} // namespace
} // namespace tdp

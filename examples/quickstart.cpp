/**
 * @file
 * Quickstart: build the instrumented server, train the paper's five
 * subsystem models, then estimate complete-system power at runtime
 * from performance counters alone - no power sensing in the loop.
 *
 * This walks the library's whole public API surface in ~100 lines:
 *   Server -> WorkloadRunner -> SampleTrace -> ModelTrainer ->
 *   SystemPowerEstimator -> PowerBreakdown.
 */

#include <cstdio>

#include "core/serialize.hh"
#include "core/trainer.hh"
#include "platform/server.hh"

using namespace tdp;

namespace {

/** Collect an aligned (counters, power) trace for one workload. */
SampleTrace
record(const std::string &workload, int instances, Seconds stagger,
       Seconds duration, uint64_t seed)
{
    Server server(seed);
    if (instances > 0)
        server.runner().launchStaggered(workload, instances, 1.0,
                                        stagger);
    server.run(duration);
    return server.rig().collect();
}

} // namespace

int
main()
{
    std::printf("== 1. Train the five subsystem models "
                "(paper section 3.2.2) ==\n");

    // Each model trains on one high-variation workload trace recorded
    // on the instrumented machine: CPU <- staggered gcc, memory <-
    // staggered mcf, disk+I/O <- the DiskLoad synthetic, chipset <-
    // idle (constant fit).
    SystemPowerEstimator estimator =
        SystemPowerEstimator::makePaperModelSet();
    ModelTrainer trainer;
    trainer.setTrainingTrace(Rail::Cpu,
                             record("gcc", 8, 30.0, 280.0, 1));
    trainer.setTrainingTrace(Rail::Memory,
                             record("mcf", 8, 30.0, 280.0, 2));
    const SampleTrace diskload = record("diskload", 8, 5.0, 160.0, 3);
    trainer.setTrainingTrace(Rail::Disk, diskload);
    trainer.setTrainingTrace(Rail::Io, diskload);
    trainer.setTrainingTrace(Rail::Chipset,
                             record("idle", 0, 0.0, 60.0, 4));
    trainer.train(estimator);
    std::printf("%s\n", estimator.describe().c_str());

    // Models can be persisted and shipped to uninstrumented machines.
    const std::string snapshot = saveModelsToString(estimator);
    std::printf("serialized model set: %zu bytes\n\n",
                snapshot.size());

    std::printf("== 2. Runtime estimation on an unseen workload ==\n");
    std::printf("%8s  %8s  %8s  %8s  %8s  %8s  %8s\n", "seconds",
                "CPU", "Chipset", "Memory", "I/O", "Disk", "Total");

    // A fresh, uninstrumented-in-spirit run: SPECjbb, which no model
    // ever saw. Only the counter samples feed the estimator.
    Server server(42);
    server.runner().launchStaggered("specjbb", 8, 1.0, 0.0);
    for (int step = 0; step < 6; ++step) {
        server.run(10.0);
        const SampleTrace &trace = server.rig().collect();
        if (trace.empty())
            continue;
        const AlignedSample &latest = trace[trace.size() - 1];
        const PowerBreakdown bd =
            estimator.estimate(EventVector::fromSample(latest));
        std::printf(
            "%8.0f  %8.1f  %8.1f  %8.1f  %8.1f  %8.2f  %8.1f\n",
            latest.time, bd.rail(Rail::Cpu), bd.rail(Rail::Chipset),
            bd.rail(Rail::Memory), bd.rail(Rail::Io),
            bd.rail(Rail::Disk), bd.total());
    }

    std::printf("\n== 3. Check against the hidden ground truth ==\n");
    const SampleTrace &trace = server.rig().collect();
    double modeled = 0.0, measured = 0.0;
    for (const AlignedSample &s : trace.samples()) {
        modeled +=
            estimator.estimate(EventVector::fromSample(s)).total();
        for (int r = 0; r < numRails; ++r)
            measured += s.measured(static_cast<Rail>(r));
    }
    std::printf("mean modeled total:  %.1f W\n"
                "mean measured total: %.1f W  (error %.2f%%)\n",
                modeled / trace.size(), measured / trace.size(),
                (modeled - measured) / measured * 100.0);
    return 0;
}

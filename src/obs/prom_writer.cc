/**
 * @file
 * Implementation of the Prometheus text-exposition writer.
 */

#include "obs/prom_writer.hh"

#include <cctype>
#include <cstdio>

namespace tdp {
namespace obs {

namespace {

/** Round-trip-exact double, matching the JSON writer's %.17g. */
std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return buffer;
}

} // namespace

std::string
promMetricName(const std::string &path)
{
    std::string name = "tdp_";
    name.reserve(path.size() + name.size());
    for (char c : path) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '_';
        name.push_back(ok ? c : '_');
    }
    return name;
}

void
writePrometheusText(std::ostream &os,
                    const StatsRegistry::Snapshot &snapshot)
{
    for (const auto &[path, value] : snapshot.counters) {
        const std::string name = promMetricName(path);
        os << "# TYPE " << name << " counter\n";
        os << name << ' ' << value << '\n';
    }
    for (const auto &[path, value] : snapshot.gauges) {
        const std::string name = promMetricName(path);
        os << "# TYPE " << name << " gauge\n";
        os << name << ' ' << formatDouble(value) << '\n';
    }
    for (const auto &[path, data] : snapshot.histograms) {
        const std::string name = promMetricName(path);
        os << "# TYPE " << name << " histogram\n";
        // Highest non-empty bucket bounds the emitted series; the
        // +Inf bucket always closes it with the full count.
        int top = -1;
        for (int b = 0; b < histogramBuckets; ++b)
            if (data.buckets[b] != 0)
                top = b;
        uint64_t cumulative = 0;
        // The last log2 bucket has no finite upper bound; the +Inf
        // series below covers it.
        for (int b = 0; b <= top && b < histogramBuckets - 1; ++b) {
            cumulative += data.buckets[b];
            // Bucket b covers [bucketLow(b), bucketLow(b+1)); the
            // Prometheus `le` label is its inclusive upper bound.
            const uint64_t le = histogramBucketLow(b + 1) - 1;
            os << name << "_bucket{le=\"" << le << "\"} " << cumulative
               << '\n';
        }
        os << name << "_bucket{le=\"+Inf\"} " << data.count << '\n';
        os << name << "_sum " << data.sum << '\n';
        os << name << "_count " << data.count << '\n';
    }
}

} // namespace obs
} // namespace tdp

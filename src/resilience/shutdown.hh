/**
 * @file
 * Graceful-shutdown coordination.
 *
 * A long calibration sweep receiving SIGINT/SIGTERM (preemption, a
 * CI timeout, an operator Ctrl-C) should not vanish mid-write: the
 * handler only sets a flag; the experiment pool stops claiming new
 * tasks, in-flight tasks drain, the journal and partial manifest are
 * flushed, and the process exits with a distinct code
 * (cleanAbortExitCode) so callers can tell "aborted cleanly, resume
 * me" from both success and crash.
 */

#ifndef TDP_RESILIENCE_SHUTDOWN_HH
#define TDP_RESILIENCE_SHUTDOWN_HH

namespace tdp {
namespace resilience {

/**
 * Exit code of a drained, journal-flushed abort. Distinct from 0
 * (success), 1 (fatal error) and 128+signum (unhandled signal).
 */
constexpr int cleanAbortExitCode = 113;

/**
 * Install the SIGINT/SIGTERM handler (idempotent). The handler is
 * async-signal-safe: it only raises the shutdown flag.
 */
void installShutdownHandler();

/** True once a shutdown was requested (signal or programmatic). */
bool shutdownRequested();

/** Raise the shutdown flag programmatically (chaos abort, tests). */
void requestShutdown();

/** Lower the flag; tests only. */
void resetShutdownForTest();

/**
 * The signal number that triggered the shutdown, or 0 when the
 * request was programmatic / none happened.
 */
int shutdownSignal();

/**
 * Install the SIGUSR2 handler (idempotent). Same async-signal-safe
 * shape as the shutdown handler: it only raises a flag; the owner
 * polls dumpRequested() at a safe point, writes its telemetry dump,
 * and clears the flag. The run itself continues.
 */
void installDumpSignalHandler();

/** True while a telemetry dump is pending (SIGUSR2 or programmatic). */
bool dumpRequested();

/** Raise the dump flag programmatically (tests, tooling). */
void requestDump();

/** Lower the dump flag once the dump has been written. */
void clearDumpRequest();

} // namespace resilience
} // namespace tdp

#endif // TDP_RESILIENCE_SHUTDOWN_HH

/**
 * @file
 * Flat open-addressing client -> row index for the session table.
 *
 * At fleet scale (millions of clients) the session lookup is the
 * hottest non-arithmetic operation in the drain path: every popped
 * sample resolves its client id to a SoA row. std::unordered_map
 * costs a heap node per client plus a pointer chase per lookup; this
 * index is a single power-of-two array of 16-byte buckets probed
 * linearly from a splitmix64 hash, so a hit touches one or two cache
 * lines and a miss terminates at the first empty bucket.
 *
 * Deletion is tombstone-free backward-shift: erasing a client walks
 * the probe run and slides displaced entries back into the hole, so
 * the table never accumulates dead buckets and lookup cost stays
 * bounded by the (enforced <= 7/8) load factor, however many
 * sessions idle-eviction has churned through. Growth rehashes into a
 * doubled array; the *iteration-free* API (find/insert/set/erase
 * only) keeps every observable result independent of hash order,
 * which is what lets the SessionTable swap this in under the
 * bitwise-digest contract.
 */

#ifndef TDP_STREAM_FLAT_INDEX_HH
#define TDP_STREAM_FLAT_INDEX_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tdp {
namespace stream {

/** Open-addressing client-id -> row map (linear probe). */
class FlatClientIndex
{
  public:
    /** Sentinel row meaning "client not present". */
    static constexpr uint32_t kNoRow = 0xffffffffu;

    /** @param capacityHint expected clients (rounded to 2^k). */
    explicit FlatClientIndex(size_t capacityHint = 0);

    /** Row of @p client, or kNoRow when absent. */
    uint32_t find(uint64_t client) const;

    /** Insert an absent client (fatal() on duplicates). */
    void insert(uint64_t client, uint32_t row);

    /** Re-point an existing client at a new row (fatal() if absent). */
    void set(uint64_t client, uint32_t row);

    /** Remove a client (fatal() if absent); backward-shift compact. */
    void erase(uint64_t client);

    /** Mapped clients. */
    size_t size() const { return size_; }

    /** Current bucket count (power of two). */
    size_t capacity() const { return buckets_.size(); }

    /** Bytes held by the bucket array. */
    size_t memoryBytes() const
    {
        return buckets_.capacity() * sizeof(Bucket);
    }

    /**
     * Debug checker: fatal() unless every occupied bucket is
     * reachable from its client's home bucket with no empty slot
     * inside the probe run (the linear-probe invariant backward-
     * shift deletion must preserve) and the occupied count matches
     * size(). O(capacity * probe length); called after checkpoint
     * restore and from the churn tests, not on any hot path.
     */
    void verifyInvariants() const;

  private:
    struct Bucket
    {
        uint64_t client = 0;
        uint32_t row = kNoRow; ///< kNoRow marks an empty bucket
    };

    /** Home bucket of a client id. */
    size_t homeOf(uint64_t client) const;

    /** Rehash into @p newCapacity buckets (power of two). */
    void rehash(size_t newCapacity);

    std::vector<Bucket> buckets_;
    size_t size_ = 0;
    size_t mask_ = 0;
};

} // namespace stream
} // namespace tdp

#endif // TDP_STREAM_FLAT_INDEX_HH

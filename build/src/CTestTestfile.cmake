# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("sim")
subdirs("cpu")
subdirs("memory")
subdirs("io")
subdirs("disk")
subdirs("os")
subdirs("workloads")
subdirs("measure")
subdirs("core")
subdirs("platform")

/**
 * @file
 * Fixed-capacity ring queue of stream samples.
 *
 * The per-shard ingest queues extend the PR 1 event-queue discipline:
 * storage is allocated once at construction and samples are stored by
 * value, so the admission hot path never touches the allocator. A
 * full ring refuses the push - backpressure is the caller's decision
 * (shed or overflow), never an implicit eviction, so an overload run
 * stays deterministic.
 */

#ifndef TDP_STREAM_RING_HH
#define TDP_STREAM_RING_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "stream/sample.hh"

namespace tdp {
namespace stream {

/** Bounded FIFO of StreamSample, allocation-free after construction. */
class SampleRing
{
  public:
    /** @param capacity fixed slot count (>= 1). */
    explicit SampleRing(size_t capacity) : slots_(capacity)
    {
        if (capacity == 0)
            fatal("SampleRing: capacity must be >= 1");
    }

    /** Samples currently queued. */
    size_t size() const { return count_; }

    /** Fixed slot count. */
    size_t capacity() const { return slots_.size(); }

    /** True when nothing is queued. */
    bool empty() const { return count_ == 0; }

    /** True when a push would be refused. */
    bool full() const { return count_ == slots_.size(); }

    /** Enqueue one sample; false (untouched ring) when full. */
    bool
    push(const StreamSample &sample)
    {
        if (full())
            return false;
        slots_[(head_ + count_) % slots_.size()] = sample;
        ++count_;
        return true;
    }

    /** Dequeue the oldest sample into @p out; false when empty. */
    bool
    pop(StreamSample &out)
    {
        if (empty())
            return false;
        out = slots_[head_];
        head_ = (head_ + 1) % slots_.size();
        --count_;
        return true;
    }

    /** Queued sample @p i (0 = oldest); checkpoint serialization. */
    const StreamSample &
    at(size_t i) const
    {
        return slots_[(head_ + i) % slots_.size()];
    }

    /** Drop everything (checkpoint restore refills from scratch). */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    std::vector<StreamSample> slots_;
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace stream
} // namespace tdp

#endif // TDP_STREAM_RING_HH

/**
 * @file
 * Tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/event_queue.hh"

namespace tdp {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFn("b", 20, [&] { order.push_back(2); });
    q.scheduleFn("a", 10, [&] { order.push_back(1); });
    q.scheduleFn("c", 30, [&] { order.push_back(3); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue q;
    std::vector<int> order;
    q.scheduleFn("late", 10, [&] { order.push_back(3); }, 200);
    q.scheduleFn("first", 10, [&] { order.push_back(1); }, 50);
    q.scheduleFn("fifo-a", 10, [&] { order.push_back(2); }, 50);
    q.runUntil(10);
    // priority 50 events fire first, among them insertion order; but
    // "first" was inserted before "fifo-a" at equal priority.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFn("in", 10, [&] { ++fired; });
    q.scheduleFn("out", 11, [&] { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.nextTick(), 11u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFn("outer", 5, [&] {
        q.scheduleFn("inner", 7, [&] { ++fired; });
    });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.processedCount(), 2u);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue q;
    q.scheduleFn("now", 10, [] {});
    q.runUntil(10);
    EXPECT_THROW(q.scheduleFn("past", 5, [] {}), PanicError);
}

TEST(EventQueue, SameTickSchedulingAllowed)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFn("outer", 5, [&] {
        // Scheduling at the current tick must work (same-instant
        // follow-up work).
        q.scheduleFn("inner", 5, [&] { ++fired; });
    });
    q.runUntil(5);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EmptyQueueQueries)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_THROW(q.nextTick(), PanicError);
    EXPECT_THROW(q.step(), PanicError);
}

TEST(EventQueue, NullEventPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(nullptr, 1), PanicError);
}

TEST(EventQueue, RunUntilAdvancesTimeWithoutEvents)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.now(), 500u);
}

} // namespace
} // namespace tdp

/**
 * @file
 * Per-level implementations of the lane classification kernels.
 *
 * Every kernel reduces to comparisons folded into a bit mask, so the
 * only correctness subtlety is NaN ordering: all range/less-than
 * compares are *ordered* (NaN clears the bit) to match the scalar
 * verdict code, and non-finiteness uses the (x - x) != 0 trick where
 * the != is deliberately unordered (NaN sets the bit).
 */

#include "simd/lane_check.hh"

#include "common/logging.hh"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TDP_SIMD_X86 1
#else
#define TDP_SIMD_X86 0
#endif

namespace tdp {
namespace lanes {

namespace {

void
checkMaskWidth(size_t n)
{
    if (n > 64)
        fatal("lane_check: mask kernels take at most 64 inputs, "
              "got %zu",
              n);
}

uint64_t
nonFiniteMaskScalar(const double *x, size_t n)
{
    uint64_t mask = 0;
    for (size_t i = 0; i < n; ++i) {
        const double d = x[i] - x[i];
        // NaN != 0.0 is true (unordered), finite - finite == +0.0.
        if (d != 0.0)
            mask |= uint64_t(1) << i;
    }
    return mask;
}

uint64_t
outOfRangeMaskScalar(const double *x, double lo, double hi, size_t n)
{
    uint64_t mask = 0;
    for (size_t i = 0; i < n; ++i) {
        // Ordered compares: NaN < lo and NaN >= hi are both false.
        if (x[i] < lo || x[i] >= hi)
            mask |= uint64_t(1) << i;
    }
    return mask;
}

uint64_t
lessThanMaskScalar(const double *a, const double *b, size_t n)
{
    uint64_t mask = 0;
    for (size_t i = 0; i < n; ++i) {
        if (a[i] < b[i])
            mask |= uint64_t(1) << i;
    }
    return mask;
}

#if TDP_SIMD_X86

uint64_t
nonFiniteMaskSse2(const double *x, size_t n)
{
    uint64_t mask = 0;
    size_t i = 0;
    const __m128d zero = _mm_setzero_pd();
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_loadu_pd(x + i);
        const __m128d d = _mm_sub_pd(v, v);
        // cmpneq is unordered-or-unequal: NaN - NaN = NaN sets it,
        // Inf - Inf = NaN sets it, finite - finite = +0.0 clears it.
        const int bits =
            _mm_movemask_pd(_mm_cmpneq_pd(d, zero));
        mask |= static_cast<uint64_t>(bits) << i;
    }
    mask |= nonFiniteMaskScalar(x + i, n - i) << i;
    return mask;
}

uint64_t
outOfRangeMaskSse2(const double *x, double lo, double hi, size_t n)
{
    uint64_t mask = 0;
    size_t i = 0;
    const __m128d vlo = _mm_set1_pd(lo);
    const __m128d vhi = _mm_set1_pd(hi);
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_loadu_pd(x + i);
        // Ordered compares; NaN contributes to neither operand.
        const __m128d below = _mm_cmplt_pd(v, vlo);
        const __m128d atOrAbove = _mm_cmpge_pd(v, vhi);
        const int bits =
            _mm_movemask_pd(_mm_or_pd(below, atOrAbove));
        mask |= static_cast<uint64_t>(bits) << i;
    }
    mask |= outOfRangeMaskScalar(x + i, lo, hi, n - i) << i;
    return mask;
}

uint64_t
lessThanMaskSse2(const double *a, const double *b, size_t n)
{
    uint64_t mask = 0;
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d va = _mm_loadu_pd(a + i);
        const __m128d vb = _mm_loadu_pd(b + i);
        const int bits = _mm_movemask_pd(_mm_cmplt_pd(va, vb));
        mask |= static_cast<uint64_t>(bits) << i;
    }
    mask |= lessThanMaskScalar(a + i, b + i, n - i) << i;
    return mask;
}

#pragma GCC push_options
#pragma GCC target("avx2")

uint64_t
nonFiniteMaskAvx2(const double *x, size_t n)
{
    uint64_t mask = 0;
    size_t i = 0;
    const __m256d zero = _mm256_setzero_pd();
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(x + i);
        const __m256d d = _mm256_sub_pd(v, v);
        const int bits = _mm256_movemask_pd(
            _mm256_cmp_pd(d, zero, _CMP_NEQ_UQ));
        mask |= static_cast<uint64_t>(bits) << i;
    }
    mask |= nonFiniteMaskScalar(x + i, n - i) << i;
    return mask;
}

uint64_t
outOfRangeMaskAvx2(const double *x, double lo, double hi, size_t n)
{
    uint64_t mask = 0;
    size_t i = 0;
    const __m256d vlo = _mm256_set1_pd(lo);
    const __m256d vhi = _mm256_set1_pd(hi);
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_loadu_pd(x + i);
        const __m256d below =
            _mm256_cmp_pd(v, vlo, _CMP_LT_OQ);
        const __m256d atOrAbove =
            _mm256_cmp_pd(v, vhi, _CMP_GE_OQ);
        const int bits =
            _mm256_movemask_pd(_mm256_or_pd(below, atOrAbove));
        mask |= static_cast<uint64_t>(bits) << i;
    }
    mask |= outOfRangeMaskScalar(x + i, lo, hi, n - i) << i;
    return mask;
}

uint64_t
lessThanMaskAvx2(const double *a, const double *b, size_t n)
{
    uint64_t mask = 0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        const int bits = _mm256_movemask_pd(
            _mm256_cmp_pd(va, vb, _CMP_LT_OQ));
        mask |= static_cast<uint64_t>(bits) << i;
    }
    mask |= lessThanMaskScalar(a + i, b + i, n - i) << i;
    return mask;
}

#pragma GCC pop_options

#endif // TDP_SIMD_X86

} // namespace

uint64_t
nonFiniteMaskAt(SimdLevel level, const double *x, size_t n)
{
    checkMaskWidth(n);
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return nonFiniteMaskAvx2(x, n);
    if (level == SimdLevel::Sse2)
        return nonFiniteMaskSse2(x, n);
#else
    (void)level;
#endif
    return nonFiniteMaskScalar(x, n);
}

uint64_t
nonFiniteMask(const double *x, size_t n)
{
    return nonFiniteMaskAt(activeSimdLevel(), x, n);
}

uint64_t
outOfRangeMaskAt(SimdLevel level, const double *x, double lo,
                 double hi, size_t n)
{
    checkMaskWidth(n);
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return outOfRangeMaskAvx2(x, lo, hi, n);
    if (level == SimdLevel::Sse2)
        return outOfRangeMaskSse2(x, lo, hi, n);
#else
    (void)level;
#endif
    return outOfRangeMaskScalar(x, lo, hi, n);
}

uint64_t
outOfRangeMask(const double *x, double lo, double hi, size_t n)
{
    return outOfRangeMaskAt(activeSimdLevel(), x, lo, hi, n);
}

uint64_t
lessThanMaskAt(SimdLevel level, const double *a, const double *b,
               size_t n)
{
    checkMaskWidth(n);
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return lessThanMaskAvx2(a, b, n);
    if (level == SimdLevel::Sse2)
        return lessThanMaskSse2(a, b, n);
#else
    (void)level;
#endif
    return lessThanMaskScalar(a, b, n);
}

uint64_t
lessThanMask(const double *a, const double *b, size_t n)
{
    return lessThanMaskAt(activeSimdLevel(), a, b, n);
}

} // namespace lanes
} // namespace tdp

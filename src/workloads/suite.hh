/**
 * @file
 * The paper's workload suite (section 3.2): eight SPEC CPU 2000
 * codes, two commercial server workloads and the synthetic DiskLoad,
 * plus idle. Each is a WorkloadProfile whose rates were calibrated so
 * the simulated server reproduces the paper's Table 1/2
 * characterisation.
 */

#ifndef TDP_WORKLOADS_SUITE_HH
#define TDP_WORKLOADS_SUITE_HH

#include <vector>

#include "workloads/profile.hh"

namespace tdp {

/** All registered workload profiles (built once, in a fixed order). */
const std::vector<WorkloadProfile> &workloadSuite();

/** Names of the SPEC integer codes in the suite. */
std::vector<std::string> integerWorkloads();

/** Names of the SPEC floating-point codes in the suite. */
std::vector<std::string> floatingPointWorkloads();

/** The paper's Table 1 workload order (idle first, DiskLoad last). */
std::vector<std::string> paperWorkloadOrder();

} // namespace tdp

#endif // TDP_WORKLOADS_SUITE_HH


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/profile.cc" "src/workloads/CMakeFiles/tdp_workloads.dir/profile.cc.o" "gcc" "src/workloads/CMakeFiles/tdp_workloads.dir/profile.cc.o.d"
  "/root/repo/src/workloads/runner.cc" "src/workloads/CMakeFiles/tdp_workloads.dir/runner.cc.o" "gcc" "src/workloads/CMakeFiles/tdp_workloads.dir/runner.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/tdp_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/tdp_workloads.dir/suite.cc.o.d"
  "/root/repo/src/workloads/workload_thread.cc" "src/workloads/CMakeFiles/tdp_workloads.dir/workload_thread.cc.o" "gcc" "src/workloads/CMakeFiles/tdp_workloads.dir/workload_thread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/tdp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/tdp_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/tdp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/tdp_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

/**
 * @file
 * Sample records: the aligned (performance counters, measured power)
 * pairs the paper's models are trained and validated on.
 */

#ifndef TDP_MEASURE_TRACE_HH
#define TDP_MEASURE_TRACE_HH

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "cpu/perf_counters.hh"
#include "measure/rail.hh"

namespace tdp {

/**
 * One aligned sample: the per-CPU counter deltas over one sampling
 * interval plus the five rail powers averaged across the same window.
 */
struct AlignedSample
{
    /** Window end time on the target's clock (s). */
    Seconds time = 0.0;

    /** Actual window length (jittered around the nominal 1 s). */
    Seconds interval = 1.0;

    /** Per-CPU counter deltas (read-and-clear values). */
    std::vector<CounterSnapshot> perCpu;

    /** Interrupt deltas from /proc/interrupts: total. */
    double osInterruptsTotal = 0.0;

    /** Interrupt delta of the disk HBA vector. */
    double osDiskInterrupts = 0.0;

    /** Interrupt delta of all device (non-timer) vectors. */
    double osDeviceInterrupts = 0.0;

    /** Measured subsystem power over the window (W). */
    std::array<double, numRails> measuredWatts{};

    /** Sum of one counter across CPUs. */
    double totalCount(PerfEvent event) const;

    /**
     * All ten counters summed across CPUs in one lane-batched pass;
     * bit-identical to calling totalCount() per event (same per-CPU
     * addition order).
     */
    CounterSnapshot totalCounts() const;

    /** Measured power for one rail (W). */
    double
    measured(Rail rail) const
    {
        return measuredWatts[static_cast<size_t>(rail)];
    }
};

/** An aligned trace with export and column-extraction helpers. */
class SampleTrace
{
  public:
    /** Append one sample. */
    void
    add(AlignedSample sample)
    {
        samples_.push_back(std::move(sample));
        columnsValid_ = false;
    }

    /** The samples, in time order. */
    const std::vector<AlignedSample> &samples() const { return samples_; }

    /** Number of samples. */
    size_t size() const { return samples_.size(); }

    /** True when no samples were collected. */
    bool empty() const { return samples_.empty(); }

    /** Access one sample. */
    const AlignedSample &operator[](size_t i) const { return samples_[i]; }

    /**
     * Measured power column for one rail: a contiguous double array
     * the metrics stream over directly. Served from a lazily built
     * structure-of-arrays mirror of the samples, so repeated column
     * access (the Eq. 6 sweep touches every rail of every trace)
     * costs one pass over the samples total instead of one per call.
     * The reference is invalidated by the next add().
     */
    const std::vector<double> &measuredColumn(Rail rail) const;

    /** Summed counter column for one event (same contract). */
    const std::vector<double> &counterColumn(PerfEvent event) const;

    /** Keep only samples with time in [from, to). */
    SampleTrace slice(Seconds from, Seconds to) const;

    /** Write a CSV with one row per sample (summed counters). */
    void writeCsv(std::ostream &os) const;

    /**
     * Read a trace back from the CSV written by writeCsv. Because the
     * export sums counters across CPUs, the reconstruction spreads
     * each count evenly over `cpu_count` CPUs - exact for the summed
     * per-CPU model forms the library uses. fatal() on malformed
     * input.
     */
    static SampleTrace readCsv(std::istream &is, int cpu_count = 4);

  private:
    /** SoA mirror of the samples, one contiguous array per column. */
    struct Columns
    {
        std::array<std::vector<double>, numRails> measured;
        std::array<std::vector<double>, numPerfEvents> counters;
    };

    /**
     * The column mirror, (re)built on first access after a
     * mutation. Mutable cache only: it never influences observable
     * state. Concurrent first access from several threads is not
     * synchronised - share a trace across threads only after priming
     * it, or give each thread its own copy.
     */
    const Columns &columns() const;

    std::vector<AlignedSample> samples_;
    mutable Columns columns_;
    mutable bool columnsValid_ = false;
};

} // namespace tdp

#endif // TDP_MEASURE_TRACE_HH

#!/usr/bin/env python3
"""Render a stream telemetry timeline as a per-window text table.

Usage: summarize_timeline.py FILE.json

Accepts either format the telemetry layer produces:
 - a tdp-stream-timeline dump written by the stream benches via
   --timeline-out (including the `.sigusr2` and `.quarantine` side
   files), or
 - a tdp-run-manifest whose sections carry the flattened
   stream.timeline (written with --manifest-out when telemetry is
   on).

The dump is schema-checked strictly before anything is rendered, so
the script doubles as the CI validator for mid-run SIGUSR2 dumps.
Stdlib only. Exits non-zero with a message naming the first
violation.
"""

import json
import sys

DRIFT_STATES = ("healthy", "degraded", "probation")
WINDOW_NUMBER_KEYS = (
    "tick", "offered", "admitted", "shed", "overflow", "drained",
    "accepted", "invalid", "quarantines", "evicted", "refits",
    "full_qr_refits", "degraded_publishes", "unestimable",
    "drift_engaged", "drift_recovered", "drift_relapses", "shards",
    "occupancy_max", "occupancy_mean", "latency_count",
    "latency_max_ticks", "p50_ticks", "p99_ticks", "p999_ticks")
HDR_KEYS = (
    "count", "max_ticks", "p50_ticks", "p99_ticks", "p999_ticks",
    "sub_bucket_bits", "rel_error_bound", "buckets_used")
EVENT_KEYS = ("tick", "kind", "client", "detail", "code", "value")


def fail(msg):
    print(f"summarize_timeline: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def is_number(value):
    return (isinstance(value, (int, float))
            and not isinstance(value, bool))


def check_window(w, where):
    expect(isinstance(w, dict), f"{where} must be an object")
    for key in WINDOW_NUMBER_KEYS:
        expect(key in w, f"{where}.{key} missing")
        expect(is_number(w[key]), f"{where}.{key} must be a number")
    state = w.get("drift_state")
    expect(isinstance(state, str) and state.lower() in DRIFT_STATES,
           f"{where}.drift_state must be one of {DRIFT_STATES}, "
           f"got {state!r}")
    rails = w.get("rail_states")
    expect(isinstance(rails, list) and rails,
           f"{where}.rail_states must be a non-empty list")
    for rail in rails:
        expect(isinstance(rail, str) and rail.lower() in DRIFT_STATES,
               f"{where}.rail_states entries must be drift states, "
               f"got {rail!r}")
    if w["latency_count"] > 0:
        expect(w["p50_ticks"] <= w["p99_ticks"] <= w["p999_ticks"]
               <= w["latency_max_ticks"],
               f"{where}: quantiles must be ordered "
               f"p50 <= p99 <= p999 <= max")


def check_quantile_block(block, where):
    for key in HDR_KEYS:
        expect(key in block, f"{where}.{key} missing")
        expect(is_number(block[key]),
               f"{where}.{key} must be a number")
    expect(0 < block["rel_error_bound"] <= 0.5,
           f"{where}.rel_error_bound out of range")
    if block["count"] > 0:
        expect(block["p50_ticks"] <= block["p99_ticks"]
               <= block["p999_ticks"] <= block["max_ticks"],
               f"{where}: quantiles must be ordered")


def check_flight(flight):
    expect(isinstance(flight, dict), "flight must be an object")
    for key in ("rings", "capacity", "recorded", "dropped"):
        expect(is_number(flight.get(key)),
               f"flight.{key} must be a number")
    data = flight.get("data")
    expect(isinstance(data, list) and len(data) == flight["rings"],
           "flight.data must list one object per ring")
    for i, ring in enumerate(data):
        where = f"flight.data[{i}]"
        expect(isinstance(ring, dict), f"{where} must be an object")
        for key in ("ring", "recorded", "dropped"):
            expect(is_number(ring.get(key)),
                   f"{where}.{key} must be a number")
        events = ring.get("events")
        expect(isinstance(events, list),
               f"{where}.events must be a list")
        expect(len(events) <= flight["capacity"],
               f"{where} holds more events than the ring capacity")
        expect(ring["recorded"] - ring["dropped"] >= len(events),
               f"{where}: recorded - dropped < retained events")
        for j, event in enumerate(events):
            ewhere = f"{where}.events[{j}]"
            expect(isinstance(event, dict),
                   f"{ewhere} must be an object")
            for key in EVENT_KEYS:
                expect(key in event, f"{ewhere}.{key} missing")
            expect(isinstance(event["kind"], str) and event["kind"],
                   f"{ewhere}.kind must be a non-empty string")


def parse_dump(doc):
    """Strictly validate a tdp-stream-timeline dump; returns
    (windows, hdr, flight, header)."""
    expect(doc.get("version") == 1,
           f"version must be 1, got {doc.get('version')!r}")
    for key in ("tool", "reason"):
        expect(isinstance(doc.get(key), str) and doc[key],
               f"{key} must be a non-empty string")
    expect(is_number(doc.get("window_ticks"))
           and doc["window_ticks"] >= 1,
           "window_ticks must be a positive number")
    expect(isinstance(doc.get("timeline_enabled"), bool),
           "timeline_enabled must be a boolean")

    timeline = doc.get("timeline")
    expect(isinstance(timeline, dict), "timeline must be an object")
    for key in ("capacity", "recorded", "dropped"):
        expect(is_number(timeline.get(key)),
               f"timeline.{key} must be a number")
    windows = timeline.get("windows")
    expect(isinstance(windows, list), "timeline.windows must be a list")
    expect(len(windows) <= timeline["capacity"],
           "timeline holds more windows than its capacity")
    last_tick = -1
    for i, w in enumerate(windows):
        check_window(w, f"timeline.windows[{i}]")
        expect(w["tick"] > last_tick,
               f"timeline.windows[{i}].tick must increase "
               f"(got {w['tick']} after {last_tick})")
        last_tick = w["tick"]

    hdr = doc.get("latency_hdr")
    expect(isinstance(hdr, dict), "latency_hdr must be an object")
    check_quantile_block(hdr, "latency_hdr")

    flight = doc.get("flight")
    check_flight(flight)

    header = (f"{doc['tool']} dump, reason={doc['reason']}, "
              f"window={doc['window_ticks']} ticks, "
              f"timeline={'on' if doc['timeline_enabled'] else 'off'}")
    return windows, hdr, flight, header


def parse_manifest(doc):
    """Rebuild windows from a run manifest's flattened
    stream.timeline section (a key subset of the dump's windows)."""
    sections = doc.get("sections")
    expect(isinstance(sections, dict), "manifest has no sections")
    timeline = sections.get("stream.timeline")
    expect(isinstance(timeline, dict),
           "manifest has no stream.timeline section (was the bench "
           "run with --timeline-out?)")
    count = timeline.get("windows")
    expect(isinstance(count, int) and count >= 1,
           "stream.timeline.windows must be a positive integer")
    windows = []
    for i in range(count):
        prefix = f"w{i}."
        w = {key[len(prefix):]: value
             for key, value in timeline.items()
             if key.startswith(prefix)}
        expect("tick" in w, f"stream.timeline.{prefix}tick missing")
        windows.append(w)

    hdr = sections.get("stream.latency_hdr")
    expect(isinstance(hdr, dict),
           "manifest has no stream.latency_hdr section")
    flight = sections.get("stream.flight")
    expect(isinstance(flight, dict),
           "manifest has no stream.flight section")
    header = (f"{doc.get('tool', '?')} manifest, "
              f"window={timeline.get('window_ticks', '?')} ticks")
    return windows, hdr, flight, header


def shed_rate(w):
    offered = w.get("offered", 0)
    if not offered:
        return 0.0
    return (w.get("shed", 0) + w.get("overflow", 0)) / offered


def render(windows, hdr, flight, header):
    print(header)
    print()
    print(f"{'win':>3} {'tick':>6} {'offered':>8} {'accepted':>8} "
          f"{'shed%':>6} {'occ max':>7} {'occ mean':>8} "
          f"{'drift':>9} {'p50':>5} {'p99':>5} {'p999':>5}")
    for i, w in enumerate(windows):
        print(f"{i:>3} {w.get('tick', 0):>6} "
              f"{w.get('offered', 0):>8} {w.get('accepted', 0):>8} "
              f"{100.0 * shed_rate(w):>6.2f} "
              f"{w.get('occupancy_max', 0):>7} "
              f"{w.get('occupancy_mean', 0):>8.2f} "
              f"{w.get('drift_state', '?'):>9} "
              f"{w.get('p50_ticks', 0):>5} "
              f"{w.get('p99_ticks', 0):>5} "
              f"{w.get('p999_ticks', 0):>5}")
    print()
    print(f"latency (cumulative): {hdr['count']} samples, "
          f"p50 {hdr['p50_ticks']} / p99 {hdr['p99_ticks']} / "
          f"p999 {hdr['p999_ticks']} / max {hdr['max_ticks']} ticks "
          f"(rel err <= {hdr['rel_error_bound']:.4f})")
    line = (f"flight recorder: {flight['recorded']} events recorded, "
            f"{flight['dropped']} overwritten, "
            f"{flight['rings']} rings x {flight['capacity']}")
    kinds = {}
    for ring in flight.get("data", []):
        for event in ring.get("events", []):
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
    if kinds:
        retained = ", ".join(f"{kind}:{count}" for kind, count in
                             sorted(kinds.items(),
                                    key=lambda item: -item[1]))
        line += f"; retained: {retained}"
    print(line)


def main():
    if len(sys.argv) != 2 or sys.argv[1] in ("-h", "--help"):
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2 if len(sys.argv) != 2 else 0)
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot load {path}: {err}")

    expect(isinstance(doc, dict), "document must be a JSON object")
    schema = doc.get("schema")
    if schema == "tdp-stream-timeline":
        render(*parse_dump(doc))
    elif schema == "tdp-run-manifest":
        render(*parse_manifest(doc))
    else:
        fail(f"unknown schema {schema!r} (want tdp-stream-timeline "
             f"or tdp-run-manifest)")


if __name__ == "__main__":
    main()

/**
 * @file
 * Implementation of the System scheduler.
 */

#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/span_tracer.hh"
#include "obs/stats_registry.hh"

namespace tdp {

namespace {

/**
 * Quanta per event-dispatch span. One span per quantum would swamp
 * the trace (a 180 s run is 180k quanta); one per 1000 quanta is one
 * span per simulated second at the default 1 ms quantum.
 */
constexpr uint64_t spanBatchQuanta = 1000;

} // namespace

System::System(uint64_t master_seed, Tick quantum)
    : masterSeed_(master_seed), quantum_(quantum)
{
    if (quantum_ == 0)
        fatal("System quantum must be positive");
}

Rng
System::makeRng(const std::string &stream_name) const
{
    return Rng(masterSeed_, stream_name);
}

void
System::registerObject(SimObject *obj)
{
    const auto [it, inserted] =
        objectsByName_.emplace(obj->name(), obj);
    (void)it;
    if (!inserted) {
        fatal("System: duplicate object name '%s'", obj->name().c_str());
    }
    objects_.push_back(obj);
}

void
System::addTicked(Ticked *ticked, TickPhase phase)
{
    if (!ticked)
        panic("System::addTicked: null participant");
    tickeds_.push_back(
        TickedEntry{ticked, static_cast<int>(phase), tickeds_.size()});
    // Ordering is deferred to the next quantum so registering N
    // participants costs O(N), not O(N^2 log N).
    tickedsDirty_ = true;
}

void
System::sortTickeds()
{
    std::sort(tickeds_.begin(), tickeds_.end(),
              [](const TickedEntry &a, const TickedEntry &b) {
                  if (a.phase != b.phase)
                      return a.phase < b.phase;
                  return a.order < b.order;
              });
    tickedsDirty_ = false;
}

SimObject *
System::findObject(const std::string &name) const
{
    const auto it = objectsByName_.find(name);
    return it == objectsByName_.end() ? nullptr : it->second;
}

void
System::ensureStarted()
{
    if (started_)
        return;
    started_ = true;
    // startup() may construct further objects; iterate by index.
    for (size_t i = 0; i < objects_.size(); ++i)
        objects_[i]->startup();
    if (tickedsDirty_)
        sortTickeds();
}

void
System::executeQuantum(Tick start)
{
    // startup() (or a component mid-run) may have registered more
    // participants since the last quantum.
    if (tickedsDirty_)
        sortTickeds();
    for (const TickedEntry &entry : tickeds_)
        entry.ticked->tickUpdate(start, quantum_);
    ++quantaExecuted_;
}

void
System::runUntil(Tick until_tick)
{
    ensureStarted();

    // Event-dispatch batch spans: one per spanBatchQuanta quanta,
    // carrying the events processed in the batch. The per-quantum
    // cost with tracing off is the single enabled() check hoisted
    // out of the loop.
    obs::SpanTracer &tracer = obs::SpanTracer::global();
    const bool tracing = tracer.enabled();
    double batch_start_us = tracing ? tracer.nowUs() : 0.0;
    uint64_t batch_quanta = 0;
    uint64_t batch_events = events_.processedCount();

    while (nextQuantumStart_ + quantum_ <= until_tick) {
        const Tick start = nextQuantumStart_;
        // Fire events due at or before the quantum start (e.g. thread
        // launches, sampler reads) so they observe the pre-quantum
        // state, then advance the quantum.
        events_.runUntil(start);
        executeQuantum(start);
        nextQuantumStart_ = start + quantum_;
        if (tracing && ++batch_quanta == spanBatchQuanta) {
            const double now_us = tracer.nowUs();
            tracer.record("sim", "dispatch", batch_start_us,
                          now_us - batch_start_us, "events",
                          static_cast<double>(
                              events_.processedCount() -
                              batch_events));
            batch_start_us = now_us;
            batch_quanta = 0;
            batch_events = events_.processedCount();
        }
    }
    events_.runUntil(until_tick);
    if (tracing && batch_quanta > 0) {
        tracer.record("sim", "dispatch", batch_start_us,
                      tracer.nowUs() - batch_start_us, "events",
                      static_cast<double>(events_.processedCount() -
                                          batch_events));
    }
}

void
System::runFor(Seconds seconds)
{
    if (seconds < 0.0)
        fatal("System::runFor: negative duration %g", seconds);
    obs::TraceSpan span("sim", "runFor");
    span.arg("sim_seconds", seconds);
    runUntil(nextQuantumStart_ + secondsToTicks(seconds));
}

void
System::publishStats(obs::StatsRegistry &stats) const
{
    if (!stats.enabled())
        return;
    stats.addNamed("sim.quanta", quantaExecuted_);
    stats.addNamed("sim.events.processed", events_.processedCount());
    stats.addNamed("sim.events.lambda_slots_allocated",
                   events_.lambdaSlotsAllocated());
    stats.setNamed("sim.events.lambda_pool_size",
                   static_cast<double>(events_.lambdaPoolSize()));
    stats.addNamed("sim.objects", objects_.size());
    for (const SimObject *obj : objects_)
        obj->recordStats(stats);
}

} // namespace tdp

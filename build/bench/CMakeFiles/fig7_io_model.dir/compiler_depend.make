# Empty compiler generated dependencies file for fig7_io_model.
# This may be replaced when dependencies are built.

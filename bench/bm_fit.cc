/**
 * @file
 * Lane-batched fit benchmark: the fused normal-equations kernel
 * (fitOlsNormal) timed scalar vs SIMD across the paper's 12-workload
 * sweep, with the bit-identity contract asserted on every repetition.
 *
 * Protocol: simulate a short characterisation-style run of each
 * paper workload, build the memory-style per-input quadratic design
 * from its counter columns (tiled to a fixed row count so the kernel
 * - not the simulator - dominates), then fit every design once per
 * SIMD level per repetition. The scalar and SIMD paths implement the
 * same fixed 4-lane algorithm, so their FitResults must match to the
 * last bit; any mismatch fails the binary.
 *
 * Results are printed and written as BENCH_bm_fit.json (repetition
 * series; see bench_stats.hh). `fit_speedup` is CI-gated
 * (direction: higher), `bit_identical` is gated exact; raw seconds
 * are recorded but never gated (machine-dependent).
 *
 * Usage: bm_fit [--repetitions N] [--jobs N]
 */

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/bench_util.hh"
#include "common/logging.hh"
#include "cpu/perf_counters.hh"
#include "measure/trace.hh"
#include "simd/dispatch.hh"
#include "stats/regression.hh"
#include "workloads/suite.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;
using Clock = std::chrono::steady_clock;

/** Rows per workload design: enough that the fit dominates. */
constexpr size_t kRowsPerWorkload = 32768;

/**
 * Quadratic counter design over a trace's SoA columns ([x, x^2] per
 * event, the paper's memory-model feature shape), tiled to
 * kRowsPerWorkload rows so every workload contributes the same
 * amount of kernel work regardless of its trace length.
 */
class TiledQuadraticDesign : public DesignSource
{
  public:
    TiledQuadraticDesign(const SampleTrace &trace,
                         const std::vector<PerfEvent> &events)
        : response_(&trace.measuredColumn(Rail::Memory))
    {
        std::vector<const std::vector<double> *> inputs;
        for (const PerfEvent event : events)
            inputs.push_back(&trace.counterColumn(event));
        base_ = response_->size();
        if (base_ == 0)
            fatal("bm_fit: empty trace");
        k_ = inputs.size() * 2;

        // Materialise the dithered base tile once: row() must be
        // cheap so the benchmark measures the fit kernel, not the
        // row generator. Every column -- including each squared
        // column -- gets its own pseudo-random pattern, keeping the
        // design full-rank even for workloads where counters are
        // constant or mutually proportional (idle), which would
        // otherwise make the normal equations singular.
        tile_.resize(base_ * k_);
        for (size_t r = 0; r < base_; ++r) {
            for (size_t c = 0; c < k_; ++c) {
                const double raw = (*inputs[c % inputs.size()])[r];
                const double v =
                    c < inputs.size() ? raw : raw * raw;
                const uint32_t h =
                    (static_cast<uint32_t>(r) * 2654435761u) ^
                    (static_cast<uint32_t>(c) * 0x9e3779b9u);
                const double s =
                    static_cast<double>(h % 2048u) / 2048.0 - 0.5;
                tile_[r * k_ + c] =
                    v * (1.0 + 1e-3 * s) + 1e-6 * s;
            }
        }
    }

    size_t sampleCount() const override { return kRowsPerWorkload; }

    size_t regressorCount() const override { return k_; }

    void
    row(size_t i, double *out) const override
    {
        const double *src = tile_.data() + (i % base_) * k_;
        std::copy(src, src + k_, out);
    }

    double
    response(size_t i) const override
    {
        return (*response_)[i % base_];
    }

  private:
    std::vector<double> tile_;
    const std::vector<double> *response_;
    size_t base_ = 0;
    size_t k_ = 0;
};

/** Bitwise equality of two fits (coefficients, r2, rmse, n). */
bool
fitsBitIdentical(const FitResult &a, const FitResult &b)
{
    auto same = [](double x, double y) {
        return std::bit_cast<uint64_t>(x) == std::bit_cast<uint64_t>(y);
    };
    if (!same(a.intercept, b.intercept) || !same(a.r2, b.r2) ||
        !same(a.rmse, b.rmse) || a.sampleCount != b.sampleCount ||
        a.coefficients.size() != b.coefficients.size())
        return false;
    for (size_t i = 0; i < a.coefficients.size(); ++i)
        if (!same(a.coefficients[i], b.coefficients[i]))
            return false;
    return true;
}

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    const std::vector<std::string> workloads = paperWorkloadOrder();
    const std::vector<PerfEvent> events = {
        PerfEvent::Cycles,          PerfEvent::HaltedCycles,
        PerfEvent::FetchedUops,     PerfEvent::L3LoadMisses,
        PerfEvent::TlbMisses,       PerfEvent::DmaOtherAccesses,
        PerfEvent::BusTransactions, PerfEvent::PrefetchTransactions};

    // Short runs: the traces only seed realistic column data; the
    // tiling above sets the kernel workload size.
    std::vector<RunSpec> specs;
    for (const std::string &name : workloads) {
        RunSpec spec = characterizationRun(name);
        spec.duration = 40.0;
        spec.skip = 10.0;
        if (spec.instances > 4)
            spec.instances = 4;
        specs.push_back(spec);
    }
    std::fprintf(stderr, "bm_fit: simulating %zu workloads...\n",
                 specs.size());
    const std::vector<SampleTrace> traces = runTraces(specs);

    std::vector<TiledQuadraticDesign> designs;
    designs.reserve(traces.size());
    for (const SampleTrace &trace : traces)
        designs.emplace_back(trace, events);

    const SimdLevel simd = detectedSimdLevel();
    const int reps = benchRepetitions();

    // Warm-up: one untimed sweep per level primes caches and the
    // lazily-built column mirrors.
    std::vector<FitResult> scalar_fits, simd_fits;
    for (const TiledQuadraticDesign &design : designs) {
        scalar_fits.push_back(
            fitOlsNormalAt(SimdLevel::Scalar, design));
        simd_fits.push_back(fitOlsNormalAt(simd, design));
    }

    std::vector<double> scalar_secs, simd_secs, speedups, identical;
    for (int rep = 0; rep < reps; ++rep) {
        const Clock::time_point t0 = Clock::now();
        for (size_t w = 0; w < designs.size(); ++w)
            scalar_fits[w] =
                fitOlsNormalAt(SimdLevel::Scalar, designs[w]);
        const double scalar_s = secondsSince(t0);

        const Clock::time_point t1 = Clock::now();
        for (size_t w = 0; w < designs.size(); ++w)
            simd_fits[w] = fitOlsNormalAt(simd, designs[w]);
        const double simd_s = secondsSince(t1);

        bool all_identical = true;
        for (size_t w = 0; w < designs.size(); ++w)
            all_identical = all_identical &&
                            fitsBitIdentical(scalar_fits[w],
                                             simd_fits[w]);

        scalar_secs.push_back(scalar_s);
        simd_secs.push_back(simd_s);
        speedups.push_back(simd_s > 0.0 ? scalar_s / simd_s : 0.0);
        identical.push_back(all_identical ? 1.0 : 0.0);
    }

    const double total_rows = static_cast<double>(kRowsPerWorkload) *
                              static_cast<double>(designs.size());
    const double rows_per_sec =
        seriesMean(simd_secs) > 0.0
            ? total_rows / seriesMean(simd_secs)
            : 0.0;
    const bool all_identical =
        seriesMean(identical) == 1.0 && !identical.empty();

    std::printf("workloads           : %zu x %zu rows, k=%zu\n",
                designs.size(), kRowsPerWorkload,
                designs.empty() ? 0 : designs[0].regressorCount());
    std::printf("simd level          : %s (%zu lanes)\n",
                simdLevelName(simd), kSimdLanes);
    std::printf("repetitions         : %d\n", reps);
    std::printf("scalar sweep        : %.6f s (mean)\n",
                seriesMean(scalar_secs));
    std::printf("simd sweep          : %.6f s (mean)\n",
                seriesMean(simd_secs));
    std::printf("speedup             : %.2fx (mean), %.2fx (min)\n",
                seriesMean(speedups),
                *std::min_element(speedups.begin(), speedups.end()));
    std::printf("rows/s (simd)       : %.3g\n", rows_per_sec);
    std::printf("bit-identical       : %s\n",
                all_identical ? "yes" : "NO - BUG");

    writeBenchSeries(
        "bm_fit",
        {{"scalar_seconds", scalar_secs, "s", false, "lower"},
         {"simd_seconds", simd_secs, "s", false, "lower"},
         {"fit_speedup", speedups, "x", true, "higher"},
         {"rows_per_second_simd", {rows_per_sec}, "rows/s", false,
          "higher"},
         {"bit_identical", identical, "", true, "exact"},
         {"simd_level", {static_cast<double>(static_cast<int>(simd))},
          "", false, "higher"}});

    if (!all_identical) {
        std::fprintf(stderr,
                     "bm_fit: scalar and %s fits differ - the 4-lane "
                     "contract is broken\n",
                     simdLevelName(simd));
        return 1;
    }
    return 0;
}

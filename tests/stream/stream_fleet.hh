/**
 * @file
 * Test alias for the shared synthetic streaming fleet
 * (src/stream/synthetic.hh) - the bench sweep uses the same
 * generator, so tests and bench exercise identical physics.
 */

#ifndef TDP_TESTS_STREAM_STREAM_FLEET_HH
#define TDP_TESTS_STREAM_STREAM_FLEET_HH

#include "stream/synthetic.hh"

namespace tdp {
namespace stream {
namespace testutil {

constexpr size_t
idx(Rail r)
{
    return static_cast<size_t>(r);
}

using synthetic::Fleet;
using synthetic::syntheticSample;
using synthetic::trainedEstimator;
using synthetic::trainingTrace;

} // namespace testutil
} // namespace stream
} // namespace tdp

#endif // TDP_TESTS_STREAM_STREAM_FLEET_HH

/**
 * @file
 * Implementation of the stream telemetry layer.
 */

#include "stream/telemetry.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "obs/json_writer.hh"
#include "obs/run_manifest.hh"

namespace tdp {
namespace stream {

namespace {

/** Severity rank for "worst state in this window" roll-ups. */
int
driftSeverity(DriftState state)
{
    switch (state) {
    case DriftState::Healthy:
        return 0;
    case DriftState::Probation:
        return 1;
    case DriftState::Degraded:
        return 2;
    }
    return 2;
}

uint64_t
occupancyMeanPermille(const TimelineGauges &gauges)
{
    if (gauges.shards == 0)
        return 0;
    return gauges.occupancyTotal * 1000 / gauges.shards;
}

double
occupancyMean(const TimelineGauges &gauges)
{
    return static_cast<double>(occupancyMeanPermille(gauges)) / 1000.0;
}

} // namespace

const char *
flightKindName(uint16_t kind)
{
    switch (static_cast<FlightKind>(kind)) {
    case FlightKind::Verdict:
        return "verdict";
    case FlightKind::Shed:
        return "shed";
    case FlightKind::Overflow:
        return "overflow";
    case FlightKind::Quarantine:
        return "quarantine";
    case FlightKind::DriftEngaged:
        return "drift_engaged";
    case FlightKind::DriftRecovered:
        return "drift_recovered";
    case FlightKind::DriftRelapsed:
        return "drift_relapsed";
    case FlightKind::FallbackEngaged:
        return "fallback_engaged";
    case FlightKind::FallbackCleared:
        return "fallback_cleared";
    case FlightKind::Refit:
        return "refit";
    case FlightKind::RefitRejected:
        return "refit_rejected";
    case FlightKind::Checkpoint:
        return "checkpoint";
    case FlightKind::CheckpointFailed:
        return "checkpoint_failed";
    case FlightKind::Restore:
        return "restore";
    }
    return "unknown";
}

DriftState
worstDriftState(const TimelineGauges &gauges)
{
    DriftState worst = DriftState::Healthy;
    for (uint8_t raw : gauges.railStates) {
        const DriftState state = static_cast<DriftState>(raw);
        if (driftSeverity(state) > driftSeverity(worst))
            worst = state;
    }
    return worst;
}

StreamTelemetry::StreamTelemetry(const TelemetryConfig &cfg, int shards)
    : cfg_(cfg), timeline_(cfg.timelineCapacity),
      hdrTotal_(cfg.hdrBits), hdrWindow_(cfg.hdrBits),
      flight_(static_cast<size_t>(shards) + 1, cfg.flightCapacity)
{
    if (cfg_.windowTicks == 0)
        fatal("StreamTelemetry: windowTicks must be positive");
    if (shards <= 0)
        fatal("StreamTelemetry: shards (%d) must be positive", shards);
}

void
StreamTelemetry::sealWindow(uint64_t tick,
                            const TimelineCounters &cumulative,
                            const TimelineGauges &gauges)
{
    TimelineWindow window;
    // Zero the padding too: sealed windows are digested/memcmp'd
    // bytewise when determinism across worker counts is asserted.
    std::memset(static_cast<void *>(&window), 0, sizeof window);
    window.tick = tick;
    TimelineCounters &d = window.delta;
    d.offered = cumulative.offered - last_.offered;
    d.admitted = cumulative.admitted - last_.admitted;
    d.shed = cumulative.shed - last_.shed;
    d.overflow = cumulative.overflow - last_.overflow;
    d.drained = cumulative.drained - last_.drained;
    d.accepted = cumulative.accepted - last_.accepted;
    d.invalid = cumulative.invalid - last_.invalid;
    d.quarantines = cumulative.quarantines - last_.quarantines;
    d.evicted = cumulative.evicted - last_.evicted;
    d.refits = cumulative.refits - last_.refits;
    d.fullQrRefits = cumulative.fullQrRefits - last_.fullQrRefits;
    d.degradedPublishes =
        cumulative.degradedPublishes - last_.degradedPublishes;
    d.unestimable = cumulative.unestimable - last_.unestimable;
    d.driftEngaged = cumulative.driftEngaged - last_.driftEngaged;
    d.driftRecovered = cumulative.driftRecovered - last_.driftRecovered;
    d.driftRelapses = cumulative.driftRelapses - last_.driftRelapses;
    d.checkpoints = cumulative.checkpoints - last_.checkpoints;
    last_ = cumulative;

    window.gauges = gauges;
    window.latencyCount = hdrWindow_.count();
    window.latencyMaxTicks = hdrWindow_.max();
    window.p50Ticks = hdrWindow_.quantile(0.50);
    window.p99Ticks = hdrWindow_.quantile(0.99);
    window.p999Ticks = hdrWindow_.quantile(0.999);
    hdrWindow_.reset();
    timeline_.push(window);
}

void
StreamTelemetry::writeTimelineJson(std::ostream &os,
                                   const std::string &tool,
                                   const std::string &reason) const
{
    obs::JsonWriter json(os);
    json.beginObject();
    json.keyValue("schema", "tdp-stream-timeline");
    json.keyValue("version", uint64_t(1));
    json.keyValue("tool", tool);
    json.keyValue("reason", reason);
    json.keyValue("window_ticks", cfg_.windowTicks);
    json.keyValue("timeline_enabled", cfg_.timeline);

    json.key("timeline");
    json.beginObject();
    json.keyValue("capacity", static_cast<uint64_t>(timeline_.capacity()));
    json.keyValue("recorded", timeline_.recorded());
    json.keyValue("dropped", timeline_.dropped());
    json.key("windows");
    json.beginArray();
    timeline_.forEach([&](const TimelineWindow &w) {
        json.beginObject();
        json.keyValue("tick", w.tick);
        json.keyValue("offered", w.delta.offered);
        json.keyValue("admitted", w.delta.admitted);
        json.keyValue("shed", w.delta.shed);
        json.keyValue("overflow", w.delta.overflow);
        json.keyValue("drained", w.delta.drained);
        json.keyValue("accepted", w.delta.accepted);
        json.keyValue("invalid", w.delta.invalid);
        json.keyValue("quarantines", w.delta.quarantines);
        json.keyValue("evicted", w.delta.evicted);
        json.keyValue("refits", w.delta.refits);
        json.keyValue("full_qr_refits", w.delta.fullQrRefits);
        json.keyValue("degraded_publishes", w.delta.degradedPublishes);
        json.keyValue("unestimable", w.delta.unestimable);
        json.keyValue("drift_engaged", w.delta.driftEngaged);
        json.keyValue("drift_recovered", w.delta.driftRecovered);
        json.keyValue("drift_relapses", w.delta.driftRelapses);
        json.keyValue("checkpoints", w.delta.checkpoints);
        json.keyValue("shards", static_cast<uint64_t>(w.gauges.shards));
        json.keyValue("occupancy_max", w.gauges.occupancyMax);
        json.keyValue("occupancy_mean", occupancyMean(w.gauges));
        json.keyValue("drift_state",
                      driftStateName(worstDriftState(w.gauges)));
        json.key("rail_states");
        json.beginArray();
        for (uint8_t raw : w.gauges.railStates)
            json.value(driftStateName(static_cast<DriftState>(raw)));
        json.endArray();
        json.keyValue("latency_count", w.latencyCount);
        json.keyValue("latency_max_ticks", w.latencyMaxTicks);
        json.keyValue("p50_ticks", w.p50Ticks);
        json.keyValue("p99_ticks", w.p99Ticks);
        json.keyValue("p999_ticks", w.p999Ticks);
        json.endObject();
    });
    json.endArray();
    json.endObject();

    json.key("latency_hdr");
    json.beginObject();
    json.keyValue("count", hdrTotal_.count());
    json.keyValue("max_ticks", hdrTotal_.max());
    json.keyValue("p50_ticks", hdrTotal_.quantile(0.50));
    json.keyValue("p99_ticks", hdrTotal_.quantile(0.99));
    json.keyValue("p999_ticks", hdrTotal_.quantile(0.999));
    json.keyValue("sub_bucket_bits",
                  static_cast<uint64_t>(hdrTotal_.subBucketBits()));
    json.keyValue("rel_error_bound", hdrTotal_.relativeErrorBound());
    json.keyValue("buckets_used",
                  static_cast<uint64_t>(hdrTotal_.bucketsUsed()));
    json.endObject();

    json.key("flight");
    json.beginObject();
    json.keyValue("rings", static_cast<uint64_t>(flight_.rings()));
    json.keyValue("capacity", static_cast<uint64_t>(flight_.capacity()));
    json.keyValue("recorded", flight_.totalRecorded());
    json.keyValue("dropped", flight_.totalDropped());
    json.key("data");
    flight_.writeJson(json, flightKindName);
    json.endObject();

    json.endObject();
    os << '\n';
}

bool
StreamTelemetry::writeFile(const std::string &path,
                           const std::string &tool,
                           const std::string &reason) const
{
    std::string error;
    const bool ok = writeFileAtomic(
        path,
        [&](std::ostream &os) {
            writeTimelineJson(os, tool, reason);
            return os.good();
        },
        &error);
    if (!ok)
        warn("stream telemetry: writing %s failed: %s", path.c_str(),
             error.c_str());
    return ok;
}

void
StreamTelemetry::addManifestSections(obs::RunManifest &manifest) const
{
    const std::string timeline = "stream.timeline";
    manifest.addSectionEntry(timeline, "window_ticks", cfg_.windowTicks);
    manifest.addSectionEntry(timeline, "capacity",
                             static_cast<uint64_t>(timeline_.capacity()));
    manifest.addSectionEntry(
        timeline, "windows", static_cast<uint64_t>(timeline_.size()));
    manifest.addSectionEntry(timeline, "recorded", timeline_.recorded());
    manifest.addSectionEntry(timeline, "dropped", timeline_.dropped());
    size_t index = 0;
    timeline_.forEach([&](const TimelineWindow &w) {
        const std::string p = formatString("w%zu.", index++);
        manifest.addSectionEntry(timeline, p + "tick", w.tick);
        manifest.addSectionEntry(timeline, p + "offered",
                                 w.delta.offered);
        manifest.addSectionEntry(timeline, p + "admitted",
                                 w.delta.admitted);
        manifest.addSectionEntry(timeline, p + "shed", w.delta.shed);
        manifest.addSectionEntry(timeline, p + "overflow",
                                 w.delta.overflow);
        manifest.addSectionEntry(timeline, p + "accepted",
                                 w.delta.accepted);
        manifest.addSectionEntry(timeline, p + "invalid",
                                 w.delta.invalid);
        manifest.addSectionEntry(timeline, p + "quarantines",
                                 w.delta.quarantines);
        manifest.addSectionEntry(timeline, p + "evicted",
                                 w.delta.evicted);
        manifest.addSectionEntry(timeline, p + "refits",
                                 w.delta.refits);
        manifest.addSectionEntry(timeline, p + "drift_engaged",
                                 w.delta.driftEngaged);
        manifest.addSectionEntry(timeline, p + "drift_recovered",
                                 w.delta.driftRecovered);
        manifest.addSectionEntry(timeline, p + "checkpoints",
                                 w.delta.checkpoints);
        manifest.addSectionEntry(timeline, p + "occupancy_max",
                                 w.gauges.occupancyMax);
        manifest.addSectionEntry(timeline, p + "occupancy_mean",
                                 occupancyMean(w.gauges));
        manifest.addSectionEntry(
            timeline, p + "drift_state",
            std::string(driftStateName(worstDriftState(w.gauges))));
        manifest.addSectionEntry(timeline, p + "latency_count",
                                 w.latencyCount);
        manifest.addSectionEntry(timeline, p + "latency_max_ticks",
                                 w.latencyMaxTicks);
        manifest.addSectionEntry(timeline, p + "p50_ticks", w.p50Ticks);
        manifest.addSectionEntry(timeline, p + "p99_ticks", w.p99Ticks);
        manifest.addSectionEntry(timeline, p + "p999_ticks",
                                 w.p999Ticks);
    });

    const std::string hdr = "stream.latency_hdr";
    manifest.addSectionEntry(hdr, "count", hdrTotal_.count());
    manifest.addSectionEntry(hdr, "max_ticks", hdrTotal_.max());
    manifest.addSectionEntry(hdr, "p50_ticks", hdrTotal_.quantile(0.50));
    manifest.addSectionEntry(hdr, "p99_ticks", hdrTotal_.quantile(0.99));
    manifest.addSectionEntry(hdr, "p999_ticks",
                             hdrTotal_.quantile(0.999));
    manifest.addSectionEntry(
        hdr, "sub_bucket_bits",
        static_cast<uint64_t>(hdrTotal_.subBucketBits()));
    manifest.addSectionEntry(hdr, "rel_error_bound",
                             hdrTotal_.relativeErrorBound());
    manifest.addSectionEntry(
        hdr, "buckets_used",
        static_cast<uint64_t>(hdrTotal_.bucketsUsed()));

    const std::string flight = "stream.flight";
    manifest.addSectionEntry(flight, "rings",
                             static_cast<uint64_t>(flight_.rings()));
    manifest.addSectionEntry(flight, "capacity",
                             static_cast<uint64_t>(flight_.capacity()));
    manifest.addSectionEntry(flight, "recorded", flight_.totalRecorded());
    manifest.addSectionEntry(flight, "dropped", flight_.totalDropped());
}

} // namespace stream
} // namespace tdp

/**
 * @file
 * Implementation of the parallel experiment engine.
 */

#include "exp/experiment_pool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "obs/span_tracer.hh"
#include "obs/stats_registry.hh"
#include "resilience/shutdown.hh"

namespace tdp {

ExperimentPool::ExperimentPool(int jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs())
{
}

int
ExperimentPool::defaultJobs()
{
    if (const char *env = std::getenv("TDP_JOBS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
        warn("TDP_JOBS='%s' is not a positive integer; ignoring", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
ExperimentPool::forEach(size_t n,
                        const std::function<void(size_t)> &fn) const
{
    if (n == 0)
        return;

    // Telemetry: per-task spans and a task-duration histogram. Ids
    // are resolved once per batch (cold), updates land in the
    // worker's own lock-free shard; with both sinks disabled the
    // per-task cost is two relaxed loads.
    obs::StatsRegistry &stats = obs::StatsRegistry::global();
    const bool collecting = stats.enabled();
    obs::StatId tasks_id, task_us_id;
    if (collecting) {
        stats.addNamed("exp.pool.batches", 1);
        stats.setNamed("exp.pool.jobs", static_cast<double>(jobs_));
        tasks_id = stats.counter("exp.pool.tasks");
        task_us_id = stats.histogram("exp.pool.task_us");
    }
    const bool tracing = obs::SpanTracer::global().enabled();
    auto invoke = [&](size_t i) {
        obs::TraceSpan span(
            "exp", tracing ? formatString("task:%zu", i)
                           : std::string());
        if (!collecting) {
            fn(i);
            return;
        }
        const auto t0 = std::chrono::steady_clock::now();
        fn(i);
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        stats.add(tasks_id, 1);
        stats.observe(task_us_id, static_cast<uint64_t>(us));
    };

    const size_t workers =
        std::min(static_cast<size_t>(jobs_), n);
    if (workers <= 1) {
        // Reference serial path: same job order, same thread.
        for (size_t i = 0; i < n; ++i)
            invoke(i);
        return;
    }

    std::atomic<size_t> cursor{0};
    std::mutex failure_mutex;
    size_t first_failed = n;
    std::exception_ptr first_error;

    auto worker = [&] {
        while (true) {
            const size_t i = cursor.fetch_add(1);
            if (i >= n)
                return;
            try {
                invoke(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(failure_mutex);
                if (i < first_failed) {
                    first_failed = i;
                    first_error = std::current_exception();
                }
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers - 1);
    for (size_t w = 1; w < workers; ++w)
        threads.emplace_back(worker);
    worker();
    for (std::thread &t : threads)
        t.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

ExperimentPool::BatchReport
ExperimentPool::forEachResilient(
    size_t n, const std::function<void(size_t, TaskContext &)> &fn,
    const TaskOptions &options) const
{
    options.retry.validate();
    BatchReport report;
    if (n == 0)
        return report;

    resilience::TaskWatchdog watchdog;
    std::atomic<uint64_t> attempts{0}, retries{0}, timeouts{0},
        completed{0};
    std::mutex quarantine_mutex;
    std::vector<std::pair<size_t, std::string>> quarantined;

    auto emit = [&](TaskEvent::Kind kind, size_t task, int attempt,
                    std::string detail) {
        if (!options.observer)
            return;
        TaskEvent event;
        event.kind = kind;
        event.task = task;
        event.attempt = attempt;
        event.detail = std::move(detail);
        options.observer(event);
    };

    auto runTask = [&](size_t i) {
        const uint64_t key = options.taskKey ? options.taskKey(i)
                                             : static_cast<uint64_t>(i);
        std::string last_error = "unknown failure";
        for (int attempt = 1; attempt <= options.retry.maxAttempts;
             ++attempt) {
            attempts.fetch_add(1, std::memory_order_relaxed);
            if (attempt > 1)
                retries.fetch_add(1, std::memory_order_relaxed);
            emit(TaskEvent::Kind::Started, i, attempt, "");

            resilience::CancelToken token;
            TaskContext ctx;
            ctx.attempt = attempt;
            ctx.cancel = &token;
            auto lease = watchdog.watch(options.timeout, &token);
            try {
                fn(i, ctx);
                const bool overran = lease.timedOut();
                if (overran) {
                    // The attempt finished anyway; accept the result
                    // (threads cannot be killed) but keep the
                    // overrun visible in the accounting.
                    timeouts.fetch_add(1, std::memory_order_relaxed);
                }
                completed.fetch_add(1, std::memory_order_relaxed);
                emit(TaskEvent::Kind::Succeeded, i, attempt,
                     overran ? "past-deadline" : "");
                return;
            } catch (const std::exception &err) {
                const bool timed_out = lease.timedOut();
                if (timed_out)
                    timeouts.fetch_add(1, std::memory_order_relaxed);
                last_error = err.what();
                emit(timed_out ? TaskEvent::Kind::TimedOut
                               : TaskEvent::Kind::Failed,
                     i, attempt, last_error);
            }

            if (attempt < options.retry.maxAttempts) {
                const Seconds delay =
                    options.retry.delayFor(attempt, key);
                if (delay > 0.0 && !resilience::shutdownRequested())
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(
                            static_cast<int64_t>(delay * 1e6)));
            }
        }
        {
            std::lock_guard<std::mutex> lock(quarantine_mutex);
            quarantined.emplace_back(i, last_error);
        }
        emit(TaskEvent::Kind::Quarantined, i,
             options.retry.maxAttempts, last_error);
    };

    std::atomic<size_t> cursor{0};
    std::atomic<size_t> claimed{0};
    auto worker = [&] {
        while (!resilience::shutdownRequested()) {
            const size_t i = cursor.fetch_add(1);
            if (i >= n)
                return;
            claimed.fetch_add(1, std::memory_order_relaxed);
            runTask(i);
        }
    };

    const size_t workers = std::min(static_cast<size_t>(jobs_), n);
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(workers - 1);
        for (size_t w = 1; w < workers; ++w)
            threads.emplace_back(worker);
        worker();
        for (std::thread &t : threads)
            t.join();
    }

    report.attempts = attempts.load();
    report.retries = retries.load();
    report.timeouts = timeouts.load();
    report.completed = completed.load();
    report.aborted = n - claimed.load();
    report.shutdownDrained = resilience::shutdownRequested();
    std::sort(quarantined.begin(), quarantined.end());
    for (auto &[task, reason] : quarantined) {
        report.quarantined.push_back(task);
        report.quarantineReasons.push_back(std::move(reason));
    }
    return report;
}

} // namespace tdp

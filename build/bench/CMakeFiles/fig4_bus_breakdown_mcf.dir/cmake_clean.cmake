file(REMOVE_RECURSE
  "CMakeFiles/fig4_bus_breakdown_mcf.dir/fig4_bus_breakdown_mcf.cc.o"
  "CMakeFiles/fig4_bus_breakdown_mcf.dir/fig4_bus_breakdown_mcf.cc.o.d"
  "fig4_bus_breakdown_mcf"
  "fig4_bus_breakdown_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bus_breakdown_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Lane-batched kernels behind the fused normal-equations OLS fit.
 *
 * fitOlsNormal() processes rows in groups of kSimdLanes (4): lane l
 * accumulates the rows congruent to l mod 4 within the grouped
 * prefix, the four partial accumulators are reduced pairwise
 * (((l0+l1)+l2)+l3), and the n % 4 trailing rows are folded in
 * scalar after the reduction. That 4-lane algorithm -- not the
 * hardware width -- is the numerical definition: the scalar level
 * keeps four explicit accumulators, SSE2 uses two 2-wide registers,
 * AVX2 one 4-wide register, and all three produce bitwise-identical
 * fits. FMA is never used (mul-then-add everywhere) and the TU is
 * compiled with contraction off so the compiler cannot fuse one
 * level differently from another.
 *
 * Data is staged in lane-transposed blocks (`LaneBlock`): for each
 * group of four rows, the four values of regressor column c sit in
 * four consecutive doubles. This is the SoA column layout of
 * SampleTrace::columns() extended one level, so that four samples --
 * or four experiments' worth of rows appended back to back -- ride
 * one register.
 */

#ifndef TDP_STATS_LANE_FIT_HH
#define TDP_STATS_LANE_FIT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/dispatch.hh"

namespace tdp {
namespace lanefit {

/**
 * Lane-transposed staging block: `groups` row-groups of `k`
 * regressors, laid out as z[(g * k + c) * 4 + lane], plus the four
 * responses per group at y[g * 4 + lane].
 */
struct LaneBlock
{
    size_t k = 0;       ///< regressors per row
    size_t groups = 0;  ///< staged row-groups (4 rows each)
    std::vector<double> z; ///< groups * k * kSimdLanes values
    std::vector<double> y; ///< groups * kSimdLanes responses

    /** Reserve capacity for `max_groups` groups of `k` regressors. */
    void
    reset(size_t k_, size_t max_groups)
    {
        k = k_;
        groups = 0;
        z.resize(max_groups * k_ * kSimdLanes);
        y.resize(max_groups * kSimdLanes);
    }

    /** Stage one row into group `g`, lane `lane`. */
    void
    stage(size_t g, size_t lane, const double *row, double response)
    {
        for (size_t c = 0; c < k; ++c)
            z[(g * k + c) * kSimdLanes + lane] = row[c];
        y[g * kSimdLanes + lane] = response;
    }
};

/**
 * Streaming per-column mean/variance state (Welford), vectorized
 * across columns. Column c's update sequence is the reciprocal form
 * of RunningStats::add() (mean += delta * (1/n), with one shared 1/n
 * per row), identical at every dispatch level by construction.
 */
struct ColumnStats
{
    uint64_t n = 0;
    std::vector<double> mean;
    std::vector<double> m2;

    void
    reset(size_t k)
    {
        n = 0;
        mean.assign(k, 0.0);
        m2.assign(k, 0.0);
    }
};

/** Fold `nrows` row-major rows of `k` columns into `stats`. */
void colStatsBlock(SimdLevel level, const double *rows, size_t nrows,
                   size_t k, ColumnStats &stats);

/**
 * Lane-transpose `groups * kSimdLanes` row-major rows and their
 * responses into `block`, replacing its contents. Pure data
 * movement -- every level produces the same block; the wide levels
 * just move 2 or 4 values per instruction (2x2 / 4x4 in-register
 * transposes).
 */
void stageBlock(SimdLevel level, const double *rows, const double *y,
                size_t groups, size_t k, LaneBlock &block);

/**
 * Index of the first non-finite value in values[0..count), or
 * SIZE_MAX when all are finite. The accept/reject set (NaN, +/-Inf)
 * is exact at every level; the wide levels scan 2 or 4 values per
 * instruction and rescan in scalar only to report the first offender
 * in order.
 */
size_t firstNonFinite(SimdLevel level, const double *values,
                      size_t count);

/**
 * Standardise a staged block in place:
 * z = (z - shift[c]) * inv_scale[c]. The caller precomputes the
 * reciprocals (k divides per fit, not per element); every level
 * multiplies by the same value, so level-identity is preserved.
 */
void standardizeBlock(SimdLevel level, LaneBlock &block,
                      const double *shift, const double *inv_scale);

/**
 * Accumulate the upper-triangle Gram lanes and moment lanes of a
 * standardised block. `gram_lanes` holds (k+1)^2 entries of 4 lanes
 * each (row-major over the implicit intercept-extended design);
 * `moment_lanes` holds (k+1) entries of 4 lanes.
 */
void accumulateBlock(SimdLevel level, const LaneBlock &block,
                     double *gram_lanes, double *moment_lanes);

/**
 * Accumulate residual and total sum-of-squares lanes of a raw
 * (unstandardised) block against a fitted model:
 * ss_lanes[0..3] += (y - pred)^2, ss_lanes[4..7] += (y - ymean)^2,
 * with pred = intercept + sum_c coef[c] * x[c] in column order.
 */
void goodnessBlock(SimdLevel level, const LaneBlock &block,
                   double intercept, const double *coef, double ymean,
                   double *ss_lanes);

/** Pairwise lane reduction: ((l0 + l1) + l2) + l3. */
double reduceLanes(const double *lanes);

} // namespace lanefit
} // namespace tdp

#endif // TDP_STATS_LANE_FIT_HH

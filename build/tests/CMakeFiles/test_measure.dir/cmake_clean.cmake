file(REMOVE_RECURSE
  "CMakeFiles/test_measure.dir/measure/test_measurement_pipeline.cc.o"
  "CMakeFiles/test_measure.dir/measure/test_measurement_pipeline.cc.o.d"
  "CMakeFiles/test_measure.dir/measure/test_rail.cc.o"
  "CMakeFiles/test_measure.dir/measure/test_rail.cc.o.d"
  "CMakeFiles/test_measure.dir/measure/test_trace_csv.cc.o"
  "CMakeFiles/test_measure.dir/measure/test_trace_csv.cc.o.d"
  "test_measure"
  "test_measure.pdb"
  "test_measure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

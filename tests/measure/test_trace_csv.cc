/**
 * @file
 * Tests for the trace CSV round trip (offline analysis path).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "measure/trace.hh"

namespace tdp {
namespace {

AlignedSample
sample(double time, double cpu_watts, double uops_total)
{
    AlignedSample s;
    s.time = time;
    s.interval = 1.0002;
    s.perCpu.resize(4);
    for (CounterSnapshot &snap : s.perCpu) {
        snap[PerfEvent::Cycles] = 2.8e9;
        snap[PerfEvent::FetchedUops] = uops_total / 4.0;
        snap[PerfEvent::BusTransactions] = 1e6;
    }
    s.osInterruptsTotal = 4000.0;
    s.osDiskInterrupts = 120.0;
    s.osDeviceInterrupts = 150.0;
    s.measuredWatts[static_cast<size_t>(Rail::Cpu)] = cpu_watts;
    s.measuredWatts[static_cast<size_t>(Rail::Chipset)] = 19.9;
    return s;
}

TEST(TraceCsv, RoundTripPreservesTotals)
{
    SampleTrace original;
    original.add(sample(1.0, 160.25, 8.4e9));
    original.add(sample(2.0, 42.5, 1.1e9));

    std::stringstream buffer;
    original.writeCsv(buffer);
    const SampleTrace restored = SampleTrace::readCsv(buffer, 4);

    ASSERT_EQ(restored.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(restored[i].time, original[i].time, 1e-3);
        EXPECT_NEAR(restored[i].interval, original[i].interval, 1e-5);
        EXPECT_NEAR(restored[i].totalCount(PerfEvent::FetchedUops),
                    original[i].totalCount(PerfEvent::FetchedUops),
                    1.0);
        EXPECT_NEAR(restored[i].measured(Rail::Cpu),
                    original[i].measured(Rail::Cpu), 1e-3);
        EXPECT_NEAR(restored[i].osDiskInterrupts,
                    original[i].osDiskInterrupts, 0.1);
        EXPECT_EQ(restored[i].perCpu.size(), 4u);
    }
}

TEST(TraceCsv, RoundTripWithDifferentCpuCount)
{
    SampleTrace original;
    original.add(sample(1.0, 80.0, 2e9));
    std::stringstream buffer;
    original.writeCsv(buffer);
    const SampleTrace restored = SampleTrace::readCsv(buffer, 2);
    ASSERT_EQ(restored[0].perCpu.size(), 2u);
    // Totals are preserved regardless of how the counts are spread.
    EXPECT_NEAR(restored[0].totalCount(PerfEvent::FetchedUops), 2e9,
                1.0);
}

TEST(TraceCsv, EmptyTraceRoundTrips)
{
    SampleTrace original;
    std::stringstream buffer;
    original.writeCsv(buffer);
    const SampleTrace restored = SampleTrace::readCsv(buffer);
    EXPECT_TRUE(restored.empty());
}

TEST(TraceCsv, MalformedInputsFatal)
{
    {
        std::istringstream bad("not,a,header\n1,2,3\n");
        EXPECT_THROW(SampleTrace::readCsv(bad), FatalError);
    }
    {
        std::stringstream buffer;
        SampleTrace t;
        t.add(sample(1.0, 80.0, 2e9));
        t.writeCsv(buffer);
        std::string text = buffer.str();
        text += "1,2,3\n"; // truncated row
        std::istringstream bad(text);
        EXPECT_THROW(SampleTrace::readCsv(bad), FatalError);
    }
    {
        std::istringstream bad("");
        EXPECT_NO_THROW(SampleTrace::readCsv(bad));
    }
    EXPECT_THROW(
        [] {
            std::istringstream empty("");
            SampleTrace::readCsv(empty, 0);
        }(),
        FatalError);
}

} // namespace
} // namespace tdp

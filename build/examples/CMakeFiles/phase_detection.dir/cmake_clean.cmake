file(REMOVE_RECURSE
  "CMakeFiles/phase_detection.dir/phase_detection.cpp.o"
  "CMakeFiles/phase_detection.dir/phase_detection.cpp.o.d"
  "phase_detection"
  "phase_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tdp_disk.dir/disk_controller.cc.o"
  "CMakeFiles/tdp_disk.dir/disk_controller.cc.o.d"
  "CMakeFiles/tdp_disk.dir/scsi_disk.cc.o"
  "CMakeFiles/tdp_disk.dir/scsi_disk.cc.o.d"
  "libtdp_disk.a"
  "libtdp_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

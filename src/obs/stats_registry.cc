/**
 * @file
 * Implementation of the sharded stats registry.
 */

#include "obs/stats_registry.hh"

#include <cstring>

#include "common/logging.hh"
#include "obs/json_writer.hh"

namespace tdp {
namespace obs {

namespace {

/**
 * Registries are identified by a process-unique epoch so a thread's
 * cached (registry, shard) pairs can never alias a later registry
 * constructed at the same address.
 */
std::atomic<uint64_t> nextRegistryEpoch{1};

/** Per-registry epoch, assigned lazily on first shard lookup. */
struct ShardCacheEntry
{
    uint64_t epoch;
    void *shard;
};

thread_local std::vector<ShardCacheEntry> shardCache;

const char *
kindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter: return "counter";
      case StatKind::Gauge: return "gauge";
      case StatKind::Histogram: return "histogram";
    }
    return "?";
}

uint64_t
doubleBits(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace

StatsRegistry &
StatsRegistry::global()
{
    // Leaked on purpose: worker threads may touch their shards up to
    // process exit, after static destructors would have run.
    static StatsRegistry *registry = new StatsRegistry();
    return *registry;
}

StatId
StatsRegistry::registerStat(const std::string &path, StatKind kind)
{
    if (path.empty())
        fatal("StatsRegistry: empty stat path");
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = defsByPath_.find(path);
    if (it != defsByPath_.end()) {
        const Def &def = defs_[it->second];
        if (def.kind != kind)
            fatal("StatsRegistry: '%s' already registered as a %s, "
                  "cannot re-register as a %s",
                  path.c_str(), kindName(def.kind), kindName(kind));
        return StatId{kind, def.index};
    }
    const auto kind_slot = static_cast<size_t>(kind);
    const uint32_t index = nextIndex_[kind_slot];
    if (index >= chunkSize * maxChunks)
        fatal("StatsRegistry: too many %s stats (max %u)",
              kindName(kind), chunkSize * maxChunks);
    ++nextIndex_[kind_slot];
    defs_.push_back(Def{path, kind, index});
    defsByPath_.emplace(path, defs_.size() - 1);
    return StatId{kind, index};
}

StatId
StatsRegistry::counter(const std::string &path)
{
    return registerStat(path, StatKind::Counter);
}

StatId
StatsRegistry::gauge(const std::string &path)
{
    return registerStat(path, StatKind::Gauge);
}

StatId
StatsRegistry::histogram(const std::string &path)
{
    return registerStat(path, StatKind::Histogram);
}

StatsRegistry::Shard &
StatsRegistry::localShard()
{
    // Lazily stamp this registry with its process-unique epoch so a
    // thread's cached shard pointers can never alias a different
    // registry later constructed at the same address.
    uint64_t epoch = registryEpoch_.load(std::memory_order_acquire);
    if (epoch == 0) {
        std::lock_guard<std::mutex> lock(mutex_);
        epoch = registryEpoch_.load(std::memory_order_relaxed);
        if (epoch == 0) {
            epoch = nextRegistryEpoch.fetch_add(
                1, std::memory_order_relaxed);
            registryEpoch_.store(epoch, std::memory_order_release);
        }
    }

    for (const ShardCacheEntry &entry : shardCache)
        if (entry.epoch == epoch)
            return *static_cast<Shard *>(entry.shard);

    auto shard = std::make_unique<Shard>();
    Shard *raw = shard.get();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::move(shard));
    }
    shardCache.push_back(ShardCacheEntry{epoch, raw});
    return *raw;
}

void
StatsRegistry::add(StatId id, uint64_t delta)
{
    if (!enabled() || !id.valid())
        return;
    Shard &shard = localShard();
    std::atomic<uint64_t> *slot = shard.counters.find(id.index);
    if (!slot)
        slot = shard.counters.grow(id.index, shard.growMutex);
    if (slot)
        slot->fetch_add(delta, std::memory_order_relaxed);
}

void
StatsRegistry::set(StatId id, double value)
{
    if (!enabled() || !id.valid())
        return;
    Shard &shard = localShard();
    GaugeSlot *slot = shard.gauges.find(id.index);
    if (!slot)
        slot = shard.gauges.grow(id.index, shard.growMutex);
    if (!slot)
        return;
    const uint64_t stamp =
        gaugeStamp_.fetch_add(1, std::memory_order_relaxed) + 1;
    slot->bits.store(doubleBits(value), std::memory_order_relaxed);
    slot->stamp.store(stamp, std::memory_order_release);
}

void
StatsRegistry::observe(StatId id, uint64_t value)
{
    if (!enabled() || !id.valid())
        return;
    Shard &shard = localShard();
    HistogramSlots *slot = shard.histograms.find(id.index);
    if (!slot)
        slot = shard.histograms.grow(id.index, shard.growMutex);
    if (!slot)
        return;
    const int bucket = histogramBucketOf(value);
    slot->buckets[static_cast<size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    slot->count.fetch_add(1, std::memory_order_relaxed);
    slot->sum.fetch_add(value, std::memory_order_relaxed);
}

void
StatsRegistry::addNamed(const std::string &path, uint64_t delta)
{
    if (!enabled())
        return;
    add(counter(path), delta);
}

void
StatsRegistry::setNamed(const std::string &path, double value)
{
    if (!enabled())
        return;
    set(gauge(path), value);
}

void
StatsRegistry::observeNamed(const std::string &path, uint64_t value)
{
    if (!enabled())
        return;
    observe(histogram(path), value);
}

StatsRegistry::Snapshot
StatsRegistry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Def &def : defs_) {
        switch (def.kind) {
          case StatKind::Counter: {
            uint64_t total = 0;
            for (const auto &shard : shards_) {
                if (auto *slot = shard->counters.find(def.index))
                    total += slot->load(std::memory_order_relaxed);
            }
            snap.counters.emplace(def.path, total);
            break;
          }
          case StatKind::Gauge: {
            uint64_t best_stamp = 0;
            double value = 0.0;
            for (const auto &shard : shards_) {
                if (auto *slot = shard->gauges.find(def.index)) {
                    const uint64_t stamp =
                        slot->stamp.load(std::memory_order_acquire);
                    if (stamp > best_stamp) {
                        best_stamp = stamp;
                        value = bitsDouble(slot->bits.load(
                            std::memory_order_relaxed));
                    }
                }
            }
            snap.gauges.emplace(def.path,
                                best_stamp == 0 ? 0.0 : value);
            break;
          }
          case StatKind::Histogram: {
            HistogramData data;
            for (const auto &shard : shards_) {
                if (auto *slot = shard->histograms.find(def.index)) {
                    for (int b = 0; b < histogramBuckets; ++b)
                        data.buckets[static_cast<size_t>(b)] +=
                            slot->buckets[static_cast<size_t>(b)].load(
                                std::memory_order_relaxed);
                    data.count +=
                        slot->count.load(std::memory_order_relaxed);
                    data.sum +=
                        slot->sum.load(std::memory_order_relaxed);
                }
            }
            snap.histograms.emplace(def.path, data);
            break;
          }
        }
    }
    return snap;
}

void
StatsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (const Def &def : defs_) {
            switch (def.kind) {
              case StatKind::Counter:
                if (auto *slot = shard->counters.find(def.index))
                    slot->store(0, std::memory_order_relaxed);
                break;
              case StatKind::Gauge:
                if (auto *slot = shard->gauges.find(def.index)) {
                    slot->bits.store(0, std::memory_order_relaxed);
                    slot->stamp.store(0, std::memory_order_relaxed);
                }
                break;
              case StatKind::Histogram:
                if (auto *slot = shard->histograms.find(def.index)) {
                    for (auto &bucket : slot->buckets)
                        bucket.store(0, std::memory_order_relaxed);
                    slot->count.store(0, std::memory_order_relaxed);
                    slot->sum.store(0, std::memory_order_relaxed);
                }
                break;
            }
        }
    }
}

size_t
StatsRegistry::registeredCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return defs_.size();
}

void
StatsRegistry::writeSnapshotJson(std::ostream &os,
                                 const Snapshot &snapshot)
{
    JsonWriter json(os);
    writeSnapshotJson(json, snapshot);
}

void
StatsRegistry::writeSnapshotJson(JsonWriter &json,
                                 const Snapshot &snapshot)
{
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const auto &[path, total] : snapshot.counters)
        json.keyValue(path, total);
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const auto &[path, value] : snapshot.gauges)
        json.keyValue(path, value);
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const auto &[path, data] : snapshot.histograms) {
        json.key(path);
        json.beginObject();
        json.keyValue("count", data.count);
        json.keyValue("sum", data.sum);
        // Trailing empty buckets are trimmed; bucket b >= 1 covers
        // [2^(b-1), 2^b - 1].
        int last = histogramBuckets - 1;
        while (last > 0 &&
               data.buckets[static_cast<size_t>(last)] == 0)
            --last;
        json.key("buckets");
        json.beginArray();
        for (int b = 0; b <= last; ++b)
            json.value(data.buckets[static_cast<size_t>(b)]);
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

} // namespace obs
} // namespace tdp

/**
 * @file
 * Ablation A4: sensitivity of model error to the counter sampling
 * period. The paper samples once per second; this sweep retrains and
 * revalidates the full model set at other periods to show the 1 Hz
 * choice is not load-bearing (slower sampling averages away dynamics,
 * faster sampling exposes alignment noise).
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/validator.hh"
#include "exp/experiment_pool.hh"

#include "common/bench_util.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;

SampleTrace
traceWithPeriod(RunSpec spec, double period)
{
    std::unique_ptr<Server> server;
    Server::Params params;
    params.rig.sampler.period = period;
    server = std::make_unique<Server>(spec.seed, params);
    if (spec.instances > 0) {
        server->runner().launchStaggered(spec.workload, spec.instances,
                                         spec.firstStart, spec.stagger);
    }
    server->run(spec.duration);
    const SampleTrace &full = server->rig().collect();
    return spec.skip > 0.0 ? full.slice(spec.skip, spec.duration + 1.0)
                           : full;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    std::printf("Ablation A4: sampling-period sensitivity "
                "(paper uses 1 s)\n\n");

    // Every (run, period) pair is an independent system; flatten the
    // whole sweep into one batch for the pool. Per period, in order:
    // four training runs, then the three validation runs.
    const std::vector<double> periods = {0.25, 0.5, 1.0, 2.0, 4.0};
    struct Job
    {
        RunSpec spec;
        double period;
    };
    std::vector<Job> batch;
    for (double period : periods) {
        batch.push_back({trainingRun("gcc"), period});
        batch.push_back({trainingRun("mcf"), period});
        batch.push_back({trainingRun("diskload"), period});
        batch.push_back({trainingRun("idle"), period});
        batch.push_back({characterizationRun("gcc"), period});
        batch.push_back({characterizationRun("mcf"), period});
        batch.push_back({characterizationRun("diskload"), period});
    }
    ExperimentPool pool(tdp::bench::jobs());
    const std::vector<SampleTrace> traces =
        pool.map<SampleTrace>(batch.size(), [&](size_t i) {
            return traceWithPeriod(batch[i].spec, batch[i].period);
        });

    TableWriter table({"period", "CPU err (gcc)", "Mem err (mcf)",
                       "I/O err (diskload)", "Disk err (diskload)"});

    for (size_t p = 0; p < periods.size(); ++p) {
        const double period = periods[p];
        const size_t base = p * 7;
        SystemPowerEstimator estimator =
            SystemPowerEstimator::makePaperModelSet();

        estimator.model(Rail::Cpu).train(traces[base + 0]);
        estimator.model(Rail::Memory).train(traces[base + 1]);
        estimator.model(Rail::Disk).train(traces[base + 2]);
        estimator.model(Rail::Io).train(traces[base + 2]);
        estimator.model(Rail::Chipset).train(traces[base + 3]);

        Validator validator(estimator, 0.0);
        const auto gcc_v =
            validator.validate("gcc", traces[base + 4]);
        const auto mcf_v =
            validator.validate("mcf", traces[base + 5]);
        const auto dl_v =
            validator.validate("diskload", traces[base + 6]);

        table.addRow({TableWriter::num(period, 2) + " s",
                      TableWriter::pct(gcc_v.error(Rail::Cpu)),
                      TableWriter::pct(mcf_v.error(Rail::Memory)),
                      TableWriter::pct(dl_v.error(Rail::Io)),
                      TableWriter::pct(dl_v.error(Rail::Disk))});
    }
    table.render(std::cout);
    return 0;
}

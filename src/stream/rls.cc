/**
 * @file
 * Implementation of the blockwise windowed incremental fit.
 */

#include "stream/rls.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "stats/matrix.hh"
#include "stats/solve.hh"
#include "stream/checkpoint.hh"

namespace tdp {
namespace stream {

namespace {

/** Guard names; refit() matches on content to classify the trip. */
constexpr const char *guardNonFinite = "non-finite-moments";
constexpr const char *guardSingular = "singular-system";
constexpr const char *guardBadSolution = "non-finite-solution";
constexpr const char *guardInconsistent = "inconsistent-residual";

} // namespace

WindowedRls::WindowedRls(const RlsConfig &config)
    : cfg_(config)
{
    if (cfg_.blockRows == 0)
        fatal("WindowedRls: blockRows must be >= 1");
    if (cfg_.windowBlocks == 0)
        fatal("WindowedRls: windowBlocks must be >= 1");
    const size_t slots = cfg_.windowBlocks + 1;
    partials_.resize(slots);
    for (auto &partial : partials_)
        resetPartial(partial);
    rows_.assign(slots * cfg_.blockRows * cfg_.inputs, 0.0);
    ys_.assign(slots * cfg_.blockRows, 0.0);
}

void
WindowedRls::resetPartial(Partial &partial) const
{
    partial.gram.assign(cfg_.inputs * cfg_.inputs, 0.0);
    partial.sx.assign(cfg_.inputs, 0.0);
    partial.sxy.assign(cfg_.inputs, 0.0);
    partial.sy = 0.0;
    partial.syy = 0.0;
    partial.n = 0;
}

void
WindowedRls::foldRow(Partial &partial, const double *row, double y) const
{
    const size_t k = cfg_.inputs;
    for (size_t a = 0; a < k; ++a)
        partial.sx[a] += row[a];
    for (size_t a = 0; a < k; ++a) {
        const double xa = row[a];
        for (size_t b = 0; b < k; ++b)
            partial.gram[a * k + b] += xa * row[b];
        partial.sxy[a] += xa * y;
    }
    partial.sy += y;
    partial.syy += y * y;
    ++partial.n;
}

void
WindowedRls::mergeInto(Partial &acc, const Partial &block) const
{
    const size_t k = cfg_.inputs;
    for (size_t i = 0; i < k * k; ++i)
        acc.gram[i] += block.gram[i];
    for (size_t a = 0; a < k; ++a) {
        acc.sx[a] += block.sx[a];
        acc.sxy[a] += block.sxy[a];
    }
    acc.sy += block.sy;
    acc.syy += block.syy;
    acc.n += block.n;
}

size_t
WindowedRls::slotOf(size_t j) const
{
    return (oldestSlot_ + j) % partials_.size();
}

size_t
WindowedRls::openSlot() const
{
    return (oldestSlot_ + blockCount_) % partials_.size();
}

void
WindowedRls::add(const double *row, double y)
{
    const size_t slot = openSlot();
    const size_t rowBase =
        (slot * cfg_.blockRows + openRows_) * cfg_.inputs;
    for (size_t c = 0; c < cfg_.inputs; ++c)
        rows_[rowBase + c] = row[c];
    ys_[slot * cfg_.blockRows + openRows_] = y;
    foldRow(partials_[slot], row, y);
    ++openRows_;
    ++stats_.rowsAdded;
    if (openRows_ == cfg_.blockRows) {
        ++stats_.blocksSealed;
        if (blockCount_ < cfg_.windowBlocks) {
            ++blockCount_;
        } else {
            // Slide: the oldest sealed block leaves the window; its
            // slot becomes the new open block. Its partial is dropped
            // whole - never subtracted from a running total.
            oldestSlot_ = (oldestSlot_ + 1) % partials_.size();
        }
        openRows_ = 0;
        resetPartial(partials_[openSlot()]);
    }
}

FitResult
WindowedRls::solveFromMoments(const Partial &moments,
                              const char **guard) const
{
    *guard = "";
    FitResult fit;
    const size_t k = cfg_.inputs;
    const double n = static_cast<double>(moments.n);
    fit.sampleCount = moments.n;

    bool finite = std::isfinite(moments.sy) &&
                  std::isfinite(moments.syy);
    for (size_t a = 0; a < k && finite; ++a)
        finite = std::isfinite(moments.sx[a]) &&
                 std::isfinite(moments.sxy[a]);
    for (size_t i = 0; i < k * k && finite; ++i)
        finite = std::isfinite(moments.gram[i]);
    if (!finite) {
        *guard = guardNonFinite;
        return fit;
    }

    const double ssTot = moments.syy - moments.sy * moments.sy / n;

    if (k == 0) {
        // Intercept-only: the mean, with ss_res = ss_tot about it.
        fit.intercept = moments.sy / n;
        const double ssRes = ssTot > 0.0 ? ssTot : 0.0;
        fit.rmse = std::sqrt(ssRes / n);
        fit.r2 = 0.0;
        return fit;
    }

    // Centre and standardise algebraically: the solve then runs on
    // the same well-conditioned z-scored system the QR path builds
    // explicitly, without touching the rows.
    std::vector<double> mean(k), inv(k);
    for (size_t c = 0; c < k; ++c) {
        mean[c] = moments.sx[c] / n;
        double m2 = moments.gram[c * k + c] -
                    moments.sx[c] * moments.sx[c] / n;
        if (m2 < 0.0)
            m2 = 0.0;
        // Scale by any positive spread - an absolute floor would
        // leave tiny-magnitude regressors (per-cycle rates squared
        // are ~1e-13) unscaled and spuriously singular. A truly
        // constant column has sd == 0 and stays unscaled; the pivot
        // check then refuses it. A denormal sd overflows inv to
        // infinity, which the finite checks below catch.
        const double sd = std::sqrt(m2 / (n - 1.0));
        inv[c] = sd > 0.0 ? 1.0 / sd : 1.0;
    }

    Matrix a(k, k);
    std::vector<double> b(k);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < k; ++c) {
            a(r, c) = (moments.gram[r * k + c] -
                       moments.sx[r] * moments.sx[c] / n) *
                      inv[r] * inv[c];
        }
        b[r] = (moments.sxy[r] - moments.sx[r] * moments.sy / n) *
               inv[r];
    }
    for (size_t r = 0; r < k; ++r) {
        if (!std::isfinite(b[r])) {
            *guard = guardNonFinite;
            return fit;
        }
        for (size_t c = 0; c < k; ++c) {
            if (!std::isfinite(a(r, c))) {
                *guard = guardNonFinite;
                return fit;
            }
        }
    }

    std::vector<double> betaZ;
    try {
        betaZ = solveLinearSystem(a, b);
    } catch (const FatalError &) {
        *guard = guardSingular;
        return fit;
    }
    for (size_t c = 0; c < k; ++c) {
        if (!std::isfinite(betaZ[c])) {
            *guard = guardBadSolution;
            return fit;
        }
    }

    fit.coefficients.resize(k);
    double dot = 0.0;
    for (size_t c = 0; c < k; ++c) {
        fit.coefficients[c] = betaZ[c] * inv[c];
        dot += fit.coefficients[c] * mean[c];
    }
    fit.intercept = moments.sy / n - dot;

    // Residual sum algebraically: ss_tot - 2 betaᵀb + betaᵀA beta in
    // the standardised space. A grossly negative value means the
    // moments lost too much precision to trust.
    double quad = 0.0, cross = 0.0;
    for (size_t r = 0; r < k; ++r) {
        cross += betaZ[r] * b[r];
        double rowDot = 0.0;
        for (size_t c = 0; c < k; ++c)
            rowDot += a(r, c) * betaZ[c];
        quad += betaZ[r] * rowDot;
    }
    double ssRes = ssTot - 2.0 * cross + quad;
    if (!std::isfinite(ssRes)) {
        *guard = guardNonFinite;
        return fit;
    }
    const double tolerance =
        1e-6 * (ssTot > 1.0 ? ssTot : 1.0);
    if (ssRes < -tolerance) {
        *guard = guardInconsistent;
        return fit;
    }
    if (ssRes < 0.0)
        ssRes = 0.0;
    fit.rmse = std::sqrt(ssRes / n);
    fit.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 0.0;
    return fit;
}

bool
WindowedRls::fullQrRefit(FitResult &out) const
{
    const size_t k = cfg_.inputs;
    const size_t rows = windowRows();
    if (rows < k + 2)
        return false;

    std::vector<std::vector<double>> columns(
        k, std::vector<double>(rows));
    std::vector<double> y(rows);
    size_t r = 0;
    for (size_t j = 0; j < blockCount_; ++j) {
        const size_t slot = slotOf(j);
        for (size_t i = 0; i < cfg_.blockRows; ++i, ++r) {
            const double *row =
                rows_.data() + (slot * cfg_.blockRows + i) * k;
            for (size_t c = 0; c < k; ++c)
                columns[c][r] = row[c];
            y[r] = ys_[slot * cfg_.blockRows + i];
        }
    }

    if (k == 0) {
        // fitOls needs at least one column; the intercept-only fit is
        // a mean.
        double sum = 0.0;
        for (size_t i = 0; i < rows; ++i)
            sum += y[i];
        out = FitResult{};
        out.intercept = sum / static_cast<double>(rows);
        double ssRes = 0.0;
        for (size_t i = 0; i < rows; ++i) {
            const double d = y[i] - out.intercept;
            ssRes += d * d;
        }
        out.rmse = std::sqrt(ssRes / static_cast<double>(rows));
        out.sampleCount = rows;
        return std::isfinite(out.intercept);
    }

    FitResult qr;
    try {
        qr = fitOls(columns, y);
    } catch (const FatalError &) {
        return false;
    }
    bool finite = std::isfinite(qr.intercept);
    for (size_t c = 0; c < qr.coefficients.size() && finite; ++c)
        finite = std::isfinite(qr.coefficients[c]);
    if (!finite)
        return false;
    out = qr;
    return true;
}

WindowedRls::Refit
WindowedRls::refit()
{
    Refit out;
    if (!canFit()) {
        ++stats_.guardInsufficient;
        out.guard = "insufficient-rows";
        return out;
    }

    Partial acc;
    resetPartial(acc);
    for (size_t j = 0; j < blockCount_; ++j)
        mergeInto(acc, partials_[slotOf(j)]);

    const char *guard = "";
    FitResult fit = solveFromMoments(acc, &guard);
    if (guard[0] == '\0') {
        ++stats_.refits;
        out.fit = fit;
        out.ok = true;
        return out;
    }

    out.guard = guard;
    if (std::strcmp(guard, guardSingular) == 0)
        ++stats_.guardSingular;
    else if (std::strcmp(guard, guardInconsistent) == 0)
        ++stats_.guardInconsistent;
    else
        ++stats_.guardNonFinite;

    FitResult qr;
    if (fullQrRefit(qr)) {
        ++stats_.fullQrRefits;
        out.fit = qr;
        out.ok = true;
        out.usedFullQr = true;
    }
    return out;
}

FitResult
WindowedRls::refitFromScratch() const
{
    // Recompute every sealed block's partial from the stored rows
    // with the exact foldRow/merge/solve sequence refit() uses on the
    // cached partials: bit-identical results unless a cached partial
    // has drifted from the rows it claims to summarise.
    Partial acc;
    resetPartial(acc);
    Partial block;
    for (size_t j = 0; j < blockCount_; ++j) {
        const size_t slot = slotOf(j);
        resetPartial(block);
        for (size_t i = 0; i < cfg_.blockRows; ++i) {
            const double *row = rows_.data() +
                                (slot * cfg_.blockRows + i) *
                                    cfg_.inputs;
            foldRow(block, row, ys_[slot * cfg_.blockRows + i]);
        }
        mergeInto(acc, block);
    }
    const char *guard = "";
    return solveFromMoments(acc, &guard);
}

void
WindowedRls::checkpointSave(CheckpointWriter &w) const
{
    // Window shape first: the restore side cross-checks it against
    // its own config before trusting any offsets below (defense in
    // depth behind the service-level fingerprint).
    w.u64(cfg_.inputs);
    w.u64(cfg_.blockRows);
    w.u64(cfg_.windowBlocks);
    w.u64(stats_.rowsAdded);
    w.u64(stats_.blocksSealed);
    w.u64(stats_.refits);
    w.u64(stats_.fullQrRefits);
    w.u64(stats_.guardNonFinite);
    w.u64(stats_.guardSingular);
    w.u64(stats_.guardInconsistent);
    w.u64(stats_.guardInsufficient);
    w.u64(oldestSlot_);
    w.u64(blockCount_);
    w.u64(openRows_);
    for (const Partial &partial : partials_) {
        for (const double v : partial.gram)
            w.f64(v);
        for (const double v : partial.sx)
            w.f64(v);
        for (const double v : partial.sxy)
            w.f64(v);
        w.f64(partial.sy);
        w.f64(partial.syy);
        w.u64(partial.n);
    }
    for (const double v : rows_)
        w.f64(v);
    for (const double v : ys_)
        w.f64(v);
}

bool
WindowedRls::checkpointRestore(CheckpointReader &r)
{
    if (r.u64() != cfg_.inputs || r.u64() != cfg_.blockRows ||
        r.u64() != cfg_.windowBlocks) {
        r.fail("refit window shape mismatch");
        return false;
    }
    stats_.rowsAdded = r.u64();
    stats_.blocksSealed = r.u64();
    stats_.refits = r.u64();
    stats_.fullQrRefits = r.u64();
    stats_.guardNonFinite = r.u64();
    stats_.guardSingular = r.u64();
    stats_.guardInconsistent = r.u64();
    stats_.guardInsufficient = r.u64();
    oldestSlot_ = r.u64();
    blockCount_ = r.u64();
    openRows_ = r.u64();
    if (!r.ok())
        return false;
    if (oldestSlot_ >= partials_.size() ||
        blockCount_ > cfg_.windowBlocks ||
        openRows_ >= cfg_.blockRows) {
        r.fail("refit window cursors out of range");
        return false;
    }
    for (Partial &partial : partials_) {
        for (double &v : partial.gram)
            v = r.f64();
        for (double &v : partial.sx)
            v = r.f64();
        for (double &v : partial.sxy)
            v = r.f64();
        partial.sy = r.f64();
        partial.syy = r.f64();
        partial.n = r.u64();
    }
    for (double &v : rows_)
        v = r.f64();
    for (double &v : ys_)
        v = r.f64();
    return r.ok();
}

} // namespace stream
} // namespace tdp

/**
 * @file
 * StatsRegistry unit tests: registration semantics, histogram bucket
 * edges, reset, the disabled fast path and the per-thread shard merge.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace {

using namespace tdp;
using namespace tdp::obs;

TEST(StatsRegistry, RegistrationDedupesAndChecksKind)
{
    StatsRegistry reg;
    const StatId a = reg.counter("sim.events");
    const StatId b = reg.counter("sim.events");
    EXPECT_EQ(a.index, b.index);
    EXPECT_EQ(reg.registeredCount(), 1u);

    // Same path as a different kind is a registration bug.
    EXPECT_THROW(reg.gauge("sim.events"), FatalError);
    EXPECT_THROW(reg.histogram("sim.events"), FatalError);
}

TEST(StatsRegistry, DisabledUpdatesAreDropped)
{
    StatsRegistry reg;
    const StatId id = reg.counter("dropped.counter");
    reg.add(id, 5);
    // The named conveniences don't even register while disabled.
    reg.addNamed("dropped.named", 7);

    const StatsRegistry::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("dropped.counter"), 0u);
    EXPECT_EQ(snap.counters.count("dropped.named"), 0u);
}

TEST(StatsRegistry, CountersAccumulate)
{
    StatsRegistry reg;
    reg.setEnabled(true);
    const StatId id = reg.counter("a.b.c");
    reg.add(id);
    reg.add(id, 41);
    EXPECT_EQ(reg.snapshot().counters.at("a.b.c"), 42u);
}

TEST(StatsRegistry, GaugeKeepsLastWrite)
{
    StatsRegistry reg;
    reg.setEnabled(true);
    const StatId id = reg.gauge("pool.size");
    reg.set(id, 3.0);
    reg.set(id, 8.5);
    EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("pool.size"), 8.5);
}

TEST(StatsRegistry, HistogramBucketEdges)
{
    StatsRegistry reg;
    reg.setEnabled(true);
    const StatId id = reg.histogram("lat");

    // Bucket 0 holds only the value 0; bucket b >= 1 holds
    // [2^(b-1), 2^b - 1].
    reg.observe(id, 0);
    reg.observe(id, 1);
    reg.observe(id, 2);
    reg.observe(id, 3);
    reg.observe(id, 4);
    reg.observe(id, 7);
    reg.observe(id, 8);
    reg.observe(id, ~uint64_t(0));

    const StatsRegistry::HistogramData h =
        reg.snapshot().histograms.at("lat");
    EXPECT_EQ(h.count, 8u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u); // 1
    EXPECT_EQ(h.buckets[2], 2u); // 2, 3
    EXPECT_EQ(h.buckets[3], 2u); // 4, 7
    EXPECT_EQ(h.buckets[4], 1u); // 8
    EXPECT_EQ(h.buckets[64], 1u);
    EXPECT_EQ(h.sum, 0u + 1 + 2 + 3 + 4 + 7 + 8 + ~uint64_t(0));
}

TEST(StatsRegistry, BucketHelpersAgree)
{
    for (int b = 1; b < histogramBuckets; ++b) {
        const uint64_t low = histogramBucketLow(b);
        EXPECT_EQ(histogramBucketOf(low), b) << "bucket " << b;
        EXPECT_EQ(histogramBucketOf(low - 1), b - 1) << "bucket " << b;
    }
    EXPECT_EQ(histogramBucketOf(0), 0);
}

TEST(StatsRegistry, ResetZeroesButKeepsRegistrations)
{
    StatsRegistry reg;
    reg.setEnabled(true);
    const StatId c = reg.counter("x.count");
    const StatId g = reg.gauge("x.gauge");
    const StatId h = reg.histogram("x.hist");
    reg.add(c, 3);
    reg.set(g, 1.5);
    reg.observe(h, 9);

    reg.reset();
    EXPECT_EQ(reg.registeredCount(), 3u);
    const StatsRegistry::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("x.count"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges.at("x.gauge"), 0.0);
    EXPECT_EQ(snap.histograms.at("x.hist").count, 0u);

    // Old ids stay live after a reset.
    reg.add(c, 2);
    EXPECT_EQ(reg.snapshot().counters.at("x.count"), 2u);
}

TEST(StatsRegistry, ShardMergeAcrossThreads)
{
    StatsRegistry reg;
    reg.setEnabled(true);
    const StatId counter = reg.counter("mt.count");
    const StatId hist = reg.histogram("mt.hist");

    constexpr int threads = 8;
    constexpr int perThread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&reg, counter, hist] {
            for (int i = 0; i < perThread; ++i) {
                reg.add(counter);
                reg.observe(hist,
                            static_cast<uint64_t>(i % 17));
            }
        });
    }
    for (std::thread &worker : pool)
        worker.join();

    const StatsRegistry::Snapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("mt.count"),
              uint64_t(threads) * perThread);
    EXPECT_EQ(snap.histograms.at("mt.hist").count,
              uint64_t(threads) * perThread);
}

TEST(StatsRegistry, SnapshotJsonIsStructured)
{
    StatsRegistry reg;
    reg.setEnabled(true);
    reg.addNamed("j.count", 2);
    reg.setNamed("j.gauge", 0.5);
    reg.observeNamed("j.hist", 3);

    std::ostringstream os;
    StatsRegistry::writeSnapshotJson(os, reg.snapshot());
    const std::string json = os.str();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"j.count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

} // namespace

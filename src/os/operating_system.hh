/**
 * @file
 * Operating system façade: timer tick, idle HLT policy, and the
 * per-quantum driving of the VM layer and page cache flusher.
 */

#ifndef TDP_OS_OPERATING_SYSTEM_HH
#define TDP_OS_OPERATING_SYSTEM_HH

#include <string>
#include <vector>

#include "io/interrupt_controller.hh"
#include "os/page_cache.hh"
#include "os/proc_interrupts.hh"
#include "os/scheduler.hh"
#include "os/virtual_memory.hh"
#include "sim/sim_object.hh"
#include "sim/system.hh"

namespace tdp {

/**
 * Ties the OS services together and runs once per quantum in the Os
 * phase: raises the periodic timer interrupt on every CPU (the event
 * that wakes halted processors), updates paging pressure and swap
 * traffic, and advances the page cache flusher.
 */
class OperatingSystem : public SimObject, public Ticked
{
  public:
    /** Kernel configuration. */
    struct Params
    {
        /** Timer interrupt frequency per CPU (Linux HZ). */
        double timerHz = 1000.0;

        /** Uops executed per timer interrupt (handler + scheduler). */
        double timerHandlerUops = 2600.0;

        /** Background kernel housekeeping uops per second per CPU. */
        double housekeepingUopsPerSec = 1.3e6;
    };

    OperatingSystem(System &system, const std::string &name,
                    Scheduler &scheduler, PageCache &page_cache,
                    VirtualMemory &vm,
                    InterruptController &irq_controller,
                    const Params &params);

    /** The scheduler. */
    Scheduler &scheduler() { return scheduler_; }

    /** The page cache. */
    PageCache &pageCache() { return pageCache_; }

    /** The VM layer. */
    VirtualMemory &vm() { return vm_; }

    /** The /proc/interrupts view. */
    const ProcInterrupts &procInterrupts() const { return procIrq_; }

    /**
     * Kernel-mode uops a CPU executes per quantum even when no user
     * thread runs (timer handler + housekeeping). The CPU model adds
     * this to its fetch stream; it is what keeps an "idle" machine's
     * measured activity slightly above zero.
     */
    double kernelUopsPerQuantum(Seconds dt) const;

    /** Timer interrupt vector. */
    IrqVector timerVector() const { return timerVector_; }

    void tickUpdate(Tick now, Tick quantum) override;

  private:
    Params params_;
    Scheduler &scheduler_;
    PageCache &pageCache_;
    VirtualMemory &vm_;
    InterruptController &irqController_;
    ProcInterrupts procIrq_;
    IrqVector timerVector_;
    double timerCarry_ = 0.0;
};

} // namespace tdp

#endif // TDP_OS_OPERATING_SYSTEM_HH

/**
 * @file
 * Per-CPU performance monitoring unit.
 *
 * Exposes the nine event classes the paper selects in section 3.3:
 * cycles, halted cycles, fetched uops, L3 (load) misses, TLB misses,
 * DMA/other bus accesses, total memory bus transactions, uncacheable
 * accesses and serviced interrupts - plus the prefetch-transaction
 * count needed to reproduce Figure 4. Counts are doubles: within one
 * quantum they represent expected event counts.
 */

#ifndef TDP_CPU_PERF_COUNTERS_HH
#define TDP_CPU_PERF_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>

namespace tdp {

/** Performance events observable at a CPU. */
enum class PerfEvent : int
{
    Cycles = 0,          ///< core frequency x time
    HaltedCycles,        ///< cycles with the clock gated (HLT)
    FetchedUops,         ///< micro-operations fetched
    L3LoadMisses,        ///< demand load misses in the L3
    TlbMisses,           ///< ITLB + DTLB misses
    DmaOtherAccesses,    ///< snooped DMA/other-agent bus accesses
    BusTransactions,     ///< all memory bus transactions seen
    PrefetchTransactions,///< hardware-prefetch bus transactions
    UncacheableAccesses, ///< loads/stores to uncacheable space
    InterruptsServiced,  ///< interrupts taken by this CPU
    NumEvents,
};

/** Number of PerfEvent values. */
constexpr int numPerfEvents = static_cast<int>(PerfEvent::NumEvents);

/** Human-readable event name. */
const char *perfEventName(PerfEvent event);

/** Usable counter range of a width-limited PMU counter (2^bits). */
double counterSpan(int width_bits);

/**
 * Delta between two raw reads of a counter that wraps at
 * `width_bits` bits. Real PMU counters are 40-48 bits wide; a raw
 * read that comes back *below* the previous one means the counter
 * wrapped (at most once, provided the true delta fits in the width),
 * and the positive delta is recovered by adding back the span.
 * fatal() when width_bits is outside [1, 52] or a raw value is
 * negative or beyond the span.
 */
double wrappedCounterDelta(double previous_raw, double current_raw,
                           int width_bits);

/** Snapshot of all counters at a sampling instant. */
struct CounterSnapshot
{
    std::array<double, numPerfEvents> counts{};

    /** Access by event. */
    double
    operator[](PerfEvent event) const
    {
        return counts[static_cast<size_t>(event)];
    }

    /** Mutable access by event. */
    double &
    operator[](PerfEvent event)
    {
        return counts[static_cast<size_t>(event)];
    }

    /** Elementwise sum, for aggregating across CPUs. */
    CounterSnapshot &operator+=(const CounterSnapshot &other);
};

/**
 * The PMU of one CPU. The sampler periodically reads and clears all
 * counters, exactly like the perfctr-driver flow the paper uses.
 */
class PerfCounters
{
  public:
    /** Add to an event count. */
    void increment(PerfEvent event, double amount);

    /** Current (since last clear) count of one event. */
    double count(PerfEvent event) const;

    /** Lifetime (never cleared) count of one event. */
    double lifetime(PerfEvent event) const;

    /** Read all counters and clear them (one sampling operation). */
    CounterSnapshot readAndClear();

    /** Read all counters without clearing. */
    CounterSnapshot peek() const;

  private:
    std::array<double, numPerfEvents> current_{};
    std::array<double, numPerfEvents> lifetime_{};
};

} // namespace tdp

#endif // TDP_CPU_PERF_COUNTERS_HH

/**
 * @file
 * Implementation of the linear solvers.
 */

#include "stats/solve.hh"

#include <cmath>

#include "common/logging.hh"

namespace tdp {

std::vector<double>
solveLinearSystem(Matrix a, std::vector<double> b)
{
    const size_t n = a.rows();
    if (a.cols() != n || b.size() != n) {
        panic("solveLinearSystem: shape mismatch (%zux%zu, b=%zu)",
              a.rows(), a.cols(), b.size());
    }

    for (size_t col = 0; col < n; ++col) {
        // Partial pivot: bring the largest remaining entry up.
        size_t pivot = col;
        double best = std::fabs(a(col, col));
        for (size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a(r, col)) > best) {
                best = std::fabs(a(r, col));
                pivot = r;
            }
        }
        if (best < 1e-12)
            fatal("solveLinearSystem: singular matrix at column %zu", col);
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c)
                std::swap(a(col, c), a(pivot, c));
            std::swap(b[col], b[pivot]);
        }
        for (size_t r = col + 1; r < n; ++r) {
            const double factor = a(r, col) / a(col, col);
            if (factor == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (size_t c = ri + 1; c < n; ++c)
            acc -= a(ri, c) * x[c];
        x[ri] = acc / a(ri, ri);
    }
    return x;
}

std::vector<double>
solveLeastSquaresQr(Matrix a, std::vector<double> b)
{
    const size_t m = a.rows();
    const size_t n = a.cols();
    if (b.size() != m) {
        panic("solveLeastSquaresQr: shape mismatch (%zux%zu, b=%zu)",
              m, n, b.size());
    }
    if (m < n)
        fatal("solveLeastSquaresQr: underdetermined (%zu rows < %zu cols)",
              m, n);

    // Householder QR applied in place; b accumulates Q^T b.
    for (size_t k = 0; k < n; ++k) {
        double norm = 0.0;
        for (size_t r = k; r < m; ++r)
            norm += a(r, k) * a(r, k);
        norm = std::sqrt(norm);
        if (norm < 1e-12)
            fatal("solveLeastSquaresQr: rank-deficient at column %zu", k);
        // Take the sign of the diagonal so the reflected diagonal
        // element (a(k,k)/norm + 1) stays away from zero.
        if (a(k, k) < 0.0)
            norm = -norm;

        // Householder vector v stored in-place below the diagonal.
        for (size_t r = k; r < m; ++r)
            a(r, k) /= norm;
        a(k, k) += 1.0;

        for (size_t c = k + 1; c < n; ++c) {
            double dot = 0.0;
            for (size_t r = k; r < m; ++r)
                dot += a(r, k) * a(r, c);
            dot = -dot / a(k, k);
            for (size_t r = k; r < m; ++r)
                a(r, c) += dot * a(r, k);
        }
        double dot = 0.0;
        for (size_t r = k; r < m; ++r)
            dot += a(r, k) * b[r];
        dot = -dot / a(k, k);
        for (size_t r = k; r < m; ++r)
            b[r] += dot * a(r, k);

        // Store R's diagonal entry where back-substitution expects it.
        a(k, k) = -norm;
    }

    // Back-substitute on the upper-triangular R (strictly above the
    // diagonal of 'a'; the diagonal holds norm values set above).
    std::vector<double> x(n, 0.0);
    for (size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (size_t c = ri + 1; c < n; ++c)
            acc -= a(ri, c) * x[c];
        x[ri] = acc / a(ri, ri);
    }
    return x;
}

} // namespace tdp

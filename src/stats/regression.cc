/**
 * @file
 * Implementation of the regression fits.
 */

#include "stats/regression.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/running_stats.hh"
#include "stats/matrix.hh"
#include "stats/solve.hh"

namespace tdp {

double
FitResult::predict(const std::vector<double> &row) const
{
    if (row.size() != coefficients.size()) {
        panic("FitResult::predict: %zu inputs for %zu coefficients",
              row.size(), coefficients.size());
    }
    double acc = intercept;
    for (size_t i = 0; i < row.size(); ++i)
        acc += coefficients[i] * row[i];
    return acc;
}

namespace {

/** Compute R^2 and RMSE of a fitted result over the training data. */
void
finalizeGoodness(const DesignSource &source,
                 const std::vector<double> &y, FitResult &fit)
{
    RunningStats ystats;
    for (double v : y)
        ystats.add(v);
    const double ymean = ystats.mean();

    double ss_res = 0.0;
    double ss_tot = 0.0;
    std::vector<double> row(source.regressorCount());
    for (size_t i = 0; i < y.size(); ++i) {
        source.row(i, row.data());
        const double pred = fit.predict(row);
        ss_res += (y[i] - pred) * (y[i] - pred);
        ss_tot += (y[i] - ymean) * (y[i] - ymean);
    }
    fit.rmse = y.empty() ? 0.0 : std::sqrt(ss_res / y.size());
    fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
    fit.sampleCount = y.size();
}

/** Adapts pre-extracted columns to the streaming interface. */
class ColumnsSource : public DesignSource
{
  public:
    ColumnsSource(const std::vector<std::vector<double>> &columns,
                  const std::vector<double> &y)
        : columns_(columns), y_(y)
    {
    }

    size_t sampleCount() const override { return y_.size(); }
    size_t regressorCount() const override { return columns_.size(); }

    void
    row(size_t i, double *out) const override
    {
        for (size_t c = 0; c < columns_.size(); ++c)
            out[c] = columns_[c][i];
    }

    double response(size_t i) const override { return y_[i]; }

  private:
    const std::vector<std::vector<double>> &columns_;
    const std::vector<double> &y_;
};

/**
 * Shared validation and standardisation preamble of both fit
 * kernels: shape checks, the loud non-finite refusal, and the
 * per-regressor shift/scale. When `design` is given it is filled
 * (raw) as the single pass over the source runs; the stats are then
 * computed from it column-major, in exactly the element order the
 * pre-streaming code used, keeping the QR path bit-identical.
 */
void
prepareFit(const DesignSource &source, const char *who,
           std::vector<double> &y, Matrix *design,
           std::vector<double> &shift, std::vector<double> &scale)
{
    const size_t n = source.sampleCount();
    const size_t k = source.regressorCount();
    if (n == 0)
        fatal("%s: no samples", who);
    if (n < k + 1)
        fatal("%s: %zu samples cannot fit %zu coefficients", who, n,
              k + 1);

    y.resize(n);
    for (size_t i = 0; i < n; ++i)
        y[i] = source.response(i);

    // A single NaN/Inf regressor or response poisons the whole solve
    // into silently-NaN coefficients; refuse loudly instead so
    // callers can scrub or degrade.
    for (size_t i = 0; i < n; ++i) {
        if (!std::isfinite(y[i]))
            fatal("%s: non-finite response at sample %zu", who, i);
    }

    shift.assign(k, 0.0);
    scale.assign(k, 1.0);

    if (design) {
        // Single pass over the source fills the design matrix with
        // the raw regressors; the intercept column and the
        // standardisation are applied in place afterwards.
        for (size_t r = 0; r < n; ++r) {
            (*design)(r, 0) = 1.0;
            source.row(r, &(*design)(r, 1));
        }
        for (size_t c = 0; c < k; ++c) {
            for (size_t r = 0; r < n; ++r) {
                if (!std::isfinite((*design)(r, c + 1)))
                    fatal("%s: non-finite regressor in column %zu at "
                          "sample %zu",
                          who, c, r);
            }
        }
        for (size_t c = 0; c < k; ++c) {
            RunningStats s;
            for (size_t r = 0; r < n; ++r)
                s.add((*design)(r, c + 1));
            shift[c] = s.mean();
            scale[c] = s.stddev() > 1e-12 ? s.stddev() : 1.0;
        }
        for (size_t r = 0; r < n; ++r)
            for (size_t c = 0; c < k; ++c)
                (*design)(r, c + 1) =
                    ((*design)(r, c + 1) - shift[c]) / scale[c];
        return;
    }

    // No matrix wanted (normal-equations path): one pass for the
    // stats and finiteness instead.
    std::vector<double> row(k);
    std::vector<RunningStats> stats(k);
    for (size_t r = 0; r < n; ++r) {
        source.row(r, row.data());
        for (size_t c = 0; c < k; ++c) {
            if (!std::isfinite(row[c]))
                fatal("%s: non-finite regressor in column %zu at "
                      "sample %zu",
                      who, c, r);
            stats[c].add(row[c]);
        }
    }
    for (size_t c = 0; c < k; ++c) {
        shift[c] = stats[c].mean();
        scale[c] = stats[c].stddev() > 1e-12 ? stats[c].stddev() : 1.0;
    }
}

/** Map standardised-space beta back to the original input scale. */
FitResult
unstandardize(const std::vector<double> &beta,
              const std::vector<double> &shift,
              const std::vector<double> &scale)
{
    const size_t k = shift.size();
    FitResult fit;
    fit.coefficients.resize(k);
    fit.intercept = beta[0];
    for (size_t c = 0; c < k; ++c) {
        fit.coefficients[c] = beta[c + 1] / scale[c];
        fit.intercept -= beta[c + 1] * shift[c] / scale[c];
    }
    return fit;
}

} // namespace

FitResult
fitOls(const DesignSource &source)
{
    const size_t n = source.sampleCount();
    const size_t k = source.regressorCount();

    std::vector<double> y;
    std::vector<double> shift;
    std::vector<double> scale;
    Matrix design(n == 0 ? 1 : n, k + 1);
    prepareFit(source, "fitOls", y, &design, shift, scale);

    const std::vector<double> beta = solveLeastSquaresQr(design, y);
    FitResult fit = unstandardize(beta, shift, scale);
    finalizeGoodness(source, y, fit);
    return fit;
}

FitResult
fitOlsNormal(const DesignSource &source)
{
    const size_t n = source.sampleCount();
    const size_t k = source.regressorCount();

    std::vector<double> y;
    std::vector<double> shift;
    std::vector<double> scale;
    prepareFit(source, "fitOlsNormal", y, nullptr, shift, scale);

    // Single fused pass: accumulate the (k+1)x(k+1) Gram matrix
    // ZᵀZ and the moment vector Zᵀy over standardised rows
    // z = [1, (x - shift) / scale]. Only the upper triangle is
    // accumulated; it is mirrored before the solve.
    Matrix gram(k + 1, k + 1);
    std::vector<double> moment(k + 1, 0.0);
    std::vector<double> z(k + 1, 0.0);
    z[0] = 1.0;
    for (size_t r = 0; r < n; ++r) {
        source.row(r, z.data() + 1);
        for (size_t c = 0; c < k; ++c)
            z[c + 1] = (z[c + 1] - shift[c]) / scale[c];
        for (size_t a = 0; a < k + 1; ++a) {
            for (size_t b = a; b < k + 1; ++b)
                gram(a, b) += z[a] * z[b];
            moment[a] += z[a] * y[r];
        }
    }
    for (size_t a = 0; a < k + 1; ++a)
        for (size_t b = 0; b < a; ++b)
            gram(a, b) = gram(b, a);

    std::vector<double> beta;
    try {
        beta = solveLinearSystem(std::move(gram), std::move(moment));
    } catch (const FatalError &err) {
        // Match the QR path's failure mode for collinear designs so
        // callers' fallback logic (quadratic -> linear) works the
        // same whichever kernel they picked.
        fatal("fitOlsNormal: rank-deficient system (%s)", err.what());
    }

    FitResult fit = unstandardize(beta, shift, scale);
    finalizeGoodness(source, y, fit);
    return fit;
}

FitResult
fitOlsAuto(const DesignSource &source)
{
    static const bool fast = [] {
        const char *value = std::getenv("TDP_FAST_FIT");
        return value && value[0] == '1' && value[1] == '\0';
    }();
    return fast ? fitOlsNormal(source) : fitOls(source);
}

FitResult
fitOls(const std::vector<std::vector<double>> &columns,
       const std::vector<double> &y)
{
    const size_t n = y.size();
    const size_t k = columns.size();
    if (n == 0)
        fatal("fitOls: no samples");
    for (size_t c = 0; c < k; ++c) {
        if (columns[c].size() != n) {
            fatal("fitOls: column %zu has %zu samples, expected %zu",
                  c, columns[c].size(), n);
        }
    }
    return fitOls(ColumnsSource(columns, y));
}

FitResult
fitPolynomial(const std::vector<double> &x, const std::vector<double> &y,
              int degree)
{
    if (degree < 1)
        fatal("fitPolynomial: degree must be >= 1, got %d", degree);
    std::vector<std::vector<double>> columns(degree);
    for (int d = 0; d < degree; ++d) {
        columns[d].resize(x.size());
        for (size_t i = 0; i < x.size(); ++i)
            columns[d][i] = std::pow(x[i], d + 1);
    }
    return fitOls(columns, y);
}

std::vector<double>
quadraticPerInputFeatures(const std::vector<double> &row)
{
    std::vector<double> out;
    out.reserve(row.size() * 2);
    for (double v : row) {
        out.push_back(v);
        out.push_back(v * v);
    }
    return out;
}

FitResult
fitQuadraticPerInput(const std::vector<std::vector<double>> &inputs,
                     const std::vector<double> &y)
{
    std::vector<std::vector<double>> columns;
    columns.reserve(inputs.size() * 2);
    for (const auto &input : inputs) {
        columns.push_back(input);
        std::vector<double> squared(input.size());
        for (size_t i = 0; i < input.size(); ++i)
            squared[i] = input[i] * input[i];
        columns.push_back(std::move(squared));
    }
    return fitOls(columns, y);
}

} // namespace tdp

file(REMOVE_RECURSE
  "CMakeFiles/fig2_cpu_model_gcc.dir/fig2_cpu_model_gcc.cc.o"
  "CMakeFiles/fig2_cpu_model_gcc.dir/fig2_cpu_model_gcc.cc.o.d"
  "fig2_cpu_model_gcc"
  "fig2_cpu_model_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cpu_model_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Synthetic client fleet for streaming tests and the stream sweep:
 * clients with exactly model-shaped ground-truth rail powers whose
 * raw cumulative counters wrap at a configurable width, like real
 * perfctr reads. The same generator builds the training trace, so a
 * trained estimator tracks the streamed samples almost exactly -
 * which is what makes drift injection, shedding and quarantine
 * behaviour observable against a near-zero residual floor.
 */

#ifndef TDP_STREAM_SYNTHETIC_HH
#define TDP_STREAM_SYNTHETIC_HH

#include <array>
#include <cstdint>

#include "core/estimator.hh"
#include "measure/trace.hh"
#include "stream/sample.hh"

namespace tdp {
namespace stream {
namespace synthetic {

/**
 * One sample at load @p u in [0, 1], with per-rail measured watts
 * that are exactly representable by the paper's model forms. @p i
 * varies the secondary activity (uops, interrupts, DMA) so refit
 * windows are full-rank.
 */
AlignedSample syntheticSample(double u, int i, int cpus = 4);

/** Training trace sweeping the full load range. */
SampleTrace trainingTrace(int samples = 64);

/** A fully trained degradable model set for this fleet's physics. */
SystemPowerEstimator trainedEstimator();

/**
 * A fleet of clients shipping raw *cumulative* counters that wrap at
 * the given width. Cumulative sums stay far below 2^53, so the wrap
 * arithmetic is exact and runs reproduce bitwise.
 */
class Fleet
{
  public:
    Fleet(int clients, int width_bits, uint64_t base_client = 100);

    /**
     * Next sample of client @p c at load @p u. @p cpu_shift_watts
     * offsets the *measured* CPU watts (injected drift: the physics
     * changed but the counters did not).
     */
    StreamSample next(int c, double u, double cpu_shift_watts = 0.0);

    /** Client id of fleet slot @p c. */
    uint64_t clientId(int c) const
    {
        return baseClient_ + static_cast<uint64_t>(c);
    }

  private:
    struct Client
    {
        uint64_t seq = 0;
        double time = 0.0;
        std::array<double, numPerfEvents> cumulative{};
    };

    int widthBits_;
    uint64_t baseClient_;
    std::vector<Client> clients_;
};

} // namespace synthetic
} // namespace stream
} // namespace tdp

#endif // TDP_STREAM_SYNTHETIC_HH

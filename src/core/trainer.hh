/**
 * @file
 * Model trainer implementing the paper's training discipline
 * (section 3.2.2): each subsystem model is fit on a single workload
 * trace that exercises that subsystem with high utilisation and high
 * variation, then validated on the whole suite.
 */

#ifndef TDP_CORE_TRAINER_HH
#define TDP_CORE_TRAINER_HH

#include <map>
#include <string>

#include "core/estimator.hh"
#include "measure/trace.hh"

namespace tdp {

/** Trains an estimator from per-rail training traces. */
class ModelTrainer
{
  public:
    /**
     * Register the training trace for a rail. The paper's choices:
     * CPU <- staggered gcc, memory <- staggered mcf, disk and I/O <-
     * the synthetic DiskLoad, chipset <- any (constant fit).
     */
    void setTrainingTrace(Rail rail, const SampleTrace &trace);

    /** True when every rail has a registered trace. */
    bool complete() const;

    /** Train all models of the estimator on their rails' traces. */
    void train(SystemPowerEstimator &estimator) const;

    /** The registered trace for one rail; fatal() when missing. */
    const SampleTrace &trainingTrace(Rail rail) const;

  private:
    std::map<int, SampleTrace> traces_;
};

} // namespace tdp

#endif // TDP_CORE_TRAINER_HH

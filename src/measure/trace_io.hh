/**
 * @file
 * Versioned binary serialisation of SampleTrace.
 *
 * The CSV export (SampleTrace::writeCsv) is lossy: it rounds values,
 * sums counters across CPUs and cannot represent NaN payloads. The
 * binary format here is *lossless* - every double is stored as its
 * raw 64-bit pattern, per-CPU counter vectors are kept per CPU - so
 * a deserialised trace is bit-identical to the original, including
 * the NaN/Inf samples a fault-injected measurement run produces.
 * That property is what lets the trace cache hand back a stored
 * trace in place of a fresh simulation without changing a single
 * output bit.
 *
 * Layout (all integers little-endian, doubles as little-endian bit
 * patterns):
 *
 *   header:
 *     u8[4]  magic            "TDPT"
 *     u32    version          traceFormatVersion
 *     u32    perfEventCount   numPerfEvents at write time
 *     u32    railCount        numRails at write time
 *     u64    fingerprint      caller-supplied key (0 if unused)
 *     u64    sampleCount
 *     u64    payloadBytes
 *     u64    payloadChecksum  FNV-1a 64 over the payload bytes
 *   payload, per sample:
 *     f64    time, interval
 *     f64    osInterruptsTotal, osDiskInterrupts, osDeviceInterrupts
 *     f64    measuredWatts[railCount]
 *     u32    cpuCount
 *     f64    counts[perfEventCount] x cpuCount
 *
 * The event/rail counts in the header double as a layout check: a
 * file written by a build with a different enum layout is rejected
 * rather than misparsed. Every reject path is available either as a
 * fatal() (strict readers like trace_dump) or as a false return with
 * the reason (the cache, which falls back to re-simulation).
 */

#ifndef TDP_MEASURE_TRACE_IO_HH
#define TDP_MEASURE_TRACE_IO_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "measure/trace.hh"

namespace tdp {

/** Current binary trace format version. */
constexpr uint32_t traceFormatVersion = 1;

/** FNV-1a 64-bit offset basis. */
constexpr uint64_t fnv1aBasis = 0xcbf29ce484222325ull;

/** FNV-1a 64-bit hash of a byte range, chainable via `seed`. */
uint64_t fnv1a64(const void *data, size_t len,
                 uint64_t seed = fnv1aBasis);

/**
 * Write the trace in the binary format described above.
 *
 * @param fingerprint opaque identity key stored in the header; the
 *        trace cache stores the RunSpec fingerprint here so a
 *        hash-collision on the file name is still detected.
 */
void writeTraceBinary(std::ostream &os, const SampleTrace &trace,
                      uint64_t fingerprint = 0);

/**
 * Read a binary trace, verifying magic, version, layout counts and
 * payload checksum. Returns false with a human-readable reason in
 * *error on any mismatch, truncation or corruption; the stream may
 * be partially consumed in that case. On success the header
 * fingerprint is returned through *fingerprint when given.
 */
bool tryReadTraceBinary(std::istream &is, SampleTrace &out,
                        uint64_t *fingerprint = nullptr,
                        std::string *error = nullptr);

/** Strict variant of tryReadTraceBinary: fatal() on any failure. */
SampleTrace readTraceBinary(std::istream &is,
                            uint64_t *fingerprint = nullptr);

/**
 * True when the stream starts with the binary trace magic. Peeks
 * without consuming, so the same stream can then be handed to either
 * the binary or the CSV reader.
 */
bool looksLikeTraceBinary(std::istream &is);

/**
 * True when the two traces are indistinguishable at the bit level:
 * same sample count and every field of every sample (including
 * per-CPU counter vectors) has the same 64-bit pattern, so NaNs
 * compare by payload rather than IEEE semantics.
 */
bool traceBitIdentical(const SampleTrace &a, const SampleTrace &b);

} // namespace tdp

#endif // TDP_MEASURE_TRACE_IO_HH

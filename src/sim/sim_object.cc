/**
 * @file
 * SimObject registration.
 */

#include "sim/sim_object.hh"

#include "sim/system.hh"

namespace tdp {

SimObject::SimObject(System &system, std::string name)
    : system_(system), name_(std::move(name))
{
    system_.registerObject(this);
}

} // namespace tdp

/**
 * @file
 * Tests for the parallel experiment engine: scheduling semantics of
 * ExperimentPool and the determinism contract — a multi-worker sweep
 * must produce bit-identical results to the serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/estimator.hh"
#include "core/validator.hh"
#include "exp/experiment_pool.hh"
#include "platform/server.hh"
#include "workloads/suite.hh"

namespace tdp {
namespace {

TEST(ExperimentPool, MapReturnsResultsInIndexOrder)
{
    ExperimentPool pool(4);
    const std::vector<int> out =
        pool.map<int>(23, [](size_t i) { return static_cast<int>(i) * 3 + 1; });
    ASSERT_EQ(out.size(), 23u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3 + 1);
}

TEST(ExperimentPool, ForEachVisitsEveryIndexExactlyOnce)
{
    ExperimentPool pool(4);
    std::vector<std::atomic<int>> visits(100);
    pool.forEach(visits.size(),
                 [&](size_t i) { visits[i].fetch_add(1); });
    for (const std::atomic<int> &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ExperimentPool, MoreWorkersThanJobsIsFine)
{
    ExperimentPool pool(16);
    const std::vector<int> out =
        pool.map<int>(3, [](size_t i) { return static_cast<int>(i); });
    EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(ExperimentPool, ZeroJobsRunsNothing)
{
    ExperimentPool pool(4);
    int calls = 0;
    pool.forEach(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ExperimentPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ExperimentPool::defaultJobs(), 1);
    EXPECT_GE(ExperimentPool().jobs(), 1);
    EXPECT_EQ(ExperimentPool(3).jobs(), 3);
}

TEST(ExperimentPool, LowestIndexExceptionWinsAndOthersComplete)
{
    ExperimentPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.forEach(8, [&](size_t i) {
            if (i == 5 || i == 2)
                throw std::runtime_error("job " + std::to_string(i));
            completed.fetch_add(1);
        });
        FAIL() << "expected the job exception to propagate";
    } catch (const std::runtime_error &e) {
        // Deterministic pick: the failure with the lowest job index.
        EXPECT_STREQ(e.what(), "job 2");
    }
    // A failure must not abort the rest of the sweep.
    EXPECT_EQ(completed.load(), 6);
}

TEST(ExperimentPool, SerialPathPropagatesExceptions)
{
    ExperimentPool pool(1);
    EXPECT_THROW(pool.forEach(3,
                              [](size_t i) {
                                  if (i == 1)
                                      throw std::runtime_error("boom");
                              }),
                 std::runtime_error);
}

/**
 * Run the paper's 12-workload characterisation sweep with the given
 * worker count and return the per-workload, per-rail model-error
 * table. Jobs are index-addressed, so any worker count must yield
 * bit-identical numbers.
 */
std::vector<ValidationResult>
sweepModelErrors(int workers)
{
    const std::vector<std::string> names = paperWorkloadOrder();

    // Fixed plausible coefficients: the sweep compares worker counts
    // against each other, not against the paper, so training runs
    // would only add simulation time.
    SystemPowerEstimator est = SystemPowerEstimator::makePaperModelSet();
    est.model(Rail::Cpu).setCoefficients({37.0, 26.45, 4.31});
    est.model(Rail::Memory).setCoefficients({27.9, 5.2e-4, 4.8e-9});
    est.model(Rail::Disk).setCoefficients({21.6, 2.5e6, 0.0, 5.3e3, 0.0});
    est.model(Rail::Io).setCoefficients({32.6, 3.1e7, 0.0});
    est.model(Rail::Chipset).setCoefficients({19.9});

    ExperimentPool pool(workers);
    const std::vector<SampleTrace> traces =
        pool.map<SampleTrace>(names.size(), [&](size_t i) {
            Server server(0x5eed2007);
            if (names[i] != "idle")
                server.runner().launchStaggered(names[i], 4, 0.25, 0.5);
            server.run(12.0);
            return server.rig().collect().slice(2.0, 13.0);
        });

    const Validator validator(est, 0.0);
    std::vector<ValidationResult> results;
    results.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i)
        results.push_back(validator.validate(names[i], traces[i]));
    return results;
}

TEST(ExperimentPool, TwelveWorkloadSweepIsBitIdenticalAcrossWorkerCounts)
{
    const std::vector<ValidationResult> serial = sweepModelErrors(1);
    const std::vector<ValidationResult> parallel = sweepModelErrors(4);

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), paperWorkloadOrder().size());
    for (size_t w = 0; w < serial.size(); ++w) {
        EXPECT_EQ(serial[w].workload, parallel[w].workload);
        for (int r = 0; r < numRails; ++r) {
            const Rail rail = static_cast<Rail>(r);
            // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the contract is
            // bit-identical, not merely close.
            EXPECT_EQ(serial[w].error(rail), parallel[w].error(rail))
                << serial[w].workload << " rail " << r;
        }
    }
}

} // namespace
} // namespace tdp

#!/usr/bin/env python3
"""Validate a tdp-run-manifest JSON document (stdlib only).

Usage: validate_manifest.py MANIFEST.json [--expect-runs N]
           [--require-stream] [--require-stream-timeline]
           [--require-checkpoint]

Checks the schema-versioned structure written by obs::RunManifest:
field presence, types, fingerprint format, histogram snapshot shape.
Exits non-zero with a message naming the first violation.
"""

import argparse
import json
import re
import sys

FINGERPRINT_RE = re.compile(r"^[0-9a-f]{16}$")


def fail(msg):
    print(f"validate_manifest: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def check_number(value, where):
    expect(isinstance(value, (int, float)) and not isinstance(value, bool),
           f"{where} must be a number, got {type(value).__name__}")


def check_stats(stats):
    expect(isinstance(stats, dict), "stats must be an object")
    for group in ("counters", "gauges", "histograms"):
        expect(group in stats, f"stats.{group} missing")
        expect(isinstance(stats[group], dict),
               f"stats.{group} must be an object")
    for name, value in stats["counters"].items():
        expect(isinstance(value, int) and value >= 0,
               f"counter {name} must be a non-negative integer")
    for name, value in stats["gauges"].items():
        check_number(value, f"gauge {name}")
    for name, hist in stats["histograms"].items():
        expect(isinstance(hist, dict), f"histogram {name} must be an object")
        for field in ("count", "sum", "buckets"):
            expect(field in hist, f"histogram {name}.{field} missing")
        expect(isinstance(hist["buckets"], list) and len(hist["buckets"]) <= 65,
               f"histogram {name}.buckets must be a list of <= 65 buckets")
        expect(sum(hist["buckets"]) == hist["count"],
               f"histogram {name}: bucket sum != count")


STREAM_INGEST_KEYS = (
    "offered", "admitted", "shed", "overflow", "high_water",
    "quarantined_at_door", "ticks", "drained")
STREAM_SESSION_KEYS = (
    "created", "accepted", "baselines", "wraps", "non_finite",
    "out_of_range", "duplicate_seq", "out_of_order_seq", "stale_time",
    "zero_cycles", "rejected_quarantined", "quarantines", "evicted",
    "active", "quarantined_now")
STREAM_SLO_KEYS = ("samples", "p50_ticks", "p99_ticks", "max_ticks")
STREAM_RAILS = ("cpu", "chipset", "memory", "io", "disk")
STREAM_RAIL_COUNTER_KEYS = (
    "refits", "full_qr_refits", "verified_refits",
    "degraded_publishes", "unestimable", "drift_engaged",
    "drift_recovered", "drift_relapses", "rls_rows")
STREAM_DRIFT_STATES = ("healthy", "degraded", "probation")


def check_stream_sections(sections):
    """Schema of the StreamService manifest sections (PR 7)."""
    for name, keys in (("stream.ingest", STREAM_INGEST_KEYS),
                       ("stream.session", STREAM_SESSION_KEYS),
                       ("stream.slo", STREAM_SLO_KEYS)):
        expect(name in sections, f"section {name} missing "
               f"(did the sweep run a drift phase with observability "
               f"on?)")
        for key in keys:
            expect(key in sections[name],
                   f"section {name}.{key} missing")
            check_number(sections[name][key], f"section {name}.{key}")

    expect("stream.rails" in sections, "section stream.rails missing")
    rails = sections["stream.rails"]
    for rail in STREAM_RAILS:
        state = rails.get(f"{rail}.state")
        expect(isinstance(state, str)
               and state.lower() in STREAM_DRIFT_STATES,
               f"stream.rails.{rail}.state must be one of "
               f"{STREAM_DRIFT_STATES}, got {state!r}")
        for key in STREAM_RAIL_COUNTER_KEYS:
            full = f"{rail}.{key}"
            expect(full in rails, f"stream.rails.{full} missing")
            check_number(rails[full], f"stream.rails.{full}")
        for key in ("baseline_rmse", "last_refit_rmse"):
            check_number(rails.get(f"{rail}.{key}"),
                         f"stream.rails.{rail}.{key}")


STREAM_TIMELINE_SUMMARY_KEYS = (
    "window_ticks", "capacity", "windows", "recorded", "dropped")
STREAM_TIMELINE_WINDOW_KEYS = (
    "tick", "offered", "admitted", "shed", "overflow", "accepted",
    "invalid", "quarantines", "evicted", "refits", "drift_engaged",
    "drift_recovered", "checkpoints", "occupancy_max", "occupancy_mean",
    "latency_count", "latency_max_ticks", "p50_ticks", "p99_ticks",
    "p999_ticks")
STREAM_HDR_KEYS = (
    "count", "max_ticks", "p50_ticks", "p99_ticks", "p999_ticks",
    "sub_bucket_bits", "rel_error_bound", "buckets_used")
STREAM_FLIGHT_KEYS = ("rings", "capacity", "recorded", "dropped")


def check_stream_timeline_sections(sections):
    """Schema of the StreamTelemetry manifest sections (PR 9):
    the tick-indexed timeline, the HDR latency summary and the
    flight-recorder totals."""
    expect("stream.timeline" in sections,
           "section stream.timeline missing (was the bench run with "
           "--timeline-out / TDP_TIMELINE_OUT?)")
    timeline = sections["stream.timeline"]
    for key in STREAM_TIMELINE_SUMMARY_KEYS:
        expect(key in timeline, f"stream.timeline.{key} missing")
        check_number(timeline[key], f"stream.timeline.{key}")
    windows = timeline["windows"]
    expect(isinstance(windows, int) and windows >= 1,
           "stream.timeline.windows must be a positive integer - an "
           "empty timeline proves nothing")
    last_tick = -1
    for w in range(windows):
        prefix = f"w{w}."
        for key in STREAM_TIMELINE_WINDOW_KEYS:
            full = prefix + key
            expect(full in timeline,
                   f"stream.timeline.{full} missing")
            check_number(timeline[full], f"stream.timeline.{full}")
        state = timeline.get(prefix + "drift_state")
        expect(isinstance(state, str)
               and state.lower() in STREAM_DRIFT_STATES,
               f"stream.timeline.{prefix}drift_state must be one of "
               f"{STREAM_DRIFT_STATES}, got {state!r}")
        tick = timeline[prefix + "tick"]
        expect(tick > last_tick,
               f"stream.timeline.{prefix}tick must increase "
               f"(got {tick} after {last_tick})")
        last_tick = tick
        if timeline[prefix + "latency_count"] > 0:
            p50 = timeline[prefix + "p50_ticks"]
            p99 = timeline[prefix + "p99_ticks"]
            p999 = timeline[prefix + "p999_ticks"]
            pmax = timeline[prefix + "latency_max_ticks"]
            expect(p50 <= p99 <= p999 <= pmax,
                   f"stream.timeline.{prefix} quantiles must be "
                   f"ordered p50 <= p99 <= p999 <= max, got "
                   f"{p50}/{p99}/{p999}/{pmax}")

    expect("stream.latency_hdr" in sections,
           "section stream.latency_hdr missing")
    hdr = sections["stream.latency_hdr"]
    for key in STREAM_HDR_KEYS:
        expect(key in hdr, f"stream.latency_hdr.{key} missing")
        check_number(hdr[key], f"stream.latency_hdr.{key}")
    expect(0 < hdr["rel_error_bound"] <= 0.5,
           "stream.latency_hdr.rel_error_bound out of range")
    if hdr["count"] > 0:
        expect(hdr["p50_ticks"] <= hdr["p99_ticks"]
               <= hdr["p999_ticks"] <= hdr["max_ticks"],
               "stream.latency_hdr quantiles must be ordered")

    expect("stream.flight" in sections,
           "section stream.flight missing")
    flight = sections["stream.flight"]
    for key in STREAM_FLIGHT_KEYS:
        expect(key in flight, f"stream.flight.{key} missing")
        check_number(flight[key], f"stream.flight.{key}")
    expect(flight["rings"] >= 2,
           "stream.flight.rings must cover the shards plus the "
           "service ring")


STREAM_CHECKPOINT_KEYS = (
    "enabled", "every_ticks", "generation", "tick", "digest", "crc",
    "written", "failures", "restores", "fallbacks")


def check_stream_checkpoint_section(sections):
    """Schema of the StreamCheckpointer manifest section (PR 10)."""
    expect("stream.checkpoint" in sections,
           "section stream.checkpoint missing (was the bench run "
           "with --checkpoint / TDP_STREAM_CHECKPOINT?)")
    ckpt = sections["stream.checkpoint"]
    for key in STREAM_CHECKPOINT_KEYS:
        expect(key in ckpt, f"stream.checkpoint.{key} missing")
        check_number(ckpt[key], f"stream.checkpoint.{key}")
    expect(ckpt["enabled"] == 1, "stream.checkpoint.enabled must be 1")
    expect(ckpt["every_ticks"] >= 1,
           "stream.checkpoint.every_ticks must be a positive cadence")
    expect(ckpt["written"] >= 1,
           "stream.checkpoint.written must be >= 1 - a checkpointed "
           "run that never published a generation proves nothing")
    expect(ckpt["generation"] >= ckpt["written"],
           "stream.checkpoint.generation lags the written count")
    expect(ckpt["fallbacks"] <= ckpt["restores"],
           "stream.checkpoint.fallbacks cannot exceed restores")


def check_manifest(doc, expect_runs):
    expect(isinstance(doc, dict), "document must be a JSON object")
    expect(doc.get("schema") == "tdp-run-manifest",
           f"schema must be 'tdp-run-manifest', got {doc.get('schema')!r}")
    expect(doc.get("version") == 1, f"version must be 1, got {doc.get('version')!r}")
    expect(isinstance(doc.get("tool"), str) and doc["tool"],
           "tool must be a non-empty string")
    expect(isinstance(doc.get("jobs"), int) and doc["jobs"] >= 1,
           "jobs must be a positive integer")

    runs = doc.get("runs")
    expect(isinstance(runs, list), "runs must be a list")
    if expect_runs is not None:
        expect(len(runs) == expect_runs,
               f"expected {expect_runs} runs, found {len(runs)}")
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        expect(isinstance(run, dict), f"{where} must be an object")
        expect(isinstance(run.get("workload"), str) and run["workload"],
               f"{where}.workload must be a non-empty string")
        expect(isinstance(run.get("samples"), int) and run["samples"] >= 0,
               f"{where}.samples must be a non-negative integer")
        expect(isinstance(run.get("fingerprint"), str)
               and FINGERPRINT_RE.match(run["fingerprint"]),
               f"{where}.fingerprint must be 16 lowercase hex digits")
        expect(isinstance(run.get("from_cache"), bool),
               f"{where}.from_cache must be a boolean")
        check_number(run.get("sim_seconds"), f"{where}.sim_seconds")

    metrics = doc.get("metrics")
    expect(isinstance(metrics, list), "metrics must be a list")
    for i, metric in enumerate(metrics):
        where = f"metrics[{i}]"
        expect(isinstance(metric, dict), f"{where} must be an object")
        expect(isinstance(metric.get("name"), str) and metric["name"],
               f"{where}.name must be a non-empty string")
        check_number(metric.get("value"), f"{where}.value")
        expect(isinstance(metric.get("unit"), str),
               f"{where}.unit must be a string")

    sections = doc.get("sections")
    expect(isinstance(sections, dict), "sections must be an object")
    for name, entries in sections.items():
        expect(isinstance(entries, dict),
               f"section {name} must be an object")
        for key, value in entries.items():
            expect(isinstance(value, (int, float, str))
                   and not isinstance(value, bool),
                   f"section {name}.{key} must be a number or string")

    expect("stats" in doc, "stats missing")
    check_stats(doc["stats"])

    if "span_trace" in doc:
        span = doc["span_trace"]
        expect(isinstance(span, dict), "span_trace must be an object")
        expect(isinstance(span.get("path"), str) and span["path"],
               "span_trace.path must be a non-empty string")
        for field in ("recorded", "dropped"):
            expect(isinstance(span.get(field), int) and span[field] >= 0,
                   f"span_trace.{field} must be a non-negative integer")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("manifest")
    parser.add_argument("--expect-runs", type=int, default=None)
    parser.add_argument("--require-stream", action="store_true",
                        help="additionally require the stream.* "
                             "sections written by the streaming "
                             "estimation service")
    parser.add_argument("--require-stream-timeline",
                        action="store_true",
                        help="additionally require the telemetry "
                             "sections (stream.timeline, "
                             "stream.latency_hdr, stream.flight) "
                             "written when --timeline-out is set")
    parser.add_argument("--require-checkpoint", action="store_true",
                        help="additionally require the "
                             "stream.checkpoint section written "
                             "when checkpointing is enabled "
                             "(--checkpoint / TDP_STREAM_CHECKPOINT)")
    args = parser.parse_args()

    try:
        with open(args.manifest, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot load {args.manifest}: {err}")

    check_manifest(doc, args.expect_runs)
    if args.require_stream:
        check_stream_sections(doc.get("sections", {}))
    if args.require_stream_timeline:
        check_stream_timeline_sections(doc.get("sections", {}))
    if args.require_checkpoint:
        check_stream_checkpoint_section(doc.get("sections", {}))
    print(f"validate_manifest: {args.manifest} OK "
          f"({len(doc['runs'])} runs, {len(doc['metrics'])} metrics, "
          f"{len(doc['stats']['counters'])} counters)")


if __name__ == "__main__":
    main()

/**
 * @file
 * Implementation of the streaming JSON writer.
 */

#include "obs/json_writer.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace tdp {
namespace obs {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty())
        return;
    Level &level = stack_.back();
    if (level.isObject && !level.keyPending)
        panic("JsonWriter: value emitted inside an object without a "
              "key");
    if (level.keyPending) {
        level.keyPending = false;
        return; // key() already handled the comma
    }
    if (level.hasItems)
        os_ << ',';
    level.hasItems = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Level{true, false, false});
}

void
JsonWriter::endObject()
{
    if (stack_.empty() || !stack_.back().isObject ||
        stack_.back().keyPending)
        panic("JsonWriter: unbalanced endObject");
    stack_.pop_back();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Level{false, false, false});
}

void
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back().isObject)
        panic("JsonWriter: unbalanced endArray");
    stack_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || !stack_.back().isObject ||
        stack_.back().keyPending)
        panic("JsonWriter: key() outside an object or after a key");
    Level &level = stack_.back();
    if (level.hasItems)
        os_ << ',';
    level.hasItems = true;
    level.keyPending = true;
    os_ << '"' << jsonEscape(name) << "\":";
}

void
JsonWriter::value(std::string_view text)
{
    beforeValue();
    os_ << '"' << jsonEscape(text) << '"';
}

void
JsonWriter::value(double number)
{
    beforeValue();
    if (!std::isfinite(number)) {
        os_ << "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", number);
    os_ << buf;
}

void
JsonWriter::value(uint64_t number)
{
    beforeValue();
    os_ << number;
}

void
JsonWriter::value(int64_t number)
{
    beforeValue();
    os_ << number;
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    os_ << (flag ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    beforeValue();
    os_ << "null";
}

} // namespace obs
} // namespace tdp

/**
 * @file
 * Tests for the fixed-capacity sample ring.
 */

#include <gtest/gtest.h>

#include "stream/ring.hh"

namespace tdp {
namespace stream {
namespace {

StreamSample
sampleWithSeq(uint64_t seq)
{
    StreamSample s;
    s.client = 7;
    s.seq = seq;
    return s;
}

TEST(SampleRing, StartsEmpty)
{
    SampleRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_EQ(ring.size(), 0u);
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.full());

    StreamSample out;
    EXPECT_FALSE(ring.pop(out));
}

TEST(SampleRing, FifoOrder)
{
    SampleRing ring(4);
    for (uint64_t i = 1; i <= 3; ++i)
        EXPECT_TRUE(ring.push(sampleWithSeq(i)));
    StreamSample out;
    for (uint64_t i = 1; i <= 3; ++i) {
        ASSERT_TRUE(ring.pop(out));
        EXPECT_EQ(out.seq, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SampleRing, RefusesWhenFull)
{
    SampleRing ring(2);
    EXPECT_TRUE(ring.push(sampleWithSeq(1)));
    EXPECT_TRUE(ring.push(sampleWithSeq(2)));
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.push(sampleWithSeq(3)));
    EXPECT_EQ(ring.size(), 2u);

    // Earlier entries survive the refused push untouched.
    StreamSample out;
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out.seq, 1u);
}

TEST(SampleRing, WrapsAroundStorage)
{
    SampleRing ring(3);
    StreamSample out;
    // Interleave pushes and pops so head walks past the end.
    for (uint64_t i = 1; i <= 20; ++i) {
        EXPECT_TRUE(ring.push(sampleWithSeq(i)));
        ASSERT_TRUE(ring.pop(out));
        EXPECT_EQ(out.seq, i);
    }
    EXPECT_TRUE(ring.empty());
}

TEST(SampleRing, ZeroCapacityIsFatal)
{
    EXPECT_THROW(SampleRing ring(0), FatalError);
}

} // namespace
} // namespace stream
} // namespace tdp

/**
 * @file
 * Crash-safe checkpointing of the streaming estimation service.
 *
 * A checkpoint is one binary file holding the *complete* mutable
 * state of a StreamService at a tick boundary: every shard's
 * SessionTable columns and queued ring samples, every rail's
 * WindowedRls block partials, stored window rows and DriftGuard
 * state, the primary-model coefficients, the cumulative
 * ingest/session/SLO counters, the latency histogram and the fold
 * digest itself. Restoring a checkpoint into a freshly constructed
 * service (same config, same trained estimator) and re-offering
 * every sample after the checkpoint tick therefore reproduces the
 * uninterrupted run bit for bit - verdicts, published watts, refits
 * and fold digest - at any `--jobs` count. That is the bounded-loss
 * contract: a crash forgets at most `everyTicks` ticks of input,
 * never any state.
 *
 * Format ("TDPC", version 1, native endianness - a checkpoint is a
 * crash-recovery artefact for the machine that wrote it, not an
 * interchange format):
 *
 *   magic[4] version:u32 fingerprint:u64 generation:u64 tick:u64
 *   digest:u64 sectionCount:u32
 *   { id:u32 length:u64 payload[length] crc:u64 } x sectionCount
 *
 * Every section carries its own FNV-1a checksum, so a torn write is
 * detected wherever it lands. Publication goes through
 * writeFileAtomic (temp + fsync + rename + directory fsync) into a
 * two-generation rotation - generation g lands in `<base>.gen<g%2>`
 * - so the previous complete checkpoint always survives the next
 * write. The loader validates both generations and falls back to
 * the older one with a warning when the newest is torn or corrupt;
 * only two unusable generations (or a config-fingerprint mismatch)
 * fail the restore.
 *
 * The fingerprint hashes every determinism-relevant config field
 * plus the (runtime-immutable) fallback-rung coefficients, so a
 * checkpoint from a different seed, topology or training run is
 * rejected instead of silently diverging.
 */

#ifndef TDP_STREAM_CHECKPOINT_HH
#define TDP_STREAM_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace tdp {
namespace obs {
class RunManifest;
} // namespace obs

namespace stream {

class StreamService;

/** Checkpoint format version written by this build. */
constexpr uint32_t kCheckpointVersion = 1;

/** Section ids. @{ */
constexpr uint32_t kSecIngest = 1;  ///< ShardedIngest counters
constexpr uint32_t kSecService = 2; ///< rails, digest, counters, SLO
constexpr uint32_t kSecMeta = 3;    ///< opaque harness payload
constexpr uint32_t kSecShardBase = 100; ///< + shard: sessions + ring
/** @} */

/**
 * Append-only little serializer the checkpointed classes write
 * themselves into. Values are stored as raw native bytes; doubles
 * go through their bit pattern so NaNs and -0.0 round-trip exactly.
 */
class CheckpointWriter
{
  public:
    void u8(uint8_t v) { append(&v, sizeof v); }
    void u32(uint32_t v) { append(&v, sizeof v); }
    void u64(uint64_t v) { append(&v, sizeof v); }
    void f64(double v) { append(&v, sizeof v); }
    void bytes(const void *p, size_t n) { append(p, n); }

    const std::string &buffer() const { return buf_; }

  private:
    void append(const void *p, size_t n)
    {
        buf_.append(static_cast<const char *>(p), n);
    }

    std::string buf_;
};

/**
 * Bounds-checked reader over one section payload. Corruption never
 * fatals: the first short or invalid read flips the reader into a
 * failed state (subsequent reads return zeros) and the restore path
 * degrades to the previous generation or a clean error.
 */
class CheckpointReader
{
  public:
    CheckpointReader(const void *data, size_t size)
        : data_(static_cast<const unsigned char *>(data)), size_(size)
    {
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }

    /** Record the first failure; later reads keep returning zeros. */
    void fail(const std::string &why)
    {
        if (ok_) {
            ok_ = false;
            error_ = why;
        }
    }

    uint8_t u8() { return read<uint8_t>(); }
    uint32_t u32() { return read<uint32_t>(); }
    uint64_t u64() { return read<uint64_t>(); }
    double f64() { return read<double>(); }

    void bytes(void *out, size_t n);

    /** Unconsumed payload bytes (0 once failed). */
    size_t remaining() const { return ok_ ? size_ - pos_ : 0; }

  private:
    template <typename T>
    T read()
    {
        T v{};
        bytes(&v, sizeof v);
        return v;
    }

    const unsigned char *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
    std::string error_;
};

/** Identity of one written (or restored) checkpoint. */
struct CheckpointInfo
{
    uint64_t generation = 0;

    /** Service tick the checkpoint captured (ticks fully folded). */
    uint64_t tick = 0;

    /** Service fold digest at that tick. */
    uint64_t digest = 0;

    /** FNV-1a over the complete file bytes. */
    uint64_t crc = 0;

    std::string path;
};

/** Rotation slot of @p generation: `<base>.gen<generation % 2>`. */
std::string checkpointGenerationPath(const std::string &base,
                                     uint64_t generation);

/**
 * Serialize the full service state and atomically publish it as
 * generation @p generation of @p base. @p meta is an opaque payload
 * the restorer hands back (the sweep stores its phase identity
 * there). False on I/O failure with a one-line reason in *error;
 * the previous generation is never disturbed.
 */
bool writeStreamCheckpoint(const StreamService &service,
                           const std::string &base, uint64_t generation,
                           const std::string &meta, CheckpointInfo *info,
                           std::string *error);

/** Outcome of one restore attempt. */
struct RestoreResult
{
    bool ok = false;

    /**
     * True when the newest on-disk generation was unusable (torn,
     * corrupt, wrong fingerprint) and an older one served instead.
     */
    bool usedFallback = false;

    /** The restored checkpoint (valid when ok). */
    CheckpointInfo info;

    /** The opaque meta payload stored at write time. */
    std::string meta;

    /** Human-readable fallback detail ("" when the newest served). */
    std::string warning;

    /** Failure reason ("" when ok). */
    std::string error;
};

/**
 * Restore the newest usable generation of @p base into @p service,
 * which must be freshly constructed (tick 0, no sessions) with the
 * same config and trained estimator as the writer - enforced via
 * the config fingerprint. On failure the service contents are
 * unspecified and must be discarded; nothing is ever fatal()ed for
 * on-disk corruption.
 */
RestoreResult restoreStreamCheckpoint(StreamService &service,
                                      const std::string &base);

/**
 * Read the opaque meta payload of the newest parseable generation
 * without restoring anything - the harness stores its run identity
 * there, and needs it *before* it can construct the matching
 * service. False with a reason when no generation parses.
 */
bool peekStreamCheckpointMeta(const std::string &base,
                              std::string *meta, std::string *error);

/**
 * Periodic checkpoint driver: call onTick() after every
 * service.tick() and a checkpoint is written whenever the tick
 * count crosses the cadence, in deterministic shard order, plus on
 * demand (writeNow(), e.g. from a SIGTERM drain). Failures are
 * counted and warned, never fatal - the service keeps running on
 * the previous generation.
 */
class StreamCheckpointer
{
  public:
    /**
     * @param startGeneration 0 starts a fresh rotation (both slots
     *        of @p base are deleted); pass a restored generation to
     *        continue its rotation instead.
     */
    StreamCheckpointer(StreamService &service, std::string base,
                       uint64_t everyTicks,
                       uint64_t startGeneration = 0);

    /** Opaque payload stored in every subsequent checkpoint. */
    void setMeta(std::string payload) { meta_ = std::move(payload); }

    /** Checkpoint when the service crossed the cadence boundary. */
    void onTick();

    /** Write generation last+1 immediately. */
    bool writeNow();

    const std::string &base() const { return base_; }
    uint64_t everyTicks() const { return every_; }

    /** Last generation written (0 before the first). */
    uint64_t generation() const { return generation_; }

    uint64_t written() const { return written_; }
    uint64_t failures() const { return failures_; }
    const CheckpointInfo &last() const { return last_; }

    /** Flatten into the "stream.checkpoint" manifest section. */
    void addManifestSections(obs::RunManifest &manifest) const;

  private:
    StreamService &service_;
    std::string base_;
    uint64_t every_;
    std::string meta_;
    uint64_t generation_ = 0;
    uint64_t written_ = 0;
    uint64_t failures_ = 0;
    CheckpointInfo last_;
};

} // namespace stream
} // namespace tdp

#endif // TDP_STREAM_CHECKPOINT_HH

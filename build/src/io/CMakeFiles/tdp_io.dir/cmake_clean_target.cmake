file(REMOVE_RECURSE
  "libtdp_io.a"
)

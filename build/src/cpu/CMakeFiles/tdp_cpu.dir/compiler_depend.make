# Empty compiler generated dependencies file for tdp_cpu.
# This may be replaced when dependencies are built.

/**
 * @file
 * Tests for the rail sensing chain.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/running_stats.hh"
#include "measure/rail.hh"

namespace tdp {
namespace {

RailChannel::Params
quietParams()
{
    RailChannel::Params p;
    p.adcNoiseSigma = 0.0;
    p.biasWanderSigma = 0.0;
    p.quantizationStep = 0.0;
    p.filterTau = 4e-3;
    return p;
}

TEST(RailChannel, PrimesToFirstValue)
{
    double truth = 50.0;
    RailChannel rail("r", [&] { return truth; }, quietParams(), Rng(1));
    EXPECT_NEAR(rail.sampleAverage(1e-3, 10), 50.0, 1e-9);
}

TEST(RailChannel, RcFilterSmoothsSteps)
{
    double truth = 10.0;
    RailChannel rail("r", [&] { return truth; }, quietParams(), Rng(1));
    rail.sampleAverage(1e-3, 10);
    truth = 20.0;
    const double after_one = rail.sampleAverage(1e-3, 10);
    // One 1 ms step against a 4 ms tau: ~22% of the way.
    EXPECT_GT(after_one, 11.0);
    EXPECT_LT(after_one, 14.0);
    // Converges eventually.
    for (int i = 0; i < 50; ++i)
        rail.sampleAverage(1e-3, 10);
    EXPECT_NEAR(rail.filteredPower(), 20.0, 0.01);
}

TEST(RailChannel, AveragingReducesNoise)
{
    RailChannel::Params noisy = quietParams();
    noisy.adcNoiseSigma = 2.0;
    RailChannel one("one", [] { return 30.0; }, noisy, Rng(2));
    RailChannel many("many", [] { return 30.0; }, noisy, Rng(3));
    RunningStats s1, s100;
    for (int i = 0; i < 4000; ++i) {
        s1.add(one.sampleAverage(1e-3, 1));
        s100.add(many.sampleAverage(1e-3, 100));
    }
    EXPECT_NEAR(s1.stddev(), 2.0, 0.15);
    EXPECT_NEAR(s100.stddev(), 0.2, 0.03);
}

TEST(RailChannel, QuantizationSnapsValues)
{
    RailChannel::Params p = quietParams();
    p.quantizationStep = 0.5;
    RailChannel rail("r", [] { return 10.3; }, p, Rng(4));
    EXPECT_DOUBLE_EQ(rail.sampleAverage(1e-3, 10), 10.5);
}

TEST(RailChannel, BiasWanderIsBoundedInDistribution)
{
    RailChannel::Params p = quietParams();
    p.biasWanderSigma = 0.1;
    p.biasWanderTau = 1.0;
    RailChannel rail("r", [] { return 25.0; }, p, Rng(5));
    RunningStats s;
    for (int i = 0; i < 20000; ++i)
        s.add(rail.sampleAverage(1e-3, 10));
    EXPECT_NEAR(s.mean(), 25.0, 0.05);
    // OU stationary sigma is the configured wander sigma.
    EXPECT_NEAR(s.stddev(), 0.1, 0.05);
}

TEST(RailChannel, NullProviderFatal)
{
    EXPECT_THROW(
        RailChannel("r", nullptr, quietParams(), Rng(1)), FatalError);
}

TEST(RailChannel, BadSamplingRequestPanics)
{
    RailChannel rail("r", [] { return 1.0; }, quietParams(), Rng(1));
    EXPECT_THROW(rail.sampleAverage(0.0, 10), PanicError);
    EXPECT_THROW(rail.sampleAverage(1e-3, 0), PanicError);
}

TEST(Rail, NamesDistinct)
{
    for (int a = 0; a < numRails; ++a)
        for (int b = a + 1; b < numRails; ++b)
            EXPECT_STRNE(railName(static_cast<Rail>(a)),
                         railName(static_cast<Rail>(b)));
}

} // namespace
} // namespace tdp

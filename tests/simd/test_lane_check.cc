/**
 * @file
 * Bit-identity tests for the lane classification kernels
 * (simd/lane_check.hh): every dispatch level the CPU supports must
 * produce the exact same mask word as the scalar level, for every
 * IEEE-754 input class (NaN payloads, infinities, signed zeros,
 * denormals) and every length residue - plus semantic checks pinning
 * the masks to the scalar verdict pipeline they replace.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "simd/dispatch.hh"
#include "simd/lane_check.hh"

namespace tdp {
namespace {

/** Levels this machine can actually execute. */
std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (detectedSimdLevel() >= SimdLevel::Sse2)
        levels.push_back(SimdLevel::Sse2);
    if (detectedSimdLevel() >= SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
    return levels;
}

const double quietNan =
    std::bit_cast<double>(UINT64_C(0x7ff8dead00000000));
const double payloadNan =
    std::bit_cast<double>(UINT64_C(0x7ff8000000c0ffee));
const double negNan =
    std::bit_cast<double>(UINT64_C(0xfff8000000000bad));
const double inf = 1.0 / 0.0;
const double denormal = 5e-324;

/**
 * Adversarial soup: everything the verdict pipeline must classify,
 * including values straddling a typical [0, 2^40) counter range.
 */
std::vector<double>
adversarialValues(size_t n, uint32_t salt)
{
    const double span = 1099511627776.0; // 2^40
    const double patterns[] = {
        0.0,      -0.0,      1.0,         -1.0,
        quietNan, payloadNan, negNan,     inf,
        -inf,     denormal,  -denormal,   span,
        span - 1.0, span + 1.0, 1e308,    -1e308,
        3.7,      1e-9,
    };
    constexpr size_t kPatterns = sizeof(patterns) / sizeof(double);
    std::vector<double> out(n);
    for (size_t i = 0; i < n; ++i)
        out[i] = patterns[(i * 2654435761u + salt) % kPatterns];
    return out;
}

TEST(LaneCheck, NonFiniteMaskIdenticalAcrossLevels)
{
    for (size_t n = 1; n <= 64; ++n) {
        for (uint32_t salt = 0; salt < 7; ++salt) {
            const std::vector<double> x = adversarialValues(n, salt);
            const uint64_t want = lanes::nonFiniteMaskAt(
                SimdLevel::Scalar, x.data(), n);
            for (SimdLevel level : supportedLevels()) {
                EXPECT_EQ(want, lanes::nonFiniteMaskAt(
                                    level, x.data(), n))
                    << "level " << simdLevelName(level) << " n " << n
                    << " salt " << salt;
            }
        }
    }
}

TEST(LaneCheck, OutOfRangeMaskIdenticalAcrossLevels)
{
    const double span = 1099511627776.0; // 2^40
    for (size_t n = 1; n <= 64; ++n) {
        for (uint32_t salt = 0; salt < 7; ++salt) {
            const std::vector<double> x = adversarialValues(n, salt);
            const uint64_t want = lanes::outOfRangeMaskAt(
                SimdLevel::Scalar, x.data(), 0.0, span, n);
            for (SimdLevel level : supportedLevels()) {
                EXPECT_EQ(want,
                          lanes::outOfRangeMaskAt(level, x.data(),
                                                  0.0, span, n))
                    << "level " << simdLevelName(level) << " n " << n
                    << " salt " << salt;
            }
        }
    }
}

TEST(LaneCheck, LessThanMaskIdenticalAcrossLevels)
{
    for (size_t n = 1; n <= 64; ++n) {
        for (uint32_t salt = 0; salt < 7; ++salt) {
            const std::vector<double> a = adversarialValues(n, salt);
            const std::vector<double> b =
                adversarialValues(n, salt + 101);
            const uint64_t want = lanes::lessThanMaskAt(
                SimdLevel::Scalar, a.data(), b.data(), n);
            for (SimdLevel level : supportedLevels()) {
                EXPECT_EQ(want, lanes::lessThanMaskAt(
                                    level, a.data(), b.data(), n))
                    << "level " << simdLevelName(level) << " n " << n
                    << " salt " << salt;
            }
        }
    }
}

TEST(LaneCheck, NonFiniteSemantics)
{
    const double x[] = {quietNan, payloadNan, negNan, inf,
                        -inf,     0.0,        -0.0,   denormal,
                        1e308,    -1e308};
    EXPECT_EQ(lanes::nonFiniteMask(x, 10), 0x1fu);
}

TEST(LaneCheck, OutOfRangeSemanticsMatchScalarVerdictOrder)
{
    const double span = 1024.0;
    // NaN must NOT set the range bit: the scalar pipeline classifies
    // it NonFinite first and never reaches the range test. Inf sets
    // both masks; the verdict code tests NonFinite first, so the
    // published verdict is still NonFinite.
    const double x[] = {quietNan, inf,  -inf, -0.0,
                        0.0,      -1.0, span, span - 1.0};
    EXPECT_EQ(lanes::outOfRangeMask(x, 0.0, span, 8), 0x66u);
    EXPECT_EQ(lanes::nonFiniteMask(x, 8), 0x07u);
}

TEST(LaneCheck, LessThanSemanticsMatchWrapDetection)
{
    // The wrap test is `cur < prev` on in-range values; NaN pairs
    // never reach it, and the mask is ordered so they clear anyway.
    const double cur[] = {5.0, 10.0, quietNan, 0.0, -0.0};
    const double prev[] = {10.0, 5.0, 1.0, quietNan, 0.0};
    EXPECT_EQ(lanes::lessThanMask(cur, prev, 5), 0x01u);
}

TEST(LaneCheck, WidthCapIsFatal)
{
    const std::vector<double> x(65, 0.0);
    EXPECT_THROW(lanes::nonFiniteMask(x.data(), 65), FatalError);
}

} // namespace
} // namespace tdp

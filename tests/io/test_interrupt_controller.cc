/**
 * @file
 * Tests for the interrupt controller and its per-vector accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "io/interrupt_controller.hh"
#include "sim/system.hh"

namespace tdp {
namespace {

TEST(InterruptController, VectorRegistration)
{
    System sys(1);
    InterruptController pic(sys, "pic", 4);
    const IrqVector a = pic.registerVector("disk");
    const IrqVector b = pic.registerVector("nic");
    EXPECT_NE(a, b);
    EXPECT_EQ(pic.vectorCount(), 2);
    EXPECT_EQ(pic.vectorDevice(a), "disk");
    EXPECT_EQ(pic.vectorDevice(b), "nic");
}

TEST(InterruptController, TargetedDelivery)
{
    System sys(1);
    InterruptController pic(sys, "pic", 4);
    const IrqVector timer = pic.registerVector("timer");
    pic.raise(timer, 3.0, 2);
    EXPECT_DOUBLE_EQ(pic.pendingForCpu(2), 3.0);
    EXPECT_DOUBLE_EQ(pic.pendingForCpu(0), 0.0);
    EXPECT_DOUBLE_EQ(pic.lifetimeCount(timer), 3.0);
}

TEST(InterruptController, BalancedDeliverySumsToTotal)
{
    System sys(1);
    InterruptController pic(sys, "pic", 4);
    const IrqVector disk = pic.registerVector("disk");
    pic.raise(disk, 8.0);
    double total = 0.0;
    for (int cpu = 0; cpu < 4; ++cpu)
        total += pic.pendingForCpu(cpu);
    EXPECT_NEAR(total, 8.0, 1e-12);
    EXPECT_DOUBLE_EQ(pic.pendingForCpu(0), 2.0);
}

TEST(InterruptController, DeviceLifetimeExcludesTimers)
{
    System sys(1);
    InterruptController pic(sys, "pic", 2);
    const IrqVector timer = pic.registerVector("timer");
    const IrqVector disk = pic.registerVector("disk");
    pic.raise(timer, 100.0, 0);
    pic.raise(timer, 100.0, 1);
    pic.raise(disk, 7.0);
    EXPECT_DOUBLE_EQ(pic.lifetimeTotal(), 207.0);
    EXPECT_DOUBLE_EQ(pic.lifetimeDeviceTotal(), 7.0);
}

TEST(InterruptController, QuantumClearsPending)
{
    System sys(1);
    InterruptController pic(sys, "pic", 2);
    const IrqVector disk = pic.registerVector("disk");
    pic.raise(disk, 4.0);
    sys.runFor(0.001);
    EXPECT_DOUBLE_EQ(pic.pendingForCpu(0), 0.0);
    // Lifetime survives the clear.
    EXPECT_DOUBLE_EQ(pic.lifetimeCount(disk), 4.0);
}

TEST(InterruptController, ZeroCountIsNoop)
{
    System sys(1);
    InterruptController pic(sys, "pic", 2);
    const IrqVector v = pic.registerVector("nic");
    pic.raise(v, 0.0);
    EXPECT_DOUBLE_EQ(pic.lifetimeTotal(), 0.0);
}

TEST(InterruptController, InvalidUsePanics)
{
    System sys(1);
    InterruptController pic(sys, "pic", 2);
    const IrqVector v = pic.registerVector("nic");
    EXPECT_THROW(pic.raise(99, 1.0), PanicError);
    EXPECT_THROW(pic.raise(v, -1.0), PanicError);
    EXPECT_THROW(pic.raise(v, 1.0, 5), PanicError);
    EXPECT_THROW(pic.pendingForCpu(7), PanicError);
    EXPECT_THROW(pic.lifetimeCount(42), PanicError);
}

TEST(InterruptController, ZeroCpusRejected)
{
    System sys(1);
    EXPECT_THROW(InterruptController(sys, "pic", 0), FatalError);
}

} // namespace
} // namespace tdp

/**
 * @file
 * Lane-batched classification kernels for the stream verdict
 * pipeline.
 *
 * Unlike the arithmetic kernels in lane_math.hh, these produce
 * *integer bit masks* (bit i describes input i), so cross-level
 * bit-identity is trivial by construction: a comparison either holds
 * for a lane or it does not, at every dispatch level, for every IEEE
 * input class including NaN payloads, infinities, signed zeros and
 * denormals. The session layer batches 4 popped samples into the
 * fixed 4-lane contract (dispatch.hh) and classifies their raw
 * counters through these kernels; anything rarer than the clean
 * accept path falls back to the scalar verdict code.
 *
 * Mask semantics (chosen to match the scalar validation in
 * SessionTable::admit exactly):
 *
 *  - nonFiniteMask: bit set iff x[i] is NaN or +/-Inf, via the
 *    (x - x) != 0 trick (finite - finite == +0.0 exactly);
 *  - outOfRangeMask: bit set iff x[i] < lo or x[i] >= hi, with
 *    *ordered* compares so NaN never sets a bit (the scalar path
 *    classifies NaN as NonFinite first, never OutOfRange);
 *  - lessThanMask: bit set iff a[i] < b[i] (ordered; NaN clears),
 *    used to count counter wraps exactly like the scalar
 *    `cur < prev` test.
 *
 * n is capped at 64 inputs per call (one mask word); the production
 * callers batch kSimdLanes at a time.
 */

#ifndef TDP_SIMD_LANE_CHECK_HH
#define TDP_SIMD_LANE_CHECK_HH

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.hh"

namespace tdp {
namespace lanes {

/** Bit i set iff x[i] is NaN or +/-Inf. */
uint64_t nonFiniteMask(const double *x, size_t n);
uint64_t nonFiniteMaskAt(SimdLevel level, const double *x, size_t n);

/** Bit i set iff x[i] < lo or x[i] >= hi (ordered; NaN clears). */
uint64_t outOfRangeMask(const double *x, double lo, double hi,
                        size_t n);
uint64_t outOfRangeMaskAt(SimdLevel level, const double *x, double lo,
                          double hi, size_t n);

/** Bit i set iff a[i] < b[i] (ordered; NaN clears). */
uint64_t lessThanMask(const double *a, const double *b, size_t n);
uint64_t lessThanMaskAt(SimdLevel level, const double *a,
                        const double *b, size_t n);

} // namespace lanes
} // namespace tdp

#endif // TDP_SIMD_LANE_CHECK_HH

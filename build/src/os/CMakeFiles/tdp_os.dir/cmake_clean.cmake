file(REMOVE_RECURSE
  "CMakeFiles/tdp_os.dir/operating_system.cc.o"
  "CMakeFiles/tdp_os.dir/operating_system.cc.o.d"
  "CMakeFiles/tdp_os.dir/page_cache.cc.o"
  "CMakeFiles/tdp_os.dir/page_cache.cc.o.d"
  "CMakeFiles/tdp_os.dir/proc_interrupts.cc.o"
  "CMakeFiles/tdp_os.dir/proc_interrupts.cc.o.d"
  "CMakeFiles/tdp_os.dir/scheduler.cc.o"
  "CMakeFiles/tdp_os.dir/scheduler.cc.o.d"
  "CMakeFiles/tdp_os.dir/virtual_memory.cc.o"
  "CMakeFiles/tdp_os.dir/virtual_memory.cc.o.d"
  "libtdp_os.a"
  "libtdp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * The profile-driven workload thread: one implementation executes all
 * of the paper's workloads from their WorkloadProfile data.
 */

#ifndef TDP_WORKLOADS_WORKLOAD_THREAD_HH
#define TDP_WORKLOADS_WORKLOAD_THREAD_HH

#include <string>

#include "common/random.hh"
#include "os/page_cache.hh"
#include "os/thread_context.hh"
#include "workloads/profile.hh"

namespace tdp {

/**
 * A thread animating a WorkloadProfile: advertises the current
 * phase's demand, issues file I/O, dirties page-cache pages, calls
 * sync(), and blocks on I/O completions like a real process.
 */
class WorkloadThread : public ThreadContext
{
  public:
    /**
     * @param system owning system (for RNG stream derivation).
     * @param cache the OS page cache for file I/O.
     * @param profile behaviour description (must outlive the thread).
     * @param name unique thread name, e.g. "gcc.3".
     */
    WorkloadThread(System &system, PageCache &cache,
                   const WorkloadProfile &profile, std::string name);

    const std::string &threadName() const override { return name_; }
    ThreadState state() const override { return state_; }
    ThreadDemand demand() const override { return current_; }
    void commit(double uops, Seconds dt) override;
    double footprintMB() const override { return profile_.footprintMB; }
    void start() override;

    /** Profile backing this thread. */
    const WorkloadProfile &profile() const { return profile_; }

    /** Total committed uops. */
    double lifetimeUops() const { return lifetimeUops_; }

    /** Index of the current phase. */
    size_t phaseIndex() const { return phaseIdx_; }

    /** Number of sync() calls issued. */
    int syncCount() const { return syncCount_; }

  private:
    void enterPhase(size_t index);
    const WorkloadPhase &phase() const;
    void issueIo(Seconds dt);

    PageCache &cache_;
    const WorkloadProfile &profile_;
    std::string name_;
    Rng rng_;

    ThreadState state_ = ThreadState::NotStarted;
    size_t phaseIdx_ = 0;
    Seconds phaseElapsed_ = 0.0;
    Seconds sinceSync_ = 0.0;
    double dirtyOutstanding_ = 0.0;
    double pendingReadBytes_ = 0.0;
    double wander_ = 1.0;
    ThreadDemand current_;
    double lifetimeUops_ = 0.0;
    int syncCount_ = 0;
};

} // namespace tdp

#endif // TDP_WORKLOADS_WORKLOAD_THREAD_HH

/**
 * @file
 * Tests for the open-addressing client -> row index: probe-run
 * correctness under collision clustering, backward-shift deletion,
 * growth rehashing and the fatal() misuse contracts.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "resilience/retry.hh"
#include "stream/flat_index.hh"

namespace tdp {
namespace stream {
namespace {

TEST(FlatClientIndex, FindInsertEraseBasics)
{
    FlatClientIndex index;
    EXPECT_EQ(index.size(), 0u);
    EXPECT_EQ(index.find(42), FlatClientIndex::kNoRow);

    index.insert(42, 0);
    index.insert(7, 1);
    EXPECT_EQ(index.size(), 2u);
    EXPECT_EQ(index.find(42), 0u);
    EXPECT_EQ(index.find(7), 1u);
    EXPECT_EQ(index.find(8), FlatClientIndex::kNoRow);

    index.set(42, 5);
    EXPECT_EQ(index.find(42), 5u);

    index.erase(42);
    EXPECT_EQ(index.size(), 1u);
    EXPECT_EQ(index.find(42), FlatClientIndex::kNoRow);
    EXPECT_EQ(index.find(7), 1u);
}

TEST(FlatClientIndex, MisuseIsFatal)
{
    FlatClientIndex index;
    index.insert(1, 0);
    EXPECT_THROW(index.insert(1, 1), FatalError);
    EXPECT_THROW(index.set(2, 0), FatalError);
    EXPECT_THROW(index.erase(2), FatalError);
}

TEST(FlatClientIndex, GrowthKeepsEveryMapping)
{
    FlatClientIndex index; // default hint: growth path exercised
    constexpr uint32_t n = 50000;
    for (uint32_t i = 0; i < n; ++i)
        index.insert(1000 + i, i);
    index.verifyInvariants();
    EXPECT_EQ(index.size(), n);
    // Power-of-two capacity, load factor at most 7/8.
    EXPECT_EQ(index.capacity() & (index.capacity() - 1), 0u);
    EXPECT_GE(index.capacity() * 7, index.size() * 8);
    for (uint32_t i = 0; i < n; ++i)
        ASSERT_EQ(index.find(1000 + i), i);
}

/**
 * Backward-shift deletion must preserve every surviving probe run.
 * Churn insert/erase/re-point against a reference map with hashed
 * (deterministic) operations so displaced entries repeatedly slide
 * across erased holes and wrapped runs.
 */
TEST(FlatClientIndex, ChurnMatchesReferenceMap)
{
    FlatClientIndex index;
    std::unordered_map<uint64_t, uint32_t> reference;
    uint32_t nextRow = 0;
    constexpr int ops = 60000;
    constexpr uint64_t universe = 512; // small: dense collisions
    for (int op = 0; op < ops; ++op) {
        const uint64_t client =
            resilience::mixHash(0xc0ffee, op, 1) % universe;
        const uint64_t action =
            resilience::mixHash(0xdecaf, op, 2) % 3;
        const auto it = reference.find(client);
        if (action == 0 && it == reference.end()) {
            index.insert(client, nextRow);
            reference.emplace(client, nextRow);
            ++nextRow;
        } else if (action == 1 && it != reference.end()) {
            index.erase(client);
            reference.erase(it);
        } else if (action == 2 && it != reference.end()) {
            // The swap-with-last eviction pattern: re-point the
            // moved client at its new row.
            it->second = nextRow;
            index.set(client, nextRow);
            ++nextRow;
        }
        if (op % 1000 == 0) {
            index.verifyInvariants();
            ASSERT_EQ(index.size(), reference.size());
            for (uint64_t probe = 0; probe < universe; ++probe) {
                const auto ref = reference.find(probe);
                ASSERT_EQ(index.find(probe),
                          ref == reference.end()
                              ? FlatClientIndex::kNoRow
                              : ref->second)
                    << "op " << op << " client " << probe;
            }
        }
    }
    index.verifyInvariants();
    EXPECT_EQ(index.size(), reference.size());
    for (const auto &entry : reference)
        ASSERT_EQ(index.find(entry.first), entry.second);
}

} // namespace
} // namespace stream
} // namespace tdp

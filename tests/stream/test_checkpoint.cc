/**
 * @file
 * Restore edge cases for the crash-safe checkpoint subsystem: empty
 * and mid-stream round trips with lockstep tail replay against an
 * uninterrupted twin, an all-quarantined fleet, mid-window RLS
 * partials, wraparound-heavy counters, fingerprint rejection, torn
 * and doubly-corrupt generations, and injected publish faults
 * (ENOSPC, EXDEV) through the periodic checkpointer.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "stream/checkpoint.hh"
#include "stream/service.hh"
#include "stream_fleet.hh"

namespace tdp {
namespace stream {
namespace {

using testutil::Fleet;
using testutil::trainedEstimator;

StreamConfig
baseConfig()
{
    StreamConfig cfg;
    cfg.ingest.shards = 4;
    cfg.ingest.ringCapacity = 128;
    cfg.ingest.highWatermark = 96;
    cfg.ingest.seed = 0x5eed;
    cfg.session.counterWidthBits = 40;
    cfg.session.idleTimeoutTicks = 32;
    cfg.session.quarantineThreshold = 4;
    cfg.session.wattsWindow = 8;
    cfg.drift.window = 16;
    cfg.drift.factor = 3.0;
    cfg.drift.floorWatts = 0.5;
    cfg.drift.healthyWindows = 2;
    cfg.refitBlockRows = 8;
    cfg.refitWindowBlocks = 4;
    cfg.drainBudget = 64;
    cfg.evictEveryTicks = 8;
    cfg.verifyRefits = true;
    return cfg;
}

double
loadAt(int round, int client)
{
    return static_cast<double>(round % 40) / 39.0 *
           (0.60 + 0.05 * client);
}

/** Fresh rotation base under the test tmpdir; both slots removed. */
std::string
freshBase(const std::string &name)
{
    const std::string base = testing::TempDir() + "tdp-ckpt-" + name;
    std::remove(checkpointGenerationPath(base, 0).c_str());
    std::remove(checkpointGenerationPath(base, 1).c_str());
    return base;
}

/** Truncate a published checkpoint file to half its size, in place. */
void
tearFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u) << path;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    ASSERT_TRUE(out.good()) << path;
}

/** Drive @p rounds offer+tick rounds of @p clients valid samples. */
void
runRounds(StreamService &service, Fleet &fleet, int clients,
          int firstRound, int lastRound, const ExperimentPool &pool)
{
    for (int round = firstRound; round < lastRound; ++round) {
        for (int c = 0; c < clients; ++c)
            service.offer(fleet.next(c, loadAt(round, c)));
        service.tick(pool);
    }
}

/** Advance @p fleet past @p rounds rounds without offering anything. */
void
skipRounds(Fleet &fleet, int clients, int rounds)
{
    for (int round = 0; round < rounds; ++round)
        for (int c = 0; c < clients; ++c)
            (void)fleet.next(c, loadAt(round, c));
}

TEST(StreamCheckpoint, EmptyServiceRoundTrips)
{
    const std::string base = freshBase("empty");
    StreamService writer(baseConfig(), trainedEstimator());

    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(writer, base, 1, "empty-meta",
                                      &info, &error))
        << error;
    EXPECT_EQ(info.generation, 1u);
    EXPECT_EQ(info.tick, 0u);
    EXPECT_EQ(info.digest, writer.digest());

    std::string meta;
    ASSERT_TRUE(peekStreamCheckpointMeta(base, &meta, &error))
        << error;
    EXPECT_EQ(meta, "empty-meta");

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(res.usedFallback);
    EXPECT_EQ(res.meta, "empty-meta");
    EXPECT_EQ(restored.now(), 0u);
    EXPECT_EQ(restored.activeSessions(), 0u);
    EXPECT_EQ(restored.digest(), writer.digest());
    EXPECT_EQ(restored.stats().restores, 1u);
    EXPECT_EQ(restored.stats().restoreFallbacks, 0u);
}

/**
 * The bounded-loss contract at test scale: checkpoint mid-stream,
 * restore into a fresh service, replay the tail in lockstep with an
 * uninterrupted twin, and require bitwise-equal digests, counters and
 * rail state - with the replay running at a different --jobs count.
 */
TEST(StreamCheckpoint, MidStreamRestoreMatchesUninterruptedTwin)
{
    const std::string base = freshBase("midstream");
    const int clients = 8;
    const int checkpointRound = 25;
    const int rounds = 70;

    StreamService twin(baseConfig(), trainedEstimator());
    const ExperimentPool pool1(1);
    Fleet twinFleet(clients, 40);
    runRounds(twin, twinFleet, clients, 0, checkpointRound, pool1);

    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(twin, base, 1, "", &info,
                                      &error))
        << error;
    EXPECT_EQ(info.tick, static_cast<uint64_t>(checkpointRound));
    runRounds(twin, twinFleet, clients, checkpointRound, rounds,
              pool1);

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;
    ASSERT_EQ(restored.now(), static_cast<uint64_t>(checkpointRound));

    // Replay the forgotten tail at a different worker count; the
    // fold digest must land on the uninterrupted run regardless.
    const ExperimentPool pool3(3);
    Fleet replayFleet(clients, 40);
    skipRounds(replayFleet, clients, checkpointRound);
    runRounds(restored, replayFleet, clients, checkpointRound, rounds,
              pool3);

    EXPECT_EQ(restored.digest(), twin.digest());
    EXPECT_EQ(restored.now(), twin.now());
    EXPECT_EQ(restored.stats().estimates, twin.stats().estimates);
    EXPECT_EQ(restored.stats().drained, twin.stats().drained);
    EXPECT_EQ(restored.sessionStats().accepted,
              twin.sessionStats().accepted);
    EXPECT_EQ(restored.sessionStats().wraps,
              twin.sessionStats().wraps);
    EXPECT_EQ(restored.slo().samples, twin.slo().samples);
    for (int r = 0; r < numRails; ++r) {
        const Rail rail = static_cast<Rail>(r);
        const RailStatus a = restored.railStatus(rail);
        const RailStatus b = twin.railStatus(rail);
        EXPECT_EQ(a.refits, b.refits) << railName(rail);
        EXPECT_EQ(a.verifiedRefits, b.verifiedRefits)
            << railName(rail);
        EXPECT_EQ(a.lastRefitRmse, b.lastRefitRmse)
            << railName(rail);
        EXPECT_GT(a.refits, 0u) << railName(rail);
    }
}

TEST(StreamCheckpoint, AllQuarantinedFleetRestores)
{
    const std::string base = freshBase("quarantined");
    const int clients = 6;
    StreamConfig cfg = baseConfig();
    StreamService writer(cfg, trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(clients, 40);

    // One valid baseline round, then poison every client until the
    // whole fleet is quarantined.
    runRounds(writer, fleet, clients, 0, 1, pool);
    for (int round = 1; round < 8; ++round) {
        for (int c = 0; c < clients; ++c) {
            StreamSample s = fleet.next(c, loadAt(round, c));
            s.raw.counts[0] = std::nan("");
            writer.offer(s);
        }
        writer.tick(pool);
    }
    ASSERT_EQ(writer.quarantinedSessions(),
              static_cast<size_t>(clients));

    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(writer, base, 1, "", &info,
                                      &error))
        << error;

    StreamService restored(cfg, trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(restored.quarantinedSessions(),
              static_cast<size_t>(clients));
    EXPECT_EQ(restored.digest(), writer.digest());

    // Quarantine survives the restore: offers are still refused at
    // the door, on both sides, with identical accounting.
    for (int c = 0; c < clients; ++c) {
        StreamSample s = fleet.next(c, 0.5);
        EXPECT_EQ(restored.offer(s), Admission::Quarantined);
        EXPECT_EQ(writer.offer(s), Admission::Quarantined);
    }
    restored.tick(pool);
    writer.tick(pool);
    EXPECT_EQ(restored.digest(), writer.digest());
    EXPECT_EQ(restored.stats().quarantinedAtDoor,
              writer.stats().quarantinedAtDoor);
}

/**
 * Checkpoint with partially filled refit blocks: 6 accepted rows per
 * round against 8-row blocks guarantees open (unsealed) rows in every
 * rail's window at the checkpoint tick. The restored partials must
 * keep feeding the *verified* incremental refit path - any
 * moment-cache drift would fatal inside maybeRefit.
 */
TEST(StreamCheckpoint, MidWindowRlsPartialsRoundTrip)
{
    const std::string base = freshBase("midwindow");
    const int clients = 6;
    const int checkpointRound = 10;
    const int rounds = 60;

    StreamService twin(baseConfig(), trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(clients, 40);
    runRounds(twin, fleet, clients, 0, checkpointRound, pool);

    // 6 * (10 - 1) = 54 accepted rows: mid-block by construction.
    ASSERT_NE(twin.sessionStats().accepted % 8, 0u);

    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(twin, base, 1, "", &info,
                                      &error))
        << error;
    runRounds(twin, fleet, clients, checkpointRound, rounds, pool);

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;

    Fleet replayFleet(clients, 40);
    skipRounds(replayFleet, clients, checkpointRound);
    runRounds(restored, replayFleet, clients, checkpointRound, rounds,
              pool);

    EXPECT_EQ(restored.digest(), twin.digest());
    for (int r = 0; r < numRails; ++r) {
        const Rail rail = static_cast<Rail>(r);
        const RailStatus a = restored.railStatus(rail);
        const RailStatus b = twin.railStatus(rail);
        EXPECT_GT(a.refits, 0u) << railName(rail);
        EXPECT_EQ(a.refits, b.refits) << railName(rail);
        EXPECT_EQ(a.rls.rowsAdded, b.rls.rowsAdded)
            << railName(rail);
        EXPECT_EQ(a.rls.blocksSealed, b.rls.blocksSealed)
            << railName(rail);
    }
}

/**
 * Narrow 34-bit counters wrap every couple of samples; the pending
 * wrap-recovery state (last raw value, wrap count) must survive the
 * restore or the first replayed sample mis-recovers its delta.
 */
TEST(StreamCheckpoint, WraparoundPendingCountersSurviveRestore)
{
    const std::string base = freshBase("wraparound");
    const int clients = 6;
    const int checkpointRound = 17;
    const int rounds = 50;

    StreamConfig cfg = baseConfig();
    cfg.session.counterWidthBits = 34;
    StreamService twin(cfg, trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(clients, 34);
    runRounds(twin, fleet, clients, 0, checkpointRound, pool);
    ASSERT_GT(twin.sessionStats().wraps, 0u);

    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(twin, base, 1, "", &info,
                                      &error))
        << error;
    runRounds(twin, fleet, clients, checkpointRound, rounds, pool);

    StreamService restored(cfg, trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;

    Fleet replayFleet(clients, 34);
    skipRounds(replayFleet, clients, checkpointRound);
    runRounds(restored, replayFleet, clients, checkpointRound, rounds,
              pool);

    EXPECT_EQ(restored.digest(), twin.digest());
    EXPECT_EQ(restored.sessionStats().wraps,
              twin.sessionStats().wraps);
    EXPECT_EQ(restored.sessionStats().quarantines,
              twin.sessionStats().quarantines);
    EXPECT_EQ(restored.sessionStats().quarantines, 0u);
}

TEST(StreamCheckpoint, ConfigFingerprintMismatchIsRejected)
{
    const std::string base = freshBase("fingerprint");
    StreamService writer(baseConfig(), trainedEstimator());

    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(writer, base, 1, "", &info,
                                      &error))
        << error;

    StreamConfig other = baseConfig();
    other.ingest.seed = 0xbadc0de;
    StreamService restored(other, trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("fingerprint"), std::string::npos)
        << res.error;
}

TEST(StreamCheckpoint, RestoreRequiresFreshService)
{
    const std::string base = freshBase("used");
    StreamService writer(baseConfig(), trainedEstimator());
    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(writer, base, 1, "", &info,
                                      &error))
        << error;

    StreamService used(baseConfig(), trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(2, 40);
    runRounds(used, fleet, 2, 0, 3, pool);
    const RestoreResult res = restoreStreamCheckpoint(used, base);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("freshly constructed"),
              std::string::npos)
        << res.error;
}

TEST(StreamCheckpoint, TornNewestGenerationFallsBack)
{
    const std::string base = freshBase("torn");
    const int clients = 8;
    const int rounds = 60;

    StreamService twin(baseConfig(), trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(clients, 40);

    runRounds(twin, fleet, clients, 0, 20, pool);
    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(twin, base, 1, "gen-one",
                                      &info, &error))
        << error;
    runRounds(twin, fleet, clients, 20, 30, pool);
    ASSERT_TRUE(writeStreamCheckpoint(twin, base, 2, "gen-two",
                                      &info, &error))
        << error;
    runRounds(twin, fleet, clients, 30, rounds, pool);

    // Tear the newest generation; the loader must fall back to
    // generation 1 with a warning, never a fatal.
    tearFile(checkpointGenerationPath(base, 2));

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(res.usedFallback);
    EXPECT_FALSE(res.warning.empty());
    EXPECT_EQ(res.info.generation, 1u);
    EXPECT_EQ(res.info.tick, 20u);
    EXPECT_EQ(res.meta, "gen-one");
    EXPECT_EQ(restored.stats().restoreFallbacks, 1u);

    // Bounded loss, not state loss: replaying from the older
    // generation still lands on the uninterrupted digest.
    Fleet replayFleet(clients, 40);
    skipRounds(replayFleet, clients, 20);
    runRounds(restored, replayFleet, clients, 20, rounds, pool);
    EXPECT_EQ(restored.digest(), twin.digest());
}

TEST(StreamCheckpoint, BothGenerationsCorruptFailsCleanly)
{
    const std::string base = freshBase("corrupt");
    StreamService writer(baseConfig(), trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(4, 40);

    runRounds(writer, fleet, 4, 0, 10, pool);
    CheckpointInfo info;
    std::string error;
    ASSERT_TRUE(writeStreamCheckpoint(writer, base, 1, "", &info,
                                      &error))
        << error;
    runRounds(writer, fleet, 4, 10, 20, pool);
    ASSERT_TRUE(writeStreamCheckpoint(writer, base, 2, "", &info,
                                      &error))
        << error;
    tearFile(checkpointGenerationPath(base, 1));
    tearFile(checkpointGenerationPath(base, 2));

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    EXPECT_FALSE(res.ok);
    EXPECT_NE(res.error.find("no usable checkpoint"),
              std::string::npos)
        << res.error;

    std::string meta;
    EXPECT_FALSE(peekStreamCheckpointMeta(base, &meta, &error));
}

TEST(StreamCheckpoint, EnospcFailureIsCountedAndNonFatal)
{
    const std::string base = freshBase("enospc");
    StreamService service(baseConfig(), trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(4, 40);
    runRounds(service, fleet, 4, 0, 5, pool);

    StreamCheckpointer checkpointer(service, base, 64);
    setIoFaultHook([&base](const std::string &path) {
        return path.compare(0, base.size(), base) == 0
                   ? IoFault::Enospc
                   : IoFault::None;
    });
    EXPECT_FALSE(checkpointer.writeNow());
    setIoFaultHook({});

    EXPECT_EQ(checkpointer.failures(), 1u);
    EXPECT_EQ(checkpointer.written(), 0u);
    EXPECT_EQ(checkpointer.generation(), 0u);
    EXPECT_EQ(service.stats().checkpointFailures, 1u);
    EXPECT_EQ(service.stats().checkpoints, 0u);

    // The service keeps running, and the retry (same generation,
    // fault cleared) succeeds.
    runRounds(service, fleet, 4, 5, 10, pool);
    EXPECT_TRUE(checkpointer.writeNow());
    EXPECT_EQ(checkpointer.generation(), 1u);
    EXPECT_EQ(service.stats().checkpoints, 1u);

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.info.tick, 10u);
    EXPECT_EQ(restored.digest(), service.digest());
}

TEST(StreamCheckpoint, ExdevFallsBackToCrossFilesystemCopy)
{
    const std::string base = freshBase("exdev");
    StreamService service(baseConfig(), trainedEstimator());
    const ExperimentPool pool(1);
    Fleet fleet(4, 40);
    runRounds(service, fleet, 4, 0, 8, pool);

    StreamCheckpointer checkpointer(service, base, 64);
    setIoFaultHook([&base](const std::string &path) {
        return path.compare(0, base.size(), base) == 0
                   ? IoFault::Exdev
                   : IoFault::None;
    });
    EXPECT_TRUE(checkpointer.writeNow());
    setIoFaultHook({});

    EXPECT_EQ(checkpointer.failures(), 0u);
    EXPECT_EQ(checkpointer.written(), 1u);

    StreamService restored(baseConfig(), trainedEstimator());
    const RestoreResult res = restoreStreamCheckpoint(restored, base);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_FALSE(res.usedFallback);
    EXPECT_EQ(restored.digest(), service.digest());
}

} // namespace
} // namespace stream
} // namespace tdp

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for eq_model_fits.

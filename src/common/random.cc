/**
 * @file
 * Implementation of the deterministic random number generator.
 */

#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace tdp {

uint64_t
splitMix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
hashString(const std::string &s)
{
    // FNV-1a over the bytes, then one SplitMix64 finalization round to
    // spread low-entropy inputs across all 64 bits.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return splitMix64(h);
}

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

Rng::Rng(uint64_t parent_seed, const std::string &stream_name)
    : Rng(parent_seed ^ hashString(stream_name))
{
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("uniformInt: lo (%lld) > hi (%lld)",
              static_cast<long long>(lo), static_cast<long long>(hi));
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    hasSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

double
Rng::exponential(double rate)
{
    if (rate <= 0.0)
        panic("exponential: rate must be positive, got %g", rate);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

uint64_t
Rng::poisson(double mean)
{
    if (mean < 0.0)
        panic("poisson: mean must be non-negative, got %g", mean);
    if (mean == 0.0)
        return 0;
    if (mean > 64.0) {
        // Normal approximation with continuity correction; adequate for
        // the large event counts that occur per simulation quantum.
        const double draw = gaussian(mean, std::sqrt(mean));
        return draw <= 0.0 ? 0 : static_cast<uint64_t>(draw + 0.5);
    }
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
        ++count;
        product *= uniform();
    }
    return count;
}

} // namespace tdp

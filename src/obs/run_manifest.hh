/**
 * @file
 * Unified machine-readable run manifest.
 *
 * One schema-versioned JSON document per bench run folding together
 * everything a script or CI job needs: which tool ran with which
 * worker count, every workload run (sample counts, fingerprints,
 * cache provenance), the bench's own metrics (the writeBenchJson
 * timings), free-form flat sections contributed by higher layers
 * (training scrub counts, estimator health, trace-cache outcomes)
 * and a full StatsRegistry snapshot.
 *
 * The manifest deliberately depends only on scalars and strings, so
 * the obs library stays at the bottom of the dependency stack; the
 * layers that own TrainingReport / HealthReport / TraceCache::Stats
 * flatten them into sections (dotted keys) at contribution time.
 *
 * Schema (version 1):
 *   {
 *     "schema": "tdp-run-manifest",
 *     "version": 1,
 *     "tool": "<bench binary>",
 *     "jobs": <int>,
 *     "runs": [ {"workload": str, "samples": int,
 *                "fingerprint": "<%016x>", "from_cache": bool,
 *                "sim_seconds": num}, ... ],
 *     "metrics": [ {"name": str, "value": num, "unit": str}, ... ],
 *     "sections": { "<name>": {"<dotted.key>": num|str, ...}, ... },
 *     "stats": { "counters": {...}, "gauges": {...},
 *                "histograms": {...} },
 *     "span_trace": {"path": str, "recorded": int, "dropped": int}
 *                   (optional)
 *   }
 */

#ifndef TDP_OBS_RUN_MANIFEST_HH
#define TDP_OBS_RUN_MANIFEST_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/stats_registry.hh"

namespace tdp {
namespace obs {

/** One simulated (or cache-served) workload run. */
struct ManifestRun
{
    std::string workload;
    uint64_t samples = 0;
    uint64_t fingerprint = 0;
    bool fromCache = false;
    double simSeconds = 0.0;
};

/** One bench metric (mirrors bench_util's BenchMetric). */
struct ManifestMetric
{
    std::string name;
    double value = 0.0;
    std::string unit;
};

/** Accumulates a run's facts and writes the JSON document. */
class RunManifest
{
  public:
    /** Bump when the document layout changes incompatibly. */
    static constexpr int schemaVersion = 1;

    /** Document identifier stored in the "schema" field. */
    static constexpr const char *schemaName = "tdp-run-manifest";

    /** Tool identity and worker count. @{ */
    void setTool(std::string name) { tool_ = std::move(name); }
    const std::string &tool() const { return tool_; }
    void setJobs(int jobs) { jobs_ = jobs; }
    /** @} */

    /** Append one workload run. */
    void addRun(ManifestRun run) { runs_.push_back(std::move(run)); }

    /** Append one bench metric. */
    void addMetric(ManifestMetric metric)
    {
        metrics_.push_back(std::move(metric));
    }

    /** Section entry value: a number or a string. */
    struct SectionValue
    {
        bool isNumber = true;
        double number = 0.0;
        std::string text;
    };

    /**
     * Add one flat entry to a named section (sections and their
     * entries keep insertion order; re-adding a key appends a
     * duplicate, so contributors should flatten once). @{
     */
    void addSectionEntry(const std::string &section,
                         const std::string &key, double value);
    void addSectionEntry(const std::string &section,
                         const std::string &key, uint64_t value);
    void addSectionEntry(const std::string &section,
                         const std::string &key,
                         const std::string &value);
    /** @} */

    /** Record the span-trace output this run produced (optional). */
    void setSpanTrace(std::string path, uint64_t recorded,
                      uint64_t dropped);

    /** Runs recorded so far. */
    const std::vector<ManifestRun> &runs() const { return runs_; }

    /**
     * Write the manifest document, embedding the given stats
     * snapshot (pass a default-constructed snapshot for none).
     */
    void writeJson(std::ostream &os,
                   const StatsRegistry::Snapshot &stats) const;

    /**
     * Write atomically to a file (temp + rename), embedding a
     * snapshot of the global StatsRegistry. Returns false with a
     * warning on failure.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::string tool_;
    int jobs_ = 1;
    std::vector<ManifestRun> runs_;
    std::vector<ManifestMetric> metrics_;

    struct Section
    {
        std::string name;
        std::vector<std::pair<std::string, SectionValue>> entries;
    };
    std::vector<Section> sections_;
    Section &sectionFor(const std::string &name);

    bool hasSpanTrace_ = false;
    std::string spanTracePath_;
    uint64_t spanRecorded_ = 0;
    uint64_t spanDropped_ = 0;
};

} // namespace obs
} // namespace tdp

#endif // TDP_OBS_RUN_MANIFEST_HH

/**
 * @file
 * Streaming statistics accumulators.
 */

#ifndef TDP_COMMON_RUNNING_STATS_HH
#define TDP_COMMON_RUNNING_STATS_HH

#include <cstdint>

namespace tdp {

/**
 * Single-pass mean / variance / extrema accumulator using Welford's
 * algorithm, numerically stable for long traces.
 */
class RunningStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Merge another accumulator (parallel-combine). */
    void merge(const RunningStats &other);

    /** Discard all observations. */
    void reset();

    /** Number of observations folded in. */
    uint64_t count() const { return n_; }

    /** Sample mean; 0 when empty. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_;
    double max_;

  public:
    RunningStats();
};

/**
 * Streaming covariance / correlation between two paired series.
 */
class RunningCovariance
{
  public:
    /** Fold one (x, y) pair into the accumulator. */
    void add(double x, double y);

    /** Number of pairs folded in. */
    uint64_t count() const { return n_; }

    /** Unbiased sample covariance; 0 with fewer than two pairs. */
    double covariance() const;

    /** Pearson correlation coefficient; 0 when degenerate. */
    double correlation() const;

    /** Mean of the x series. */
    double meanX() const { return meanX_; }

    /** Mean of the y series. */
    double meanY() const { return meanY_; }

  private:
    uint64_t n_ = 0;
    double meanX_ = 0.0;
    double meanY_ = 0.0;
    double m2x_ = 0.0;
    double m2y_ = 0.0;
    double cxy_ = 0.0;
};

} // namespace tdp

#endif // TDP_COMMON_RUNNING_STATS_HH

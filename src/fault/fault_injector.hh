/**
 * @file
 * Fault injector: executes a FaultPlan at the measurement-layer
 * boundaries (CounterSampler, DataAcquisition, sync-pulse path).
 *
 * All randomness comes from private streams derived from the run's
 * master seed, so a given (seed, plan) pair injects the exact same
 * fault sequence whether the experiment runs alone or inside a
 * many-worker ExperimentPool. The injector also keeps counts of every
 * fault it injected, which the robustness sweep reports next to the
 * recovery counters of the hardened consumers.
 */

#ifndef TDP_FAULT_FAULT_INJECTOR_HH
#define TDP_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"
#include "cpu/perf_counters.hh"
#include "fault/fault_plan.hh"

namespace tdp {

/** Per-run deterministic executor of a FaultPlan. */
class FaultInjector
{
  public:
    /** What happened to one serial sync byte. */
    enum class PulseFault
    {
        None,      ///< delivered normally
        Miss,      ///< never arrived
        Duplicate, ///< received twice
    };

    /** One rail-level DAQ corruption; rail < 0 means no glitch. */
    struct Glitch
    {
        int rail = -1;
        double value = 0.0;
    };

    /** Counts of injected faults (the ground truth for recovery). */
    struct Stats
    {
        uint64_t readingsDropped = 0;
        uint64_t pulsesMissed = 0;
        uint64_t pulsesDuplicated = 0;
        uint64_t pulsesDelayed = 0;
        uint64_t blocksDropped = 0;
        uint64_t blocksGlitched = 0;
        uint64_t counterWraps = 0;
        uint64_t eventsMasked = 0;

        /** Total faults injected (masked events counted once each). */
        uint64_t total() const;
    };

    /**
     * @param master_seed the run's master seed (System::masterSeed()).
     * @param name stream-name prefix for the injector's RNG streams.
     * @param plan the fault plan; validate()d here.
     */
    FaultInjector(uint64_t master_seed, const std::string &name,
                  const FaultPlan &plan);

    /** The validated plan. */
    const FaultPlan &plan() const { return plan_; }

    /** Injected-fault counts so far. */
    const Stats &stats() const { return stats_; }

    /**
     * Pass one just-read PMU snapshot through the fault model: wrap
     * the raw counters at the configured width (the driver-side
     * wrappedCounterDelta() reconstruction is applied, mirroring a
     * real perfctr read) and mask unavailable events to NaN.
     */
    void corruptSnapshot(int cpu, CounterSnapshot &snapshot);

    /** True when this reading is lost before reaching the log. */
    bool dropReading();

    /** Fate of one sync byte. */
    PulseFault pulseFault();

    /** Extra serial latency on one delivered pulse (s; may be 0). */
    Seconds pulseLatency();

    /** True when this DAQ block is never recorded. */
    bool dropBlock();

    /**
     * Corruption of one DAQ block across `num_rails` rails; returns
     * rail < 0 when the block survives intact.
     */
    Glitch blockGlitch(int num_rails);

  private:
    FaultPlan plan_;
    Rng samplerRng_;
    Rng pulseRng_;
    Rng daqRng_;
    std::array<bool, numPerfEvents> unavailable_{};
    /** Simulated wrapped raw counter values, per CPU. */
    std::vector<CounterSnapshot> rawCounters_;
    Stats stats_;
};

} // namespace tdp

#endif // TDP_FAULT_FAULT_INJECTOR_HH

/**
 * @file
 * Implementation of the string utilities.
 */

#include "common/strings.hh"

#include <algorithm>
#include <cctype>

namespace tdp {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string current;
    for (char c : s) {
        if (c == delim) {
            out.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    out.push_back(current);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(s[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1]))) {
        --end;
    }
    return s.substr(begin, end - begin);
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::tolower(c));
                   });
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

} // namespace tdp

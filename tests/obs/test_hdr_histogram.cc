/**
 * @file
 * Quantile-accuracy tests for the log-linear HDR histogram: every
 * estimate is checked against an exact-sort reference and must land
 * in [v, v * (1 + relativeErrorBound())], the bound the header
 * documents. Distributions cover the shapes the streaming latency
 * tracker actually sees: bimodal (fast path vs queued), heavy tail,
 * everything-in-one-bucket, and empty.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "obs/hdr_histogram.hh"

namespace tdp {
namespace obs {
namespace {

/** Deterministic 64-bit LCG (top bits), seeded per test. */
class Lcg {
  public:
    explicit Lcg(uint64_t seed) : state_(seed) {}
    uint64_t next()
    {
        state_ = state_ * 6364136223846793005ULL +
                 1442695040888963407ULL;
        return state_ >> 16;
    }

  private:
    uint64_t state_;
};

/** Exact order statistic matching quantile()'s rank definition. */
uint64_t
exactQuantile(std::vector<uint64_t> sorted, double q)
{
    const auto n = static_cast<uint64_t>(sorted.size());
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<uint64_t>(rank, 1, n);
    return sorted[rank - 1];
}

const double kQuantiles[] = {0.0, 0.5, 0.9, 0.99, 0.999, 1.0};

/** Record @p values and assert every quantile honours the bound. */
void
expectWithinBound(const std::vector<uint64_t> &values, int bits)
{
    HdrHistogram hist(bits);
    for (uint64_t v : values)
        hist.record(v);
    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());

    ASSERT_EQ(hist.count(), values.size());
    EXPECT_EQ(hist.max(), sorted.back());
    const double bound = hist.relativeErrorBound();
    for (double q : kQuantiles) {
        const uint64_t exact = exactQuantile(sorted, q);
        const uint64_t estimate = hist.quantile(q);
        EXPECT_GE(estimate, exact) << "q=" << q;
        EXPECT_LE(static_cast<double>(estimate),
                  static_cast<double>(exact) * (1.0 + bound))
            << "q=" << q << " exact=" << exact;
    }
}

TEST(HdrHistogram, LinearRegionIsExact)
{
    // Values below 2^bits get one bucket each: estimates are exact.
    const int bits = 5;
    HdrHistogram hist(bits);
    Lcg rng(0x11);
    std::vector<uint64_t> values;
    for (int i = 0; i < 4096; ++i)
        values.push_back(rng.next() % (uint64_t(1) << bits));
    for (uint64_t v : values)
        hist.record(v);
    std::sort(values.begin(), values.end());
    for (double q : kQuantiles)
        EXPECT_EQ(hist.quantile(q), exactQuantile(values, q))
            << "q=" << q;
}

TEST(HdrHistogram, BimodalWithinDocumentedBound)
{
    // Two latency modes three decades apart, the shape that defeats
    // a single p50/p99 pair: fast-path ticks near 100, stalled
    // drains near 100000.
    Lcg rng(0x22);
    std::vector<uint64_t> values;
    for (int i = 0; i < 10000; ++i) {
        if (i % 2 == 0)
            values.push_back(80 + rng.next() % 40);
        else
            values.push_back(90000 + rng.next() % 20000);
    }
    expectWithinBound(values, 5);
}

TEST(HdrHistogram, HeavyTailWithinDocumentedBound)
{
    // Roughly log-uniform magnitudes spanning 1 .. 2^40.
    Lcg rng(0x33);
    std::vector<uint64_t> values;
    for (int i = 0; i < 10000; ++i) {
        const int magnitude = static_cast<int>(rng.next() % 40);
        values.push_back((uint64_t(1) << magnitude) +
                         rng.next() % (uint64_t(1) << magnitude));
    }
    expectWithinBound(values, 5);
    // A coarser histogram must still honour its (wider) bound.
    expectWithinBound(values, 2);
}

TEST(HdrHistogram, SingleBucketCollapsesToTheRecordedValue)
{
    // All mass in one log-linear bucket: the estimate is clamped to
    // the recorded max, so it is exact despite the bucket width.
    HdrHistogram hist(5);
    hist.record(123456789, 1000);
    EXPECT_EQ(hist.count(), 1000u);
    EXPECT_EQ(hist.bucketsUsed(), 1u);
    for (double q : kQuantiles)
        EXPECT_EQ(hist.quantile(q), 123456789u) << "q=" << q;
}

TEST(HdrHistogram, EmptyHistogramReportsZeroes)
{
    const HdrHistogram hist(5);
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.max(), 0u);
    EXPECT_EQ(hist.bucketsUsed(), 0u);
    for (double q : kQuantiles)
        EXPECT_EQ(hist.quantile(q), 0u) << "q=" << q;
}

TEST(HdrHistogram, BucketIndexRoundTripsEveryMagnitude)
{
    // bucketHigh(indexOf(v)) is the smallest retained upper bound:
    // it must cover v, and the previous bucket must not.
    HdrHistogram hist(5);
    Lcg rng(0x44);
    for (int magnitude = 0; magnitude < 63; ++magnitude) {
        for (int i = 0; i < 8; ++i) {
            const uint64_t v = (uint64_t(1) << magnitude) +
                               rng.next() % (uint64_t(1) << magnitude);
            const size_t index = hist.indexOf(v);
            ASSERT_LT(index, hist.bucketCount());
            EXPECT_GE(hist.bucketHigh(index), v);
            if (index > 0)
                EXPECT_LT(hist.bucketHigh(index - 1), v);
        }
    }
}

TEST(HdrHistogram, MergeMatchesRecordingTheUnion)
{
    Lcg rng(0x55);
    std::vector<uint64_t> first, second, all;
    for (int i = 0; i < 2000; ++i) {
        first.push_back(1 + rng.next() % 1000);
        second.push_back(5000 + rng.next() % 100000);
    }
    HdrHistogram a(5), b(5), unionHist(5);
    for (uint64_t v : first) {
        a.record(v);
        unionHist.record(v);
        all.push_back(v);
    }
    for (uint64_t v : second) {
        b.record(v);
        unionHist.record(v);
        all.push_back(v);
    }
    a.mergeFrom(b);
    EXPECT_EQ(a.count(), unionHist.count());
    EXPECT_EQ(a.max(), unionHist.max());
    for (double q : kQuantiles)
        EXPECT_EQ(a.quantile(q), unionHist.quantile(q)) << "q=" << q;

    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.quantile(0.99), 0u);
    EXPECT_EQ(a.bucketsUsed(), 0u);
}

TEST(HdrHistogram, MergeAcrossSubBucketBitsIsFatal)
{
    // Different sub-bucket bits mean different bucket geometries; an
    // index-wise sum would blend unrelated value ranges, so the merge
    // must refuse loudly instead of producing nonsense quantiles.
    HdrHistogram fine(6), coarse(4);
    fine.record(100);
    coarse.record(100);
    EXPECT_THROW(coarse.mergeFrom(fine), FatalError);
    try {
        coarse.mergeFrom(fine);
        FAIL() << "mergeFrom across bits did not fatal";
    } catch (const FatalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("subBucketBits"), std::string::npos)
            << what;
        EXPECT_NE(what.find("6-bit"), std::string::npos) << what;
        EXPECT_NE(what.find("4-bit"), std::string::npos) << what;
    }
    // The refused merge left the target untouched.
    EXPECT_EQ(coarse.count(), 1u);
    EXPECT_EQ(coarse.quantile(1.0), 100u);
}

TEST(HdrHistogram, RelativeErrorBoundTracksSubBucketBits)
{
    EXPECT_DOUBLE_EQ(HdrHistogram(1).relativeErrorBound(), 0.5);
    EXPECT_DOUBLE_EQ(HdrHistogram(5).relativeErrorBound(), 0.03125);
    EXPECT_DOUBLE_EQ(HdrHistogram(10).relativeErrorBound(),
                     1.0 / 1024.0);
}

} // namespace
} // namespace obs
} // namespace tdp

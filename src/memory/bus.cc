/**
 * @file
 * Implementation of the front-side bus.
 */

#include "memory/bus.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tdp {

FrontSideBus::FrontSideBus(System &system, const std::string &name,
                           const Params &params)
    : SimObject(system, name), params_(params)
{
    if (params_.capacityTxPerSec <= 0.0)
        fatal("FrontSideBus: capacity must be positive");
    system.addTicked(this, TickPhase::Memory);
}

void
FrontSideBus::addTransactions(BusTxKind kind, double count)
{
    if (count < 0.0)
        panic("FrontSideBus: negative transaction count %g", count);
    pending_[static_cast<int>(kind)] += count;
}

double
FrontSideBus::pendingOfKind(BusTxKind kind) const
{
    return pending_[static_cast<int>(kind)];
}

double
FrontSideBus::pendingTotal() const
{
    double total = 0.0;
    for (double p : pending_)
        total += p;
    return total;
}

double
FrontSideBus::prevOfKind(BusTxKind kind) const
{
    return prev_[static_cast<int>(kind)];
}

double
FrontSideBus::lifetimeOfKind(BusTxKind kind) const
{
    return lifetime_[static_cast<int>(kind)];
}

double
FrontSideBus::throttleFactor() const
{
    // Below ~85% utilisation the bus adds no backpressure; beyond
    // that, queueing reduces achievable demand throughput smoothly.
    const double u = prevUtilization_;
    if (u <= 0.85)
        return 1.0;
    return std::max(0.4, 1.0 - 0.8 * (u - 0.85));
}

void
FrontSideBus::tickUpdate(Tick /* now */, Tick quantum)
{
    const double dt = ticksToSeconds(quantum);
    const double capacity = params_.capacityTxPerSec * dt;

    double total = 0.0;
    for (int k = 0; k < numBusTxKinds; ++k) {
        prev_[k] = pending_[k];
        lifetime_[k] += pending_[k];
        total += pending_[k];
        pending_[k] = 0.0;
    }
    prevTotal_ = total;
    prevUtilization_ = capacity > 0.0 ? total / capacity : 0.0;
}

} // namespace tdp

file(REMOVE_RECURSE
  "CMakeFiles/tdp_stats.dir/matrix.cc.o"
  "CMakeFiles/tdp_stats.dir/matrix.cc.o.d"
  "CMakeFiles/tdp_stats.dir/metrics.cc.o"
  "CMakeFiles/tdp_stats.dir/metrics.cc.o.d"
  "CMakeFiles/tdp_stats.dir/regression.cc.o"
  "CMakeFiles/tdp_stats.dir/regression.cc.o.d"
  "CMakeFiles/tdp_stats.dir/solve.cc.o"
  "CMakeFiles/tdp_stats.dir/solve.cc.o.d"
  "libtdp_stats.a"
  "libtdp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

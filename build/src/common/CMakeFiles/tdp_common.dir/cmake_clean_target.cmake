file(REMOVE_RECURSE
  "libtdp_common.a"
)

/**
 * @file
 * Streaming-service sweep: drives the hardened streaming estimator
 * (src/stream/) through 12 workload load-shapes x 5 adversarial
 * phases and asserts the whole thing is deterministic - the service
 * digest (every drained sample's verdict, every published watt,
 * every refit and drift transition) must be byte-identical at
 * --jobs 1 and --jobs N in *every* phase, including forced overload
 * (shedding + hard overflow), full-poison (every client quarantined)
 * and drift (per-rail fallback engagement and recovery).
 *
 * Phases per workload:
 *
 *  1. steady   - in-budget traffic; refits verified bitwise against
 *                the from-scratch window recomputation (verifyRefits);
 *  2. overload - tight rings + small drain budget under burst
 *                traffic; deterministic shedding, hard overflow and
 *                nonzero queue-delay percentiles;
 *  3. stall    - half the fleet goes silent mid-phase (idle-timeout
 *                eviction) and returns as fresh sessions;
 *  4. poison   - every client turns malicious after its baseline
 *                (chaos-plan style deterministic per-client faults:
 *                NaN counters, duplicate and stale sequence numbers);
 *                the full fleet must end quarantined with the service
 *                still live;
 *  5. drift    - the CPU rail's physics shift mid-phase; the drift
 *                guard must engage the fallback chain, the windowed
 *                refit must adapt, and the rail must be re-promoted.
 *
 * The drift-phase service of the last workload contributes the
 * stream.* manifest sections (ingest, session, SLO, per-rail model
 * state) that scripts/validate_manifest.py --require-stream checks
 * in CI. Deterministic totals are reported as exact-gated metrics in
 * BENCH_bm_stream.json; wall-clock throughput rides along ungated.
 *
 * With --timeline-out (or TDP_TIMELINE_OUT) the per-phase services
 * run with the tick-indexed telemetry timeline enabled: the dump
 * file is refreshed at the end of every parallel phase (reason
 * "exit"), on SIGTERM drain ("sigterm", alongside partial stream.*
 * manifest sections and exit code 113) and on a mid-sweep fatal
 * ("fatal"); SIGUSR2 writes a `.sigusr2` side file mid-run and the
 * first quarantine writes a `.quarantine` side file. The timeline
 * digest joins the serial-vs-parallel comparison, and a telemetry
 * off/on A/B pass reports the ceiling-gated telemetry_overhead_ratio
 * metric (min over alternated pairs, limit 1.05). Without the flag
 * none of this runs and stdout is byte-identical to a build without
 * the telemetry code.
 *
 * Flags (after the shared bench flags, see bench_util.hh):
 *   --stream PHASES   comma list of phases to run (default: all)
 *   --clients N       fleet size per workload, 2..4096
 *                                               [TDP_STREAM_CLIENTS]
 *   --rounds N        rounds per phase          [TDP_STREAM_ROUNDS]
 *   --window N        refit window blocks       [TDP_STREAM_WINDOW]
 *   --seed V          admission/shed hash seed  [TDP_STREAM_SEED]
 *
 * --clients is capped at 4096: the sweep is a correctness harness
 * that replays every phase twice (serial + parallel reference), so
 * fleet-scale runs belong in bench/stream_scale. --clients also
 * interacts with --window: refit blocks seal every refitBlockRows
 * *accepted* samples, so a small fleet fills a wide window slowly
 * and early refits run on a partial window (fewer sealed blocks than
 * --window) - more clients per round means more sealed blocks and
 * tighter refit cadence at the same --window.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_util.hh"
#include "common/logging.hh"
#include "measure/trace_io.hh"
#include "resilience/retry.hh"
#include "resilience/shutdown.hh"
#include "stream/service.hh"
#include "stream/synthetic.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;
using stream::Admission;
using stream::DriftState;
using stream::RailStatus;
using stream::StreamConfig;
using stream::StreamSample;
using stream::StreamService;

/** One workload: a deterministic load shape u(round, client). */
struct Workload
{
    const char *name;
    double base;
    double amplitude;
    int period;
};

/** The paper's 12-workload suite mapped onto load shapes. */
const std::vector<Workload> suite = {
    {"idle", 0.02, 0.02, 8},     {"gcc", 0.55, 0.35, 12},
    {"mcf", 0.45, 0.40, 9},      {"vortex", 0.60, 0.25, 15},
    {"dbt2", 0.35, 0.30, 7},     {"specjbb", 0.70, 0.25, 11},
    {"art", 0.65, 0.30, 13},     {"lucas", 0.50, 0.45, 10},
    {"mesa", 0.40, 0.35, 14},    {"mgrid", 0.55, 0.40, 8},
    {"wupwise", 0.60, 0.30, 16}, {"diskload", 0.30, 0.25, 6}};

const std::vector<std::string> allPhases = {
    "steady", "overload", "stall", "poison", "drift"};

/**
 * Correctness-sweep fleet ceiling: each phase runs twice per
 * workload, so the sweep scales as 2 x 12 x 5 x clients x rounds.
 * Fleet-scale throughput runs belong in bench/stream_scale.
 */
constexpr int maxSweepClients = 4096;

struct SweepOptions
{
    int clients = 12;
    int rounds = 32;
    int windowBlocks = 4;
    uint64_t seed = 0x5eedc4a7;
    std::vector<std::string> phases = allPhases;
};

/** Load of one client at one round: triangular wave per workload. */
double
loadOf(const Workload &w, int round, int client)
{
    const int p = w.period;
    const int phase = round % (2 * p);
    const double tri =
        phase < p ? static_cast<double>(phase) / p
                  : static_cast<double>(2 * p - phase) / p;
    double u = (w.base + w.amplitude * tri) *
               (0.75 + 0.02 * (client % 8));
    if (u < 0.0)
        u = 0.0;
    if (u > 1.0)
        u = 1.0;
    return u;
}

/**
 * The service whose telemetry a mid-run dump (SIGUSR2, SIGTERM,
 * fatal) snapshots. Phases run strictly one at a time on the main
 * thread, so a plain pointer to the live service is safe; it is
 * cleared before the service goes out of scope.
 */
const StreamService *liveService = nullptr;

/** One `.quarantine` dump per process: first quarantine wins. */
bool quarantineDumped = false;

/** True when --timeline-out / TDP_TIMELINE_OUT enabled telemetry. */
bool
timelineActive()
{
    return !timelineOutPath().empty();
}

/**
 * Poll the async-signal flags between ticks (the handlers only set
 * relaxed atomics, PR-5 style). SIGUSR2 dumps the live telemetry to
 * a side file and continues; SIGTERM flushes whatever the live
 * service has seen so far - partial stream.* manifest sections and
 * the timeline - then exits with the clean-abort code so postmortems
 * of drained runs are never empty.
 */
void
pollSignals(const StreamService &service)
{
    if (resilience::dumpRequested()) {
        if (timelineActive())
            service.writeTimeline(timelineOutPath() + ".sigusr2",
                                  "bm_stream", "sigusr2");
        resilience::clearDumpRequest();
    }
    if (!resilience::shutdownRequested())
        return;
    if (observabilityEnabled()) {
        service.addManifestSections(runManifest());
        if (timelineActive())
            service.writeTimeline(timelineOutPath(), "bm_stream",
                                  "sigterm");
        flushObservability();
    }
    std::exit(resilience::cleanAbortExitCode);
}

/**
 * Digest of every sealed timeline window, folded bytewise (sealing
 * zeroes the padding). Part of PhaseResult, so the sweep's serial
 * vs parallel comparison also proves the *telemetry* is
 * byte-identical at any worker count. 0 when the timeline is off.
 */
uint64_t
timelineDigestOf(const StreamService &service)
{
    uint64_t digest = fnv1aBasis;
    service.telemetry().timeline().forEach(
        [&](const stream::TimelineWindow &w) {
            digest = fnv1a64(&w, sizeof w, digest);
        });
    return digest;
}

/** Everything a phase run must reproduce at any worker count. */
struct PhaseResult
{
    uint64_t digest = 0;
    uint64_t timelineDigest = 0;
    uint64_t offered = 0;
    uint64_t shed = 0;
    uint64_t overflow = 0;
    uint64_t accepted = 0;
    uint64_t invalid = 0;
    uint64_t quarantines = 0;
    uint64_t evicted = 0;
    uint64_t refits = 0;
    uint64_t verifiedRefits = 0;
    uint64_t driftEngaged = 0;
    uint64_t driftRecovered = 0;
    uint64_t p99Ticks = 0;
};

StreamConfig
phaseConfig(const SweepOptions &opt, size_t workload,
            const std::string &phase)
{
    StreamConfig cfg;
    cfg.ingest.shards = 4;
    cfg.ingest.ringCapacity = 256;
    cfg.ingest.highWatermark = 224;
    cfg.ingest.seed = opt.seed ^ (workload * 0x9e3779b9u);
    cfg.session.counterWidthBits = 40;
    cfg.session.idleTimeoutTicks = 64;
    cfg.session.quarantineThreshold = 4;
    cfg.session.wattsWindow = 8;
    cfg.drift.window = 16;
    cfg.drift.factor = 3.0;
    cfg.drift.floorWatts = 0.5;
    cfg.drift.healthyWindows = 2;
    cfg.refitBlockRows = 8;
    cfg.refitWindowBlocks =
        static_cast<size_t>(opt.windowBlocks);
    cfg.drainBudget = 64;
    cfg.evictEveryTicks = 16;
    cfg.verifyRefits = true;
    // The flight recorder is always on; the timeline ring + HDR
    // latency windows engage only when a dump path was configured.
    cfg.telemetry.timeline = timelineActive();
    cfg.telemetry.windowTicks = 16;

    if (phase == "overload") {
        // Tight rings and a small drain budget: the burst traffic
        // must ramp through shedding into hard overflow, and queued
        // samples must age enough to move the p99 latency.
        cfg.ingest.shards = 2;
        cfg.ingest.ringCapacity = 16;
        cfg.ingest.highWatermark = 8;
        cfg.drainBudget = 4;
    } else if (phase == "stall") {
        cfg.session.idleTimeoutTicks = 6;
        cfg.evictEveryTicks = 4;
    }
    return cfg;
}

/** Chaos-plan style deterministic per-(client, round) decision. */
bool
chaosHit(uint64_t seed, uint64_t client, uint64_t round,
         double probability)
{
    return resilience::hashUnit(seed ^ 0xc4a05u, client, round) <
           probability;
}

PhaseResult
runPhase(const SweepOptions &opt, size_t workload,
         const std::string &phase, int jobs)
{
    const Workload &w = suite[workload];
    StreamConfig cfg = phaseConfig(opt, workload, phase);
    StreamService service(cfg, stream::synthetic::trainedEstimator());
    const ExperimentPool pool(jobs);
    stream::synthetic::Fleet fleet(opt.clients, 40);
    liveService = &service;

    // Between-tick bookkeeping: answer SIGUSR2/SIGTERM promptly and
    // snapshot the flight recorder the first time a client lands in
    // quarantine (the `.quarantine` side file survives the exit
    // overwrite of the main dump).
    const auto afterTick = [&] {
        pollSignals(service);
        if (timelineActive() && !quarantineDumped &&
            service.sessionStats().quarantines > 0) {
            quarantineDumped = true;
            service.writeTimeline(timelineOutPath() + ".quarantine",
                                  "bm_stream", "quarantine");
        }
    };

    PhaseResult result;
    const int half = opt.rounds / 2;
    for (int round = 0; round < opt.rounds; ++round) {
        for (int c = 0; c < opt.clients; ++c) {
            const double u = loadOf(w, round, c);
            if (phase == "stall" && c < opt.clients / 2 &&
                round >= half / 2 && round < half + half / 2)
                continue; // half the fleet goes silent mid-phase

            const double shift =
                phase == "drift" && round >= half ? 35.0 : 0.0;
            StreamSample sample = fleet.next(c, u, shift);
            if (phase == "poison" && round >= 2) {
                // Full poison: every client misbehaves, with the
                // fault class hashed per (client, round) so the run
                // is reproducible at any worker count.
                if (chaosHit(cfg.ingest.seed, sample.client, round,
                             0.5)) {
                    sample.raw.counts[0] = std::nan("");
                } else if (chaosHit(cfg.ingest.seed ^ 1,
                                    sample.client, round, 0.5)) {
                    sample.seq = 1; // stale sequence number
                } else {
                    sample.time = 0.0; // stale timestamp
                }
            }
            ++result.offered;
            service.offer(sample);
            if (phase == "overload") {
                // Burst: four extra offers per client per round.
                for (int burst = 0; burst < 4; ++burst) {
                    ++result.offered;
                    service.offer(fleet.next(c, u));
                }
            }
        }
        service.tick(pool);
        afterTick();
    }
    // Drain the backlog the overload phase leaves in the rings.
    for (int i = 0; i < 64; ++i) {
        service.tick(pool);
        afterTick();
    }

    result.digest = service.digest();
    result.timelineDigest = timelineDigestOf(service);
    result.shed = service.ingestStats().shed;
    result.overflow = service.ingestStats().overflow;
    const auto sessions = service.sessionStats();
    result.accepted = sessions.accepted;
    result.invalid = sessions.nonFinite + sessions.outOfRange +
                     sessions.duplicateSeq + sessions.outOfOrderSeq +
                     sessions.staleTime + sessions.zeroCycles;
    result.quarantines = sessions.quarantines;
    result.evicted = sessions.evicted;
    for (int r = 0; r < numRails; ++r) {
        const RailStatus status =
            service.railStatus(static_cast<Rail>(r));
        result.refits += status.refits;
        result.verifiedRefits += status.verifiedRefits;
        result.driftEngaged += status.drift.engaged;
        result.driftRecovered += status.drift.recovered;
    }
    result.p99Ticks = service.slo().p99Ticks;

    // The last workload's drift-phase service carries the stream.*
    // manifest sections CI validates (drift engagement + recovery
    // visible in stream.rails).
    if (observabilityEnabled() && phase == "drift" &&
        workload + 1 == suite.size() && jobs > 1)
        service.addManifestSections(runManifest());
    // Every parallel run refreshes the exit dump; the last completed
    // phase wins, so the file always holds a full, current snapshot.
    if (timelineActive() && jobs > 1)
        service.writeTimeline(timelineOutPath(), "bm_stream", "exit");
    liveService = nullptr;
    return result;
}

void
assertSamePhase(const PhaseResult &serial, const PhaseResult &wide,
                const char *workload, const std::string &phase,
                int jobs)
{
    if (serial.digest != wide.digest)
        fatal("stream_sweep: %s/%s digest diverged between --jobs 1 "
              "(%016llx) and --jobs %d (%016llx)",
              workload, phase.c_str(),
              static_cast<unsigned long long>(serial.digest), jobs,
              static_cast<unsigned long long>(wide.digest));
    if (std::memcmp(&serial, &wide, sizeof serial) != 0)
        fatal("stream_sweep: %s/%s counters diverged between worker "
              "counts",
              workload, phase.c_str());
}

/** Per-phase invariants: each phase must exercise what it claims. */
void
assertPhaseInteresting(const PhaseResult &r, const char *workload,
                       const std::string &phase)
{
    if (r.accepted == 0)
        fatal("stream_sweep: %s/%s accepted nothing", workload,
              phase.c_str());
    if (phase == "steady" &&
        (r.refits == 0 || r.verifiedRefits == 0))
        fatal("stream_sweep: %s/steady saw no verified refits",
              workload);
    if (phase == "overload" && (r.shed == 0 || r.overflow == 0))
        fatal("stream_sweep: %s/overload shed %llu, overflowed %llu "
              "- the overload phase proved nothing",
              workload, static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.overflow));
    if (phase == "stall" && r.evicted == 0)
        fatal("stream_sweep: %s/stall evicted nobody", workload);
    if (phase == "poison" && r.quarantines == 0)
        fatal("stream_sweep: %s/poison quarantined nobody", workload);
    if (phase == "drift" &&
        (r.driftEngaged == 0 || r.driftRecovered == 0))
        fatal("stream_sweep: %s/drift engaged %llu, recovered %llu "
              "- fallback/recovery not demonstrated",
              workload,
              static_cast<unsigned long long>(r.driftEngaged),
              static_cast<unsigned long long>(r.driftRecovered));
}

/**
 * One timed leg of the telemetry-overhead A/B: a steady gcc-shaped
 * workload driven through a fresh single-worker service with the
 * timeline either off or on. Refit verification is disabled so the
 * measurement covers the service hot path, not the bitwise refit
 * checker.
 */
double
overheadLeg(const SweepOptions &opt, bool timeline, uint64_t *digest)
{
    StreamConfig cfg = phaseConfig(opt, 1, "steady");
    cfg.verifyRefits = false;
    cfg.telemetry.timeline = timeline;
    StreamService service(cfg, stream::synthetic::trainedEstimator());
    const ExperimentPool pool(1);
    const int clients = 192;
    const int rounds = 96;
    stream::synthetic::Fleet fleet(clients, 40);
    const Workload &w = suite[1];

    const auto start = std::chrono::steady_clock::now();
    for (int round = 0; round < rounds; ++round) {
        for (int c = 0; c < clients; ++c)
            service.offer(fleet.next(c, loadOf(w, round, c)));
        service.tick(pool);
    }
    for (int i = 0; i < 16; ++i)
        service.tick(pool);
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    *digest = service.digest();
    return seconds;
}

/**
 * Telemetry-on vs telemetry-off wall-clock ratio, taken as the MIN
 * over alternated off/on pairs. Scheduler noise on a busy box only
 * ever inflates a leg, so the smallest observed ratio is the
 * tightest sound estimate of the true overhead; a mean would gate on
 * the noise instead. The off and on legs must produce the same
 * digest - telemetry never touches the estimation path.
 */
double
measureTelemetryOverhead(const SweepOptions &opt)
{
    uint64_t warm = 0;
    overheadLeg(opt, false, &warm); // warm caches outside the pairs
    double best = 0.0;
    const int pairs = 3;
    for (int pair = 0; pair < pairs; ++pair) {
        uint64_t offDigest = 0;
        uint64_t onDigest = 0;
        const double off = overheadLeg(opt, false, &offDigest);
        const double on = overheadLeg(opt, true, &onDigest);
        if (offDigest != onDigest)
            fatal("stream_sweep: enabling telemetry changed the "
                  "service digest (%016llx off, %016llx on) - "
                  "telemetry must never touch the estimation path",
                  static_cast<unsigned long long>(offDigest),
                  static_cast<unsigned long long>(onDigest));
        const double ratio = off > 0.0 ? on / off : 1.0;
        if (best == 0.0 || ratio < best)
            best = ratio;
    }
    emitStats("stream_sweep: telemetry overhead ratio %.4f "
              "(min of %d off/on pairs)",
              best, pairs);
    return best;
}

SweepOptions
parseOptions(const std::vector<std::string> &args)
{
    SweepOptions opt;
    if (const char *env = std::getenv("TDP_STREAM_CLIENTS"))
        opt.clients = std::atoi(env);
    if (const char *env = std::getenv("TDP_STREAM_ROUNDS"))
        opt.rounds = std::atoi(env);
    if (const char *env = std::getenv("TDP_STREAM_WINDOW"))
        opt.windowBlocks = std::atoi(env);
    if (const char *env = std::getenv("TDP_STREAM_SEED"))
        opt.seed = std::strtoull(env, nullptr, 0);

    auto intValue = [&](const std::string &text, const char *flag) {
        const int value = std::atoi(text.c_str());
        if (value <= 0)
            fatal("stream_sweep: %s needs a positive integer, got "
                  "'%s'",
                  flag, text.c_str());
        return value;
    };
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto value = [&](const char *name,
                         const char *prefix) -> std::string {
            if (arg.rfind(prefix, 0) == 0)
                return arg.substr(std::strlen(prefix));
            if (i + 1 >= args.size())
                fatal("stream_sweep: %s needs a value", name);
            return args[++i];
        };
        if (arg == "--clients" || arg.rfind("--clients=", 0) == 0) {
            opt.clients =
                intValue(value("--clients", "--clients="),
                         "--clients");
        } else if (arg == "--rounds" ||
                   arg.rfind("--rounds=", 0) == 0) {
            opt.rounds = intValue(value("--rounds", "--rounds="),
                                  "--rounds");
        } else if (arg == "--window" ||
                   arg.rfind("--window=", 0) == 0) {
            opt.windowBlocks =
                intValue(value("--window", "--window="), "--window");
        } else if (arg == "--seed" || arg.rfind("--seed=", 0) == 0) {
            opt.seed = std::strtoull(
                value("--seed", "--seed=").c_str(), nullptr, 0);
        } else if (arg == "--stream" ||
                   arg.rfind("--stream=", 0) == 0) {
            opt.phases.clear();
            std::string list = value("--stream", "--stream=");
            size_t start = 0;
            while (start <= list.size()) {
                const size_t comma = list.find(',', start);
                const std::string phase = list.substr(
                    start, comma == std::string::npos
                               ? std::string::npos
                               : comma - start);
                if (!phase.empty()) {
                    bool known = false;
                    for (const std::string &p : allPhases)
                        known = known || p == phase;
                    if (!known)
                        fatal("stream_sweep: unknown phase '%s'",
                              phase.c_str());
                    opt.phases.push_back(phase);
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            if (opt.phases.empty())
                fatal("stream_sweep: --stream selected no phases");
        } else {
            fatal("stream_sweep: unknown argument '%s'",
                  arg.c_str());
        }
    }
    if (opt.clients < 2)
        fatal("stream_sweep: need at least 2 clients");
    if (opt.clients > maxSweepClients)
        fatal("stream_sweep: --clients %d exceeds the %d ceiling. "
              "This sweep replays every workload/phase pair twice "
              "(serial + parallel reference) with refit "
              "verification on, so large fleets multiply into hours "
              "- for fleet-scale ingest measurements use "
              "bench/stream_scale, which drives millions of "
              "clients through the same service once per "
              "repetition",
              opt.clients, maxSweepClients);
    if (opt.rounds < 8)
        fatal("stream_sweep: need at least 8 rounds");
    return opt;
}

int
runSweep(int argc, char **argv)
{
    const SweepOptions opt = parseOptions(positionalArgs(argc, argv));
    const int wide = jobs() > 1 ? jobs() : 2;

    std::printf("Stream sweep: hardened streaming estimation "
                "service\n");
    std::printf("suite: %zu workloads x %zu phases, %d clients, %d "
                "rounds, window %d blocks\n\n",
                suite.size(), opt.phases.size(), opt.clients,
                opt.rounds, opt.windowBlocks);

    const int reps = benchRepetitions();
    std::vector<double> throughput, wallSeconds;
    PhaseResult totals;
    uint64_t digestChain = 0;

    for (int rep = 0; rep < reps; ++rep) {
        PhaseResult sum;
        uint64_t chain = fnv1aBasis;
        const auto start = std::chrono::steady_clock::now();
        for (size_t wl = 0; wl < suite.size(); ++wl) {
            for (const std::string &phase : opt.phases) {
                if (rep == 0) {
                    std::printf("  [%2zu/%zu] %-8s %-8s\n", wl + 1,
                                suite.size(), suite[wl].name,
                                phase.c_str());
                    std::fflush(stdout);
                }
                const PhaseResult serial =
                    runPhase(opt, wl, phase, 1);
                const PhaseResult parallel =
                    runPhase(opt, wl, phase, wide);
                assertSamePhase(serial, parallel, suite[wl].name,
                                phase, wide);
                assertPhaseInteresting(serial, suite[wl].name,
                                       phase);
                chain = fnv1a64(&serial.digest,
                                sizeof serial.digest, chain);
                sum.offered += serial.offered;
                sum.shed += serial.shed;
                sum.overflow += serial.overflow;
                sum.accepted += serial.accepted;
                sum.invalid += serial.invalid;
                sum.quarantines += serial.quarantines;
                sum.evicted += serial.evicted;
                sum.refits += serial.refits;
                sum.verifiedRefits += serial.verifiedRefits;
                sum.driftEngaged += serial.driftEngaged;
                sum.driftRecovered += serial.driftRecovered;
            }
        }
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        // Each phase ran twice (serial + parallel reference).
        throughput.push_back(
            seconds > 0.0
                ? static_cast<double>(2 * sum.offered) / seconds
                : 0.0);
        wallSeconds.push_back(seconds);
        if (rep == 0) {
            totals = sum;
            digestChain = chain;
        } else if (chain != digestChain) {
            fatal("stream_sweep: repetition %d produced a different "
                  "digest chain - the sweep is not deterministic",
                  rep + 1);
        }
    }

    std::printf("digest chain     %016llx (identical at --jobs 1 "
                "and --jobs %d, %d repetition(s))\n",
                static_cast<unsigned long long>(digestChain), wide,
                reps);
    std::printf("offered          %llu\n",
                static_cast<unsigned long long>(totals.offered));
    std::printf("accepted         %llu\n",
                static_cast<unsigned long long>(totals.accepted));
    std::printf("shed/overflow    %llu/%llu\n",
                static_cast<unsigned long long>(totals.shed),
                static_cast<unsigned long long>(totals.overflow));
    std::printf("invalid          %llu\n",
                static_cast<unsigned long long>(totals.invalid));
    std::printf("quarantines      %llu\n",
                static_cast<unsigned long long>(totals.quarantines));
    std::printf("evicted          %llu\n",
                static_cast<unsigned long long>(totals.evicted));
    std::printf("refits           %llu (%llu verified bitwise)\n",
                static_cast<unsigned long long>(totals.refits),
                static_cast<unsigned long long>(
                    totals.verifiedRefits));
    std::printf("drift            %llu engaged, %llu recovered\n",
                static_cast<unsigned long long>(totals.driftEngaged),
                static_cast<unsigned long long>(
                    totals.driftRecovered));

    const auto exact = [](const char *name, double value,
                          int reps_count) {
        MetricSeries series;
        series.name = name;
        series.values.assign(static_cast<size_t>(reps_count), value);
        series.unit = "count";
        series.gate = true;
        series.direction = "exact";
        return series;
    };
    std::vector<MetricSeries> metrics;
    metrics.push_back(exact("offered", double(totals.offered), reps));
    metrics.push_back(
        exact("accepted", double(totals.accepted), reps));
    metrics.push_back(exact("shed", double(totals.shed), reps));
    metrics.push_back(
        exact("overflow", double(totals.overflow), reps));
    metrics.push_back(
        exact("quarantines", double(totals.quarantines), reps));
    metrics.push_back(exact("evicted", double(totals.evicted), reps));
    metrics.push_back(exact("refits", double(totals.refits), reps));
    metrics.push_back(exact("drift_engaged",
                            double(totals.driftEngaged), reps));
    metrics.push_back(exact("drift_recovered",
                            double(totals.driftRecovered), reps));

    MetricSeries tput;
    tput.name = "ingest_samples_per_s";
    tput.values = throughput;
    tput.unit = "samples/s";
    tput.gate = false;
    tput.direction = "higher";
    metrics.push_back(tput);
    MetricSeries wall;
    wall.name = "sweep_seconds";
    wall.values = wallSeconds;
    wall.unit = "s";
    wall.gate = false;
    wall.direction = "lower";
    metrics.push_back(wall);

    if (timelineActive()) {
        // Ceiling-gated: telemetry on must stay within 5% of off.
        // Only measured (and only present in the JSON) when a
        // timeline path is configured, matching how the committed
        // baseline is produced.
        MetricSeries overhead;
        overhead.name = "telemetry_overhead_ratio";
        overhead.values = {measureTelemetryOverhead(opt)};
        overhead.unit = "x";
        overhead.gate = true;
        overhead.direction = "ceiling";
        overhead.limit = 1.05;
        metrics.push_back(overhead);
    }

    const std::string path = writeBenchSeries("bm_stream", metrics);
    std::printf("\nwrote %s\n", path.c_str());
    std::printf("stream sweep: all checks passed\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);
    resilience::installShutdownHandler();
    resilience::installDumpSignalHandler();
    try {
        return runSweep(argc, argv);
    } catch (const FatalError &) {
        // A fatal mid-sweep still leaves a postmortem: dump the live
        // service's telemetry, then let the error terminate the
        // process exactly as before.
        if (liveService != nullptr && timelineActive())
            liveService->writeTimeline(timelineOutPath(), "bm_stream",
                                       "fatal");
        throw;
    }
}

/**
 * @file
 * Tests for the memory controller: traffic routing, power
 * aggregation, and the DMA blending the paper's Equation 3 depends
 * on.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "memory/bus.hh"
#include "memory/controller.hh"
#include "sim/system.hh"

namespace tdp {
namespace {

struct Fixture
{
    System sys{1};
    FrontSideBus bus{sys, "fsb", FrontSideBus::Params{}};
    MemoryController ctl{sys, "memctl", bus, MemoryController::Params{}};
};

TEST(MemoryController, IdlePowerMatchesConfiguration)
{
    Fixture f;
    f.sys.runFor(0.002);
    const MemoryController::Params p;
    const double expected =
        p.controllerIdlePower +
        p.dimmCount * p.dimm.backgroundPower;
    EXPECT_NEAR(f.ctl.lastPower(), expected, 1e-9);
}

TEST(MemoryController, PowerRisesWithCpuTraffic)
{
    Fixture f;
    f.sys.runFor(0.001);
    const Watts idle = f.ctl.lastPower();
    f.bus.addTransactions(BusTxKind::DemandFill, 60e3);
    f.sys.runFor(0.001);
    EXPECT_GT(f.ctl.lastPower(), idle + 1.0);
}

TEST(MemoryController, DmaTrafficRaisesPowerToo)
{
    // The core of the paper's section 4.2.2: non-CPU agents consume
    // memory power.
    Fixture f;
    f.sys.runFor(0.001);
    const Watts idle = f.ctl.lastPower();
    f.bus.addTransactions(BusTxKind::Dma, 60e3);
    f.sys.runFor(0.001);
    EXPECT_GT(f.ctl.lastPower(), idle + 1.0);
}

TEST(MemoryController, WritebacksCountAsWrites)
{
    Fixture demand_only, with_wb;
    demand_only.bus.addTransactions(BusTxKind::DemandFill, 40e3);
    with_wb.bus.addTransactions(BusTxKind::DemandFill, 20e3);
    with_wb.bus.addTransactions(BusTxKind::Writeback, 20e3);
    demand_only.sys.runFor(0.001);
    with_wb.sys.runFor(0.001);
    // Same transaction count, but the writeback mix burns more energy
    // per access (write energy > read energy).
    EXPECT_GT(with_wb.ctl.lastPower(), demand_only.ctl.lastPower());
}

TEST(MemoryController, UncacheableTrafficDoesNotTouchDram)
{
    Fixture f;
    f.sys.runFor(0.001);
    const Watts idle = f.ctl.lastPower();
    f.bus.addTransactions(BusTxKind::Uncacheable, 40e3);
    f.sys.runFor(0.001);
    // MMIO space is not DRAM; only the controller's own per-tx energy
    // moves, which is small.
    EXPECT_NEAR(f.ctl.lastPower(), idle, 0.5);
}

TEST(MemoryController, PageHitRateCharacterMatters)
{
    Fixture local, thrash;
    local.ctl.setCpuTrafficCharacter(0.95);
    thrash.ctl.setCpuTrafficCharacter(0.10);
    local.bus.addTransactions(BusTxKind::DemandFill, 50e3);
    thrash.bus.addTransactions(BusTxKind::DemandFill, 50e3);
    local.sys.runFor(0.001);
    thrash.sys.runFor(0.001);
    EXPECT_GT(thrash.ctl.lastPower(), local.ctl.lastPower() + 1.0);
}

TEST(MemoryController, DmaHitRateBlending)
{
    // DMA is streaming-friendly: a DMA-dominated mix approaches the
    // configured dmaPageHitRate instead of the CPU's.
    Fixture cpu_heavy, dma_heavy;
    cpu_heavy.ctl.setCpuTrafficCharacter(0.10);
    dma_heavy.ctl.setCpuTrafficCharacter(0.10);
    cpu_heavy.bus.addTransactions(BusTxKind::DemandFill, 50e3);
    dma_heavy.bus.addTransactions(BusTxKind::Dma, 50e3);
    cpu_heavy.sys.runFor(0.001);
    dma_heavy.sys.runFor(0.001);
    // Same volume; the DMA stream's higher page-hit rate means fewer
    // activations and lower power.
    EXPECT_LT(dma_heavy.ctl.lastPower(), cpu_heavy.ctl.lastPower());
}

TEST(MemoryController, DimmCountValidated)
{
    System sys(1);
    FrontSideBus bus(sys, "fsb", FrontSideBus::Params{});
    MemoryController::Params p;
    p.dimmCount = 0;
    EXPECT_THROW(MemoryController(sys, "memctl", bus, p), FatalError);
}

TEST(MemoryController, TrafficSplitsEvenlyAcrossDimms)
{
    Fixture f;
    f.bus.addTransactions(BusTxKind::DemandFill, 80e3);
    f.sys.runFor(0.001);
    const DramBank &dimms = f.ctl.dimms();
    ASSERT_GT(dimms.size(), 0u);
    const double first = dimms.lifetimeReads(0);
    EXPECT_GT(first, 0.0);
    for (size_t d = 0; d < dimms.size(); ++d)
        EXPECT_NEAR(dimms.lifetimeReads(d), first, 1e-9);
}

} // namespace
} // namespace tdp

/**
 * @file
 * Property sweep over all twelve paper workloads: every run must
 * satisfy the physical and accounting invariants of the simulated
 * machine, whatever the workload does.
 */

#include <gtest/gtest.h>

#include "common/running_stats.hh"
#include "platform/server.hh"
#include "workloads/suite.hh"

namespace tdp {
namespace {

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{
  protected:
    /** Run the named workload briefly and collect the trace. */
    SampleTrace
    run()
    {
        Server server(0xF00D);
        const std::string &name = GetParam();
        if (name != "idle")
            server.runner().launchStaggered(name, 8, 0.5, 0.0);
        server_total_uops_ = 0.0;
        server.run(40.0);
        const SampleTrace trace =
            server.rig().collect().slice(5.0, 41.0);
        for (int i = 0; i < server.cpus().coreCount(); ++i) {
            server_total_uops_ +=
                server.cpus().core(i).counters().lifetime(
                    PerfEvent::FetchedUops);
        }
        return trace;
    }

    double server_total_uops_ = 0.0;
};

TEST_P(WorkloadSweep, RailsWithinPhysicalBounds)
{
    const SampleTrace trace = run();
    ASSERT_GT(trace.size(), 20u);
    for (const AlignedSample &s : trace.samples()) {
        // CPU: between deep idle and 4x max package power.
        EXPECT_GT(s.measured(Rail::Cpu), 30.0);
        EXPECT_LT(s.measured(Rail::Cpu), 4.0 * 52.0);
        // Chipset: constant-ish domain.
        EXPECT_GT(s.measured(Rail::Chipset), 15.0);
        EXPECT_LT(s.measured(Rail::Chipset), 23.0);
        // Memory: background to saturated DIMMs.
        EXPECT_GT(s.measured(Rail::Memory), 25.0);
        EXPECT_LT(s.measured(Rail::Memory), 55.0);
        // I/O: static floor; the ceiling allows the dataset-load
        // burst when all eight instances stream their inputs at the
        // full disk rate.
        EXPECT_GT(s.measured(Rail::Io), 31.0);
        EXPECT_LT(s.measured(Rail::Io), 46.0);
        // Disk: rotation floor; ceiling = idle + both disks seeking
        // and transferring simultaneously.
        EXPECT_GT(s.measured(Rail::Disk), 21.0);
        EXPECT_LT(s.measured(Rail::Disk), 29.1);
    }
}

TEST_P(WorkloadSweep, CounterAccountingInvariants)
{
    const SampleTrace trace = run();
    for (const AlignedSample &s : trace.samples()) {
        for (const CounterSnapshot &snap : s.perCpu) {
            const double cycles = snap[PerfEvent::Cycles];
            EXPECT_GT(cycles, 0.0);
            // Halted cycles never exceed cycles.
            EXPECT_LE(snap[PerfEvent::HaltedCycles], cycles * 1.0001);
            // Fetch bounded by width.
            EXPECT_LE(snap[PerfEvent::FetchedUops], 3.0 * cycles);
            // Bus transactions include every component the PMU tags.
            EXPECT_GE(snap[PerfEvent::BusTransactions],
                      snap[PerfEvent::L3LoadMisses] -
                          1e-6 * cycles);
            EXPECT_GE(snap[PerfEvent::BusTransactions],
                      snap[PerfEvent::DmaOtherAccesses] - 1e-9);
            EXPECT_GE(snap[PerfEvent::BusTransactions],
                      snap[PerfEvent::PrefetchTransactions] - 1e-9);
            // Nothing is negative.
            for (double c : snap.counts)
                EXPECT_GE(c, 0.0);
        }
        EXPECT_GE(s.osInterruptsTotal, 0.0);
        EXPECT_LE(s.osDiskInterrupts, s.osInterruptsTotal + 1e-9);
        EXPECT_LE(s.osDeviceInterrupts, s.osInterruptsTotal + 1e-9);
    }
}

TEST_P(WorkloadSweep, PowerTracksActivityAcrossSamples)
{
    // Within one workload, CPU power and (active, uops) must move
    // together: the correlation the whole paper rests on.
    const SampleTrace trace = run();
    RunningCovariance cov;
    RunningStats cpu_power;
    for (const AlignedSample &s : trace.samples()) {
        double activity = 0.0;
        for (const CounterSnapshot &snap : s.perCpu) {
            activity += (snap[PerfEvent::Cycles] -
                         snap[PerfEvent::HaltedCycles]) /
                            snap[PerfEvent::Cycles] +
                        snap[PerfEvent::FetchedUops] /
                            snap[PerfEvent::Cycles];
        }
        cov.add(activity, s.measured(Rail::Cpu));
        cpu_power.add(s.measured(Rail::Cpu));
    }
    // Steady workloads have nearly constant power: correlation is
    // then mostly sensor noise. Only demand correlation when real
    // variation exists (phase structure, ramps).
    if (cpu_power.stddev() > 2.0) {
        EXPECT_GT(cov.correlation(), 0.5) << GetParam();
    }
}

TEST_P(WorkloadSweep, DeterministicFingerprint)
{
    const SampleTrace a = run();
    const double uops_a = server_total_uops_;
    const SampleTrace b = run();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_DOUBLE_EQ(uops_a, server_total_uops_);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].measured(Rail::Cpu),
                         b[i].measured(Rail::Cpu));
        EXPECT_DOUBLE_EQ(a[i].totalCount(PerfEvent::BusTransactions),
                         b[i].totalCount(PerfEvent::BusTransactions));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPaperWorkloads, WorkloadSweep,
    ::testing::Values("idle", "gcc", "mcf", "vortex", "art", "lucas",
                      "mesa", "mgrid", "wupwise", "dbt2", "specjbb",
                      "diskload"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace tdp

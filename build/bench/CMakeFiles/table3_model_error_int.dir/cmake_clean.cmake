file(REMOVE_RECURSE
  "CMakeFiles/table3_model_error_int.dir/table3_model_error_int.cc.o"
  "CMakeFiles/table3_model_error_int.dir/table3_model_error_int.cc.o.d"
  "table3_model_error_int"
  "table3_model_error_int.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_model_error_int.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

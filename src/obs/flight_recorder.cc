/**
 * @file
 * Implementation of the bounded flight recorder.
 */

#include "obs/flight_recorder.hh"

#include "common/logging.hh"
#include "obs/json_writer.hh"

namespace tdp {
namespace obs {

FlightRecorder::FlightRecorder(size_t rings, size_t capacity)
    : capacity_(capacity)
{
    if (rings == 0 || capacity == 0)
        fatal("FlightRecorder: rings (%zu) and capacity (%zu) must "
              "be positive",
              rings, capacity);
    rings_.assign(rings, Ring{});
    slots_.assign(rings * capacity, FlightEvent{});
}

uint64_t
FlightRecorder::totalRecorded() const
{
    uint64_t total = 0;
    for (const Ring &r : rings_)
        total += r.recorded;
    return total;
}

uint64_t
FlightRecorder::totalDropped() const
{
    uint64_t total = 0;
    for (const Ring &r : rings_)
        total += r.dropped;
    return total;
}

void
FlightRecorder::writeJson(JsonWriter &json,
                          const char *(*kindName)(uint16_t)) const
{
    json.beginArray();
    for (size_t ring = 0; ring < rings_.size(); ++ring) {
        json.beginObject();
        json.keyValue("ring", static_cast<uint64_t>(ring));
        json.keyValue("recorded", rings_[ring].recorded);
        json.keyValue("dropped", rings_[ring].dropped);
        json.key("events");
        json.beginArray();
        forEach(ring, [&](const FlightEvent &event) {
            json.beginObject();
            json.keyValue("tick", event.tick);
            json.keyValue("kind", kindName(event.kind));
            json.keyValue("client", event.client);
            json.keyValue("detail", event.detail);
            json.keyValue("code", static_cast<uint64_t>(event.code));
            json.keyValue("value", event.value);
            json.endObject();
        });
        json.endArray();
        json.endObject();
    }
    json.endArray();
}

} // namespace obs
} // namespace tdp

/**
 * @file
 * Per-level implementations of the lane-batched OLS kernels.
 *
 * The scalar level is the numerical reference: it keeps the same four
 * logical lanes as the vector levels, so SSE2 (two 2-wide registers)
 * and AVX2 (one 4-wide register) reproduce it bit-for-bit. Compiled
 * with -ffp-contract=off so no level can fuse mul+add differently.
 */

#include "stats/lane_fit.hh"

#include <cmath>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define TDP_SIMD_X86 1
#else
#define TDP_SIMD_X86 0
#endif

namespace tdp {
namespace lanefit {

namespace {

constexpr size_t L = kSimdLanes;

// ---------------------------------------------------------------
// Scalar level.
// ---------------------------------------------------------------

void
colStatsScalar(const double *rows, size_t nrows, size_t k,
               ColumnStats &stats)
{
    double *mean = stats.mean.data();
    double *m2 = stats.m2.data();
    for (size_t r = 0; r < nrows; ++r) {
        const double *row = rows + r * k;
        ++stats.n;
        // One shared reciprocal per row instead of a divide per
        // column: the same inv_n value feeds every lane at every
        // level, so the level-independence is untouched while the
        // divide count drops k-fold.
        const double inv_n =
            1.0 / static_cast<double>(stats.n);
        for (size_t c = 0; c < k; ++c) {
            const double x = row[c];
            const double delta = x - mean[c];
            mean[c] += delta * inv_n;
            m2[c] += delta * (x - mean[c]);
        }
    }
}

void
stageScalar(const double *rows, const double *y, size_t groups,
            size_t k, LaneBlock &block)
{
    for (size_t g = 0; g < groups; ++g) {
        for (size_t lane = 0; lane < L; ++lane) {
            const size_t r = g * L + lane;
            block.stage(g, lane, rows + r * k, y[r]);
        }
    }
}

size_t
firstNonFiniteScalar(const double *values, size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        if (!std::isfinite(values[i]))
            return i;
    }
    return SIZE_MAX;
}

void
standardizeScalar(LaneBlock &block, const double *shift,
                  const double *inv_scale)
{
    const size_t k = block.k;
    double *z = block.z.data();
    for (size_t g = 0; g < block.groups; ++g) {
        for (size_t c = 0; c < k; ++c) {
            double *zc = z + (g * k + c) * L;
            for (size_t lane = 0; lane < L; ++lane)
                zc[lane] = (zc[lane] - shift[c]) * inv_scale[c];
        }
    }
}

void
accumulateScalar(const LaneBlock &block, double *gram_lanes,
                 double *moment_lanes)
{
    const size_t k = block.k;
    const size_t K = k + 1;
    for (size_t g = 0; g < block.groups; ++g) {
        const double *z = block.z.data() + g * k * L;
        const double *yy = block.y.data() + g * L;

        for (size_t lane = 0; lane < L; ++lane)
            gram_lanes[lane] += 1.0; // (0,0): intercept x intercept
        for (size_t b = 1; b < K; ++b) {
            double *gl = gram_lanes + b * L; // row 0: intercept x z_b
            const double *zb = z + (b - 1) * L;
            for (size_t lane = 0; lane < L; ++lane)
                gl[lane] += zb[lane];
        }
        for (size_t lane = 0; lane < L; ++lane)
            moment_lanes[lane] += yy[lane];

        for (size_t a = 1; a < K; ++a) {
            const double *za = z + (a - 1) * L;
            double *ma = moment_lanes + a * L;
            for (size_t lane = 0; lane < L; ++lane)
                ma[lane] += za[lane] * yy[lane];
            for (size_t b = a; b < K; ++b) {
                const double *zb = z + (b - 1) * L;
                double *gl = gram_lanes + (a * K + b) * L;
                for (size_t lane = 0; lane < L; ++lane)
                    gl[lane] += za[lane] * zb[lane];
            }
        }
    }
}

void
goodnessScalar(const LaneBlock &block, double intercept,
               const double *coef, double ymean, double *ss_lanes)
{
    const size_t k = block.k;
    for (size_t g = 0; g < block.groups; ++g) {
        const double *x = block.z.data() + g * k * L;
        const double *yy = block.y.data() + g * L;
        double pred[L];
        for (size_t lane = 0; lane < L; ++lane)
            pred[lane] = intercept;
        for (size_t c = 0; c < k; ++c) {
            const double *xc = x + c * L;
            for (size_t lane = 0; lane < L; ++lane)
                pred[lane] = coef[c] * xc[lane] + pred[lane];
        }
        for (size_t lane = 0; lane < L; ++lane) {
            const double res = yy[lane] - pred[lane];
            ss_lanes[lane] += res * res;
            const double tot = yy[lane] - ymean;
            ss_lanes[L + lane] += tot * tot;
        }
    }
}

#if TDP_SIMD_X86

// ---------------------------------------------------------------
// SSE2 level: each 4-lane op is two 2-wide register ops, low half
// first, so the per-lane operation sequence matches scalar exactly.
// ---------------------------------------------------------------

void
colStatsSse2(const double *rows, size_t nrows, size_t k,
             ColumnStats &stats)
{
    double *mean = stats.mean.data();
    double *m2 = stats.m2.data();
    for (size_t r = 0; r < nrows; ++r) {
        const double *row = rows + r * k;
        ++stats.n;
        const double inv_n =
            1.0 / static_cast<double>(stats.n);
        const __m128d vinv = _mm_set1_pd(inv_n);
        size_t c = 0;
        for (; c + 2 <= k; c += 2) {
            const __m128d x = _mm_loadu_pd(row + c);
            const __m128d m = _mm_loadu_pd(mean + c);
            const __m128d delta = _mm_sub_pd(x, m);
            const __m128d mnew =
                _mm_add_pd(m, _mm_mul_pd(delta, vinv));
            _mm_storeu_pd(mean + c, mnew);
            const __m128d v = _mm_loadu_pd(m2 + c);
            _mm_storeu_pd(
                m2 + c,
                _mm_add_pd(v, _mm_mul_pd(delta, _mm_sub_pd(x, mnew))));
        }
        for (; c < k; ++c) {
            const double x = row[c];
            const double delta = x - mean[c];
            mean[c] += delta * inv_n;
            m2[c] += delta * (x - mean[c]);
        }
    }
}

void
stageSse2(const double *rows, const double *y, size_t groups,
          size_t k, LaneBlock &block)
{
    double *z = block.z.data();
    for (size_t g = 0; g < groups; ++g) {
        const double *r0 = rows + (g * L + 0) * k;
        const double *r1 = rows + (g * L + 1) * k;
        const double *r2 = rows + (g * L + 2) * k;
        const double *r3 = rows + (g * L + 3) * k;
        double *zb = z + g * k * L;
        size_t c = 0;
        for (; c + 2 <= k; c += 2) {
            // 2x2 transposes: columns c and c+1 of the low row pair,
            // then of the high row pair.
            const __m128d a = _mm_loadu_pd(r0 + c);
            const __m128d b = _mm_loadu_pd(r1 + c);
            _mm_storeu_pd(zb + (c + 0) * L, _mm_unpacklo_pd(a, b));
            _mm_storeu_pd(zb + (c + 1) * L, _mm_unpackhi_pd(a, b));
            const __m128d d = _mm_loadu_pd(r2 + c);
            const __m128d e = _mm_loadu_pd(r3 + c);
            _mm_storeu_pd(zb + (c + 0) * L + 2,
                          _mm_unpacklo_pd(d, e));
            _mm_storeu_pd(zb + (c + 1) * L + 2,
                          _mm_unpackhi_pd(d, e));
        }
        for (; c < k; ++c) {
            double *zc = zb + c * L;
            zc[0] = r0[c];
            zc[1] = r1[c];
            zc[2] = r2[c];
            zc[3] = r3[c];
        }
        _mm_storeu_pd(&block.y[g * L], _mm_loadu_pd(y + g * L));
        _mm_storeu_pd(&block.y[g * L + 2],
                      _mm_loadu_pd(y + g * L + 2));
    }
}

size_t
firstNonFiniteSse2(const double *values, size_t count)
{
    size_t i = 0;
    for (; i + 2 <= count; i += 2) {
        const __m128d x = _mm_loadu_pd(values + i);
        // x - x is 0.0 for finite values, NaN for NaN and +/-Inf;
        // the unordered compare then flags exactly the non-finite
        // lanes.
        const __m128d t = _mm_sub_pd(x, x);
        if (_mm_movemask_pd(_mm_cmpunord_pd(t, t)) != 0)
            break;
    }
    const size_t rest = firstNonFiniteScalar(values + i, count - i);
    return rest == SIZE_MAX ? SIZE_MAX : i + rest;
}

void
standardizeSse2(LaneBlock &block, const double *shift,
                const double *inv_scale)
{
    const size_t k = block.k;
    double *z = block.z.data();
    for (size_t g = 0; g < block.groups; ++g) {
        for (size_t c = 0; c < k; ++c) {
            double *zc = z + (g * k + c) * L;
            const __m128d sh = _mm_set1_pd(shift[c]);
            const __m128d sc = _mm_set1_pd(inv_scale[c]);
            _mm_storeu_pd(
                zc, _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(zc), sh), sc));
            _mm_storeu_pd(
                zc + 2,
                _mm_mul_pd(_mm_sub_pd(_mm_loadu_pd(zc + 2), sh), sc));
        }
    }
}

void
accumulateSse2(const LaneBlock &block, double *gram_lanes,
               double *moment_lanes)
{
    const size_t k = block.k;
    const size_t K = k + 1;
    const __m128d ones = _mm_set1_pd(1.0);
    for (size_t g = 0; g < block.groups; ++g) {
        const double *z = block.z.data() + g * k * L;
        const double *yy = block.y.data() + g * L;
        const __m128d y_lo = _mm_loadu_pd(yy);
        const __m128d y_hi = _mm_loadu_pd(yy + 2);

        _mm_storeu_pd(gram_lanes,
                      _mm_add_pd(_mm_loadu_pd(gram_lanes), ones));
        _mm_storeu_pd(gram_lanes + 2,
                      _mm_add_pd(_mm_loadu_pd(gram_lanes + 2), ones));
        for (size_t b = 1; b < K; ++b) {
            double *gl = gram_lanes + b * L;
            const double *zb = z + (b - 1) * L;
            _mm_storeu_pd(gl, _mm_add_pd(_mm_loadu_pd(gl),
                                         _mm_loadu_pd(zb)));
            _mm_storeu_pd(gl + 2, _mm_add_pd(_mm_loadu_pd(gl + 2),
                                             _mm_loadu_pd(zb + 2)));
        }
        _mm_storeu_pd(moment_lanes,
                      _mm_add_pd(_mm_loadu_pd(moment_lanes), y_lo));
        _mm_storeu_pd(moment_lanes + 2,
                      _mm_add_pd(_mm_loadu_pd(moment_lanes + 2), y_hi));

        for (size_t a = 1; a < K; ++a) {
            const double *za = z + (a - 1) * L;
            const __m128d a_lo = _mm_loadu_pd(za);
            const __m128d a_hi = _mm_loadu_pd(za + 2);
            double *ma = moment_lanes + a * L;
            _mm_storeu_pd(ma, _mm_add_pd(_mm_loadu_pd(ma),
                                         _mm_mul_pd(a_lo, y_lo)));
            _mm_storeu_pd(ma + 2, _mm_add_pd(_mm_loadu_pd(ma + 2),
                                             _mm_mul_pd(a_hi, y_hi)));
            for (size_t b = a; b < K; ++b) {
                const double *zb = z + (b - 1) * L;
                double *gl = gram_lanes + (a * K + b) * L;
                _mm_storeu_pd(
                    gl, _mm_add_pd(_mm_loadu_pd(gl),
                                   _mm_mul_pd(a_lo, _mm_loadu_pd(zb))));
                _mm_storeu_pd(
                    gl + 2,
                    _mm_add_pd(_mm_loadu_pd(gl + 2),
                               _mm_mul_pd(a_hi, _mm_loadu_pd(zb + 2))));
            }
        }
    }
}

void
goodnessSse2(const LaneBlock &block, double intercept,
             const double *coef, double ymean, double *ss_lanes)
{
    const size_t k = block.k;
    __m128d res_lo = _mm_loadu_pd(ss_lanes);
    __m128d res_hi = _mm_loadu_pd(ss_lanes + 2);
    __m128d tot_lo = _mm_loadu_pd(ss_lanes + L);
    __m128d tot_hi = _mm_loadu_pd(ss_lanes + L + 2);
    const __m128d vymean = _mm_set1_pd(ymean);
    for (size_t g = 0; g < block.groups; ++g) {
        const double *x = block.z.data() + g * k * L;
        const double *yy = block.y.data() + g * L;
        __m128d pred_lo = _mm_set1_pd(intercept);
        __m128d pred_hi = pred_lo;
        for (size_t c = 0; c < k; ++c) {
            const __m128d vc = _mm_set1_pd(coef[c]);
            pred_lo = _mm_add_pd(
                _mm_mul_pd(vc, _mm_loadu_pd(x + c * L)), pred_lo);
            pred_hi = _mm_add_pd(
                _mm_mul_pd(vc, _mm_loadu_pd(x + c * L + 2)), pred_hi);
        }
        const __m128d y_lo = _mm_loadu_pd(yy);
        const __m128d y_hi = _mm_loadu_pd(yy + 2);
        const __m128d r_lo = _mm_sub_pd(y_lo, pred_lo);
        const __m128d r_hi = _mm_sub_pd(y_hi, pred_hi);
        res_lo = _mm_add_pd(res_lo, _mm_mul_pd(r_lo, r_lo));
        res_hi = _mm_add_pd(res_hi, _mm_mul_pd(r_hi, r_hi));
        const __m128d t_lo = _mm_sub_pd(y_lo, vymean);
        const __m128d t_hi = _mm_sub_pd(y_hi, vymean);
        tot_lo = _mm_add_pd(tot_lo, _mm_mul_pd(t_lo, t_lo));
        tot_hi = _mm_add_pd(tot_hi, _mm_mul_pd(t_hi, t_hi));
    }
    _mm_storeu_pd(ss_lanes, res_lo);
    _mm_storeu_pd(ss_lanes + 2, res_hi);
    _mm_storeu_pd(ss_lanes + L, tot_lo);
    _mm_storeu_pd(ss_lanes + L + 2, tot_hi);
}

// ---------------------------------------------------------------
// AVX2 level: one 4-wide register per logical vector.
// ---------------------------------------------------------------

#pragma GCC push_options
#pragma GCC target("avx2")

void
colStatsAvx2(const double *rows, size_t nrows, size_t k,
             ColumnStats &stats)
{
    double *mean = stats.mean.data();
    double *m2 = stats.m2.data();
    for (size_t r = 0; r < nrows; ++r) {
        const double *row = rows + r * k;
        ++stats.n;
        const double inv_n =
            1.0 / static_cast<double>(stats.n);
        const __m256d vinv = _mm256_set1_pd(inv_n);
        size_t c = 0;
        for (; c + 4 <= k; c += 4) {
            const __m256d x = _mm256_loadu_pd(row + c);
            const __m256d m = _mm256_loadu_pd(mean + c);
            const __m256d delta = _mm256_sub_pd(x, m);
            const __m256d mnew =
                _mm256_add_pd(m, _mm256_mul_pd(delta, vinv));
            _mm256_storeu_pd(mean + c, mnew);
            const __m256d v = _mm256_loadu_pd(m2 + c);
            _mm256_storeu_pd(
                m2 + c,
                _mm256_add_pd(
                    v, _mm256_mul_pd(delta, _mm256_sub_pd(x, mnew))));
        }
        for (; c < k; ++c) {
            const double x = row[c];
            const double delta = x - mean[c];
            mean[c] += delta * inv_n;
            m2[c] += delta * (x - mean[c]);
        }
    }
}

void
stageAvx2(const double *rows, const double *y, size_t groups,
          size_t k, LaneBlock &block)
{
    double *z = block.z.data();
    for (size_t g = 0; g < groups; ++g) {
        const double *r0 = rows + (g * L + 0) * k;
        const double *r1 = rows + (g * L + 1) * k;
        const double *r2 = rows + (g * L + 2) * k;
        const double *r3 = rows + (g * L + 3) * k;
        double *zb = z + g * k * L;
        size_t c = 0;
        for (; c + 4 <= k; c += 4) {
            // 4x4 transpose: four row segments in, four column
            // quadruples out.
            const __m256d a = _mm256_loadu_pd(r0 + c);
            const __m256d b = _mm256_loadu_pd(r1 + c);
            const __m256d d = _mm256_loadu_pd(r2 + c);
            const __m256d e = _mm256_loadu_pd(r3 + c);
            const __m256d t0 = _mm256_unpacklo_pd(a, b);
            const __m256d t1 = _mm256_unpackhi_pd(a, b);
            const __m256d t2 = _mm256_unpacklo_pd(d, e);
            const __m256d t3 = _mm256_unpackhi_pd(d, e);
            _mm256_storeu_pd(zb + (c + 0) * L,
                             _mm256_permute2f128_pd(t0, t2, 0x20));
            _mm256_storeu_pd(zb + (c + 1) * L,
                             _mm256_permute2f128_pd(t1, t3, 0x20));
            _mm256_storeu_pd(zb + (c + 2) * L,
                             _mm256_permute2f128_pd(t0, t2, 0x31));
            _mm256_storeu_pd(zb + (c + 3) * L,
                             _mm256_permute2f128_pd(t1, t3, 0x31));
        }
        for (; c < k; ++c) {
            double *zc = zb + c * L;
            zc[0] = r0[c];
            zc[1] = r1[c];
            zc[2] = r2[c];
            zc[3] = r3[c];
        }
        _mm256_storeu_pd(&block.y[g * L],
                         _mm256_loadu_pd(y + g * L));
    }
}

size_t
firstNonFiniteAvx2(const double *values, size_t count)
{
    size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256d x = _mm256_loadu_pd(values + i);
        const __m256d t = _mm256_sub_pd(x, x);
        if (_mm256_movemask_pd(
                _mm256_cmp_pd(t, t, _CMP_UNORD_Q)) != 0)
            break;
    }
    const size_t rest = firstNonFiniteScalar(values + i, count - i);
    return rest == SIZE_MAX ? SIZE_MAX : i + rest;
}

void
standardizeAvx2(LaneBlock &block, const double *shift,
                const double *inv_scale)
{
    const size_t k = block.k;
    double *z = block.z.data();
    for (size_t g = 0; g < block.groups; ++g) {
        for (size_t c = 0; c < k; ++c) {
            double *zc = z + (g * k + c) * L;
            const __m256d sh = _mm256_set1_pd(shift[c]);
            const __m256d sc = _mm256_set1_pd(inv_scale[c]);
            _mm256_storeu_pd(
                zc, _mm256_mul_pd(
                        _mm256_sub_pd(_mm256_loadu_pd(zc), sh), sc));
        }
    }
}

void
accumulateAvx2(const LaneBlock &block, double *gram_lanes,
               double *moment_lanes)
{
    const size_t k = block.k;
    const size_t K = k + 1;
    const __m256d ones = _mm256_set1_pd(1.0);
    for (size_t g = 0; g < block.groups; ++g) {
        const double *z = block.z.data() + g * k * L;
        const double *yy = block.y.data() + g * L;
        const __m256d vy = _mm256_loadu_pd(yy);

        _mm256_storeu_pd(
            gram_lanes,
            _mm256_add_pd(_mm256_loadu_pd(gram_lanes), ones));
        for (size_t b = 1; b < K; ++b) {
            double *gl = gram_lanes + b * L;
            _mm256_storeu_pd(
                gl, _mm256_add_pd(_mm256_loadu_pd(gl),
                                  _mm256_loadu_pd(z + (b - 1) * L)));
        }
        _mm256_storeu_pd(
            moment_lanes,
            _mm256_add_pd(_mm256_loadu_pd(moment_lanes), vy));

        for (size_t a = 1; a < K; ++a) {
            const __m256d va = _mm256_loadu_pd(z + (a - 1) * L);
            double *ma = moment_lanes + a * L;
            _mm256_storeu_pd(
                ma, _mm256_add_pd(_mm256_loadu_pd(ma),
                                  _mm256_mul_pd(va, vy)));
            for (size_t b = a; b < K; ++b) {
                double *gl = gram_lanes + (a * K + b) * L;
                _mm256_storeu_pd(
                    gl,
                    _mm256_add_pd(
                        _mm256_loadu_pd(gl),
                        _mm256_mul_pd(
                            va, _mm256_loadu_pd(z + (b - 1) * L))));
            }
        }
    }
}

void
goodnessAvx2(const LaneBlock &block, double intercept,
             const double *coef, double ymean, double *ss_lanes)
{
    const size_t k = block.k;
    __m256d res = _mm256_loadu_pd(ss_lanes);
    __m256d tot = _mm256_loadu_pd(ss_lanes + L);
    const __m256d vymean = _mm256_set1_pd(ymean);
    for (size_t g = 0; g < block.groups; ++g) {
        const double *x = block.z.data() + g * k * L;
        const double *yy = block.y.data() + g * L;
        __m256d pred = _mm256_set1_pd(intercept);
        for (size_t c = 0; c < k; ++c) {
            pred = _mm256_add_pd(
                _mm256_mul_pd(_mm256_set1_pd(coef[c]),
                              _mm256_loadu_pd(x + c * L)),
                pred);
        }
        const __m256d vy = _mm256_loadu_pd(yy);
        const __m256d r = _mm256_sub_pd(vy, pred);
        res = _mm256_add_pd(res, _mm256_mul_pd(r, r));
        const __m256d t = _mm256_sub_pd(vy, vymean);
        tot = _mm256_add_pd(tot, _mm256_mul_pd(t, t));
    }
    _mm256_storeu_pd(ss_lanes, res);
    _mm256_storeu_pd(ss_lanes + L, tot);
}

#pragma GCC pop_options

#endif // TDP_SIMD_X86

} // namespace

void
colStatsBlock(SimdLevel level, const double *rows, size_t nrows,
              size_t k, ColumnStats &stats)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return colStatsAvx2(rows, nrows, k, stats);
    if (level == SimdLevel::Sse2)
        return colStatsSse2(rows, nrows, k, stats);
#else
    (void)level;
#endif
    colStatsScalar(rows, nrows, k, stats);
}

void
stageBlock(SimdLevel level, const double *rows, const double *y,
           size_t groups, size_t k, LaneBlock &block)
{
    block.reset(k, groups);
    block.groups = groups;
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return stageAvx2(rows, y, groups, k, block);
    if (level == SimdLevel::Sse2)
        return stageSse2(rows, y, groups, k, block);
#else
    (void)level;
#endif
    stageScalar(rows, y, groups, k, block);
}

size_t
firstNonFinite(SimdLevel level, const double *values, size_t count)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return firstNonFiniteAvx2(values, count);
    if (level == SimdLevel::Sse2)
        return firstNonFiniteSse2(values, count);
#else
    (void)level;
#endif
    return firstNonFiniteScalar(values, count);
}

void
standardizeBlock(SimdLevel level, LaneBlock &block, const double *shift,
                 const double *inv_scale)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return standardizeAvx2(block, shift, inv_scale);
    if (level == SimdLevel::Sse2)
        return standardizeSse2(block, shift, inv_scale);
#else
    (void)level;
#endif
    standardizeScalar(block, shift, inv_scale);
}

void
accumulateBlock(SimdLevel level, const LaneBlock &block,
                double *gram_lanes, double *moment_lanes)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return accumulateAvx2(block, gram_lanes, moment_lanes);
    if (level == SimdLevel::Sse2)
        return accumulateSse2(block, gram_lanes, moment_lanes);
#else
    (void)level;
#endif
    accumulateScalar(block, gram_lanes, moment_lanes);
}

void
goodnessBlock(SimdLevel level, const LaneBlock &block, double intercept,
              const double *coef, double ymean, double *ss_lanes)
{
#if TDP_SIMD_X86
    if (level == SimdLevel::Avx2)
        return goodnessAvx2(block, intercept, coef, ymean, ss_lanes);
    if (level == SimdLevel::Sse2)
        return goodnessSse2(block, intercept, coef, ymean, ss_lanes);
#else
    (void)level;
#endif
    goodnessScalar(block, intercept, coef, ymean, ss_lanes);
}

double
reduceLanes(const double *lanes)
{
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

} // namespace lanefit
} // namespace tdp

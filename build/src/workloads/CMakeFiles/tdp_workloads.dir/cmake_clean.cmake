file(REMOVE_RECURSE
  "CMakeFiles/tdp_workloads.dir/profile.cc.o"
  "CMakeFiles/tdp_workloads.dir/profile.cc.o.d"
  "CMakeFiles/tdp_workloads.dir/runner.cc.o"
  "CMakeFiles/tdp_workloads.dir/runner.cc.o.d"
  "CMakeFiles/tdp_workloads.dir/suite.cc.o"
  "CMakeFiles/tdp_workloads.dir/suite.cc.o.d"
  "CMakeFiles/tdp_workloads.dir/workload_thread.cc.o"
  "CMakeFiles/tdp_workloads.dir/workload_thread.cc.o.d"
  "libtdp_workloads.a"
  "libtdp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

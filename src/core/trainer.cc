/**
 * @file
 * Implementation of the model trainer.
 */

#include "core/trainer.hh"

#include "common/logging.hh"

namespace tdp {

void
ModelTrainer::setTrainingTrace(Rail rail, const SampleTrace &trace)
{
    if (trace.empty())
        fatal("ModelTrainer: empty training trace for %s",
              railName(rail));
    traces_[static_cast<int>(rail)] = trace;
}

bool
ModelTrainer::complete() const
{
    for (int r = 0; r < numRails; ++r)
        if (traces_.find(r) == traces_.end())
            return false;
    return true;
}

const SampleTrace &
ModelTrainer::trainingTrace(Rail rail) const
{
    auto it = traces_.find(static_cast<int>(rail));
    if (it == traces_.end())
        fatal("ModelTrainer: no training trace for %s", railName(rail));
    return it->second;
}

void
ModelTrainer::train(SystemPowerEstimator &estimator) const
{
    for (int r = 0; r < numRails; ++r) {
        const Rail rail = static_cast<Rail>(r);
        auto it = traces_.find(r);
        if (it == traces_.end())
            fatal("ModelTrainer: no training trace for %s",
                  railName(rail));
        estimator.model(rail).train(it->second);
    }
}

} // namespace tdp

file(REMOVE_RECURSE
  "CMakeFiles/fig6_disk_model.dir/fig6_disk_model.cc.o"
  "CMakeFiles/fig6_disk_model.dir/fig6_disk_model.cc.o.d"
  "fig6_disk_model"
  "fig6_disk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_disk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Implementation of the wired server.
 */

#include "platform/server.hh"

namespace tdp {

Server::Server(uint64_t master_seed) : Server(master_seed, Params()) {}

Server::Server(uint64_t master_seed, const Params &params)
    : system_(master_seed, params.quantum)
{
    // Memory subsystem: bus first so it finalises before the
    // controller consumes its totals (same phase, registration order).
    bus_ = std::make_unique<FrontSideBus>(system_, "server.fsb",
                                          params.bus);
    memory_ = std::make_unique<MemoryController>(
        system_, "server.memctl", *bus_, params.memory);

    // I/O subsystem.
    irq_ = std::make_unique<InterruptController>(system_, "server.pic",
                                                 params.cpuCount);
    ioChips_ = std::make_unique<IoChipComplex>(
        system_, "server.iochips", *irq_, params.ioChips);
    dma_ = std::make_unique<DmaEngine>(system_, "server.dma", *bus_,
                                       params.dma);
    nic_ = std::make_unique<NicDevice>(system_, "server.nic", *ioChips_,
                                       *dma_, *irq_, params.nic);

    // Disks.
    disks_ = std::make_unique<DiskController>(
        system_, "server.hba", *ioChips_, *dma_, *irq_, params.disks);

    // Operating system.
    scheduler_ = std::make_unique<Scheduler>(
        system_, "server.sched", params.cpuCount, params.smtPerCore);
    pageCache_ = std::make_unique<PageCache>(
        system_, "server.pagecache", *disks_, params.pageCache);
    vm_ = std::make_unique<VirtualMemory>(system_, "server.vm", *disks_,
                                          params.vm);
    os_ = std::make_unique<OperatingSystem>(
        system_, "server.os", *scheduler_, *pageCache_, *vm_, *irq_,
        params.os);

    // Processors.
    CpuComplex::Params cpu_params;
    cpu_params.coreCount = params.cpuCount;
    cpu_params.core = params.core;
    cpus_ = std::make_unique<CpuComplex>(
        system_, "server.cpus", *scheduler_, *os_, *vm_, *bus_, *memory_,
        *irq_, *ioChips_, cpu_params);
    cpus_->addMmioSource([this] { return disks_->drainPendingMmio(); });

    // Chipset power domain.
    chipset_ = std::make_unique<ChipsetPower>(
        system_, "server.chipset", *cpus_, params.chipset);

    // Instrumentation: five sensed rails + counter sampler.
    rig_ = std::make_unique<MeasurementRig>(
        system_, "server.rig", *cpus_, *irq_, disks_->vector(),
        os_->timerVector(), params.rig);
    rig_->attachRail(Rail::Cpu, [this] { return cpus_->lastPower(); });
    rig_->attachRail(Rail::Chipset,
                     [this] { return chipset_->lastPower(); });
    rig_->attachRail(Rail::Memory,
                     [this] { return memory_->lastPower(); });
    rig_->attachRail(Rail::Io, [this] { return ioChips_->lastPower(); });
    rig_->attachRail(Rail::Disk, [this] { return disks_->lastPower(); });

    // Workload launcher.
    runner_ = std::make_unique<WorkloadRunner>(system_, *scheduler_,
                                               *pageCache_);
}

const SampleTrace &
Server::runAndCollect(Seconds seconds)
{
    run(seconds);
    return rig_->collect();
}

} // namespace tdp

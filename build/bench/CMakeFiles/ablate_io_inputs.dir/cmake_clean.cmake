file(REMOVE_RECURSE
  "CMakeFiles/ablate_io_inputs.dir/ablate_io_inputs.cc.o"
  "CMakeFiles/ablate_io_inputs.dir/ablate_io_inputs.cc.o.d"
  "ablate_io_inputs"
  "ablate_io_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_io_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

/**
 * @file
 * Robustness sweep: Equation 6 model error versus measurement-fault
 * intensity, across the full 12-workload suite.
 *
 * For each intensity the sweep scales FaultPlan::allFaults() - PMU
 * counter wraparound, dropped readings, missed/duplicated/late sync
 * pulses, DAQ block dropouts and glitch spikes, unavailable events -
 * retrains the degradable model set on faulted training runs, and
 * validates on faulted characterisation runs of every workload. It
 * reports, per intensity: the per-subsystem average error, the
 * injected-fault ground truth, the pipeline's recovery counters, the
 * training scrub counts and the estimator health (which rails ran on
 * fallback rungs and why).
 *
 * Intensity 0 is asserted bit-identical to the fault-free baseline
 * path (trainPaperEstimator + clean runs): the fault machinery must
 * be a true no-op when disabled.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "exp/experiment_pool.hh"
#include "fault/fault_injector.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;

const std::vector<std::string> suite = {
    "idle", "gcc",   "mcf",     "vortex", "dbt2",    "specjbb",
    "art",  "lucas", "mesa",    "mgrid",  "wupwise", "diskload"};

const std::vector<double> intensities = {0.0, 0.25, 0.5, 1.0};

/** One characterisation run's trace plus its pipeline counters. */
struct RunResult
{
    SampleTrace trace;
    FaultInjector::Stats injected;
    uint64_t aligned = 0;
    uint64_t orphanWindows = 0;
    uint64_t orphanReadings = 0;
    uint64_t duplicatePulses = 0;
    uint64_t resyncedWindows = 0;
    uint64_t emptyWindows = 0;
    uint64_t glitchDiscards = 0;
};

RunResult
runWithStats(const RunSpec &spec)
{
    RunResult result;
    std::unique_ptr<Server> server;
    result.trace = runTrace(spec, server);
    const TraceAligner &aligner = server->rig().aligner();
    result.aligned = aligner.alignedCount();
    result.orphanWindows = aligner.orphanWindows();
    result.orphanReadings = aligner.orphanReadings();
    result.duplicatePulses = aligner.duplicatePulses();
    result.resyncedWindows = aligner.resyncedWindows();
    result.emptyWindows = aligner.emptyWindows();
    result.glitchDiscards = aligner.glitchValuesDiscarded();
    if (server->rig().faults())
        result.injected = server->rig().faults()->stats();
    return result;
}

/** Per-rail average error of one whole sweep level. */
struct LevelResult
{
    double intensity = 0.0;
    ValidationResult average;
    std::vector<ValidationResult> perWorkload;
};

LevelResult
runLevel(double intensity)
{
    const FaultPlan plan = FaultPlan::allFaults().scaled(intensity);

    TrainingReport scrub;
    const SystemPowerEstimator estimator =
        trainDegradableEstimator(defaultSeed, plan, &scrub);

    std::vector<RunSpec> specs;
    for (const std::string &name : suite) {
        RunSpec spec = characterizationRun(name);
        spec.faults = plan;
        specs.push_back(spec);
    }
    ExperimentPool pool(jobs());
    const std::vector<RunResult> runs = pool.map<RunResult>(
        specs.size(), [&](size_t i) { return runWithStats(specs[i]); });

    // Validation is serial so the estimator health report accumulates
    // across the whole suite in workload order.
    Validator validator(estimator, 0.0);
    LevelResult level;
    level.intensity = intensity;
    FaultInjector::Stats injected;
    uint64_t aligned = 0, orphan_w = 0, orphan_r = 0, dup = 0,
             resync = 0, empty = 0, glitch = 0, discarded_pairs = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        const RunResult &run = runs[i];
        if (run.trace.empty())
            fatal("robustness_sweep: workload %s produced no aligned "
                  "samples at intensity %.2f",
                  suite[i].c_str(), intensity);
        level.perWorkload.push_back(
            validator.validate(suite[i], run.trace));
        for (uint64_t d : level.perWorkload.back().discardedPairs)
            discarded_pairs += d;
        injected.readingsDropped += run.injected.readingsDropped;
        injected.pulsesMissed += run.injected.pulsesMissed;
        injected.pulsesDuplicated += run.injected.pulsesDuplicated;
        injected.pulsesDelayed += run.injected.pulsesDelayed;
        injected.blocksDropped += run.injected.blocksDropped;
        injected.blocksGlitched += run.injected.blocksGlitched;
        injected.counterWraps += run.injected.counterWraps;
        injected.eventsMasked += run.injected.eventsMasked;
        aligned += run.aligned;
        orphan_w += run.orphanWindows;
        orphan_r += run.orphanReadings;
        dup += run.duplicatePulses;
        resync += run.resyncedWindows;
        empty += run.emptyWindows;
        glitch += run.glitchDiscards;
    }
    level.average =
        Validator::average(level.perWorkload, "suite average");

    std::printf("=== intensity %.2f ===\n", intensity);
    TableWriter table(
        {"workload", "CPU", "Chipset", "Memory", "I/O", "Disk"});
    for (const ValidationResult &r : level.perWorkload)
        table.addRow({r.workload, TableWriter::pct(r.error(Rail::Cpu)),
                      TableWriter::pct(r.error(Rail::Chipset)),
                      TableWriter::pct(r.error(Rail::Memory)),
                      TableWriter::pct(r.error(Rail::Io)),
                      TableWriter::pct(r.error(Rail::Disk))});
    const ValidationResult &avg = level.average;
    table.addRow({avg.workload, TableWriter::pct(avg.error(Rail::Cpu)),
                  TableWriter::pct(avg.error(Rail::Chipset)),
                  TableWriter::pct(avg.error(Rail::Memory)),
                  TableWriter::pct(avg.error(Rail::Io)),
                  TableWriter::pct(avg.error(Rail::Disk))});
    table.render(std::cout);

    std::printf(
        "injected: %llu wraps, %llu dropped readings, %llu missed + "
        "%llu duplicated + %llu delayed pulses, %llu dropped + %llu "
        "glitched blocks, %llu masked events\n",
        static_cast<unsigned long long>(injected.counterWraps),
        static_cast<unsigned long long>(injected.readingsDropped),
        static_cast<unsigned long long>(injected.pulsesMissed),
        static_cast<unsigned long long>(injected.pulsesDuplicated),
        static_cast<unsigned long long>(injected.pulsesDelayed),
        static_cast<unsigned long long>(injected.blocksDropped),
        static_cast<unsigned long long>(injected.blocksGlitched),
        static_cast<unsigned long long>(injected.eventsMasked));
    std::printf(
        "recovered: %llu aligned, %llu orphan windows, %llu orphan "
        "readings, %llu duplicate pulses merged, %llu resynced "
        "windows, %llu empty windows, %llu glitch values excluded, "
        "%llu validation pairs discarded\n",
        static_cast<unsigned long long>(aligned),
        static_cast<unsigned long long>(orphan_w),
        static_cast<unsigned long long>(orphan_r),
        static_cast<unsigned long long>(dup),
        static_cast<unsigned long long>(resync),
        static_cast<unsigned long long>(empty),
        static_cast<unsigned long long>(glitch),
        static_cast<unsigned long long>(discarded_pairs));
    if (scrub.totalDiscarded() > 0)
        std::printf("training scrub:\n%s", scrub.describe().c_str());
    std::printf("health:\n%s\n", estimator.health().describe().c_str());
    return level;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    std::printf("Robustness sweep: Equation 6 error vs measurement "
                "fault intensity (12 workloads, plan = allFaults() "
                "scaled)\n\n");

    std::vector<LevelResult> levels;
    for (double intensity : intensities)
        levels.push_back(runLevel(intensity));

    // The disabled plan must be a true no-op: the intensity-0 sweep
    // level has to reproduce the fault-free paper baseline exactly,
    // bit for bit, per workload and per subsystem.
    {
        const SystemPowerEstimator baseline =
            trainPaperEstimator(defaultSeed);
        Validator validator(baseline, 0.0);
        std::vector<RunSpec> specs;
        for (const std::string &name : suite)
            specs.push_back(characterizationRun(name));
        const std::vector<SampleTrace> traces = runTraces(specs);
        for (size_t i = 0; i < suite.size(); ++i) {
            const ValidationResult clean =
                validator.validate(suite[i], traces[i]);
            const ValidationResult &zero = levels[0].perWorkload[i];
            for (int r = 0; r < numRails; ++r) {
                const size_t idx = static_cast<size_t>(r);
                if (clean.averageError[idx] != zero.averageError[idx])
                    fatal("robustness_sweep: intensity 0 is not "
                          "bit-identical to the fault-free baseline "
                          "(%s, rail %s: %.17g vs %.17g)",
                          suite[i].c_str(),
                          railName(static_cast<Rail>(r)),
                          clean.averageError[idx],
                          zero.averageError[idx]);
            }
        }
        std::printf("intensity 0.00 verified bit-identical to the "
                    "fault-free baseline\n\n");
    }

    std::printf("summary: average error vs fault intensity\n");
    TableWriter summary(
        {"intensity", "CPU", "Chipset", "Memory", "I/O", "Disk"});
    for (const LevelResult &level : levels) {
        const ValidationResult &avg = level.average;
        summary.addRow({formatString("%.2f", level.intensity),
                        TableWriter::pct(avg.error(Rail::Cpu)),
                        TableWriter::pct(avg.error(Rail::Chipset)),
                        TableWriter::pct(avg.error(Rail::Memory)),
                        TableWriter::pct(avg.error(Rail::Io)),
                        TableWriter::pct(avg.error(Rail::Disk))});
    }
    summary.render(std::cout);
    return 0;
}

/**
 * @file
 * Tests for the string utilities.
 */

#include <gtest/gtest.h>

#include "common/strings.hh"

namespace tdp {
namespace {

TEST(Strings, SplitBasic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = split(",x,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "x");
    EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitNoDelimiter)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimBothEnds)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("MiXeD 42!"), "mixed 42!");
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(startsWith("workload.gcc", "workload"));
    EXPECT_FALSE(startsWith("gcc", "workload"));
    EXPECT_TRUE(startsWith("anything", ""));
    EXPECT_FALSE(startsWith("", "x"));
}

TEST(Strings, SplitJoinRoundTrip)
{
    const std::string original = "one,two,three";
    EXPECT_EQ(join(split(original, ','), ","), original);
}

} // namespace
} // namespace tdp

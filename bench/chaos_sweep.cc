/**
 * @file
 * Orchestration chaos sweep: proves the crash-safe orchestration
 * path converges to a bit-identical baseline under injected
 * scheduler and I/O faults, across the full 12-workload suite.
 *
 * Four phases, each asserting trace-digest identity against a clean
 * no-cache baseline pass:
 *
 *  1. baseline: every workload simulated with no cache and no chaos;
 *     per-workload digests of the lossless binary serialisation are
 *     the ground truth;
 *  2. chaos convergence: a cold pass and a warm rerun against a
 *     fresh cache + journal under ChaosPlan::allChaos() - worker
 *     kills, cooperative stalls past the watchdog deadline, ENOSPC,
 *     torn writes and EXDEV reroutes on cache publishes. Kills and
 *     stalls fire on attempt 1 and retry clean; torn entries publish
 *     "successfully" and must be caught by the warm rerun's checksum
 *     rejection and re-simulated;
 *  3. crash + resume: a forked child runs the suite against its own
 *     cache + journal and is SIGKILLed mid-run; the parent resumes
 *     from the child's (possibly torn) journal and must reproduce
 *     the baseline digests. A second child is SIGTERMed instead and
 *     must drain gracefully with the distinct clean-abort exit code;
 *  4. poison quarantine: a fully poisoned batch must quarantine
 *     every task after bounded retries - reported via fatal() with a
 *     resume hint - without wedging or crashing the sweep.
 *
 * All chaos decisions are hashes of (seed, task fingerprint), so the
 * sweep's stdout is deterministic run to run for a given intensity.
 */

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.hh"
#include "common/logging.hh"
#include "measure/trace_io.hh"
#include "resilience/run_journal.hh"
#include "resilience/shutdown.hh"

namespace {

using namespace tdp;
using namespace tdp::bench;
namespace fs = std::filesystem;

const std::vector<std::string> suite = {
    "idle", "gcc",   "mcf",     "vortex", "dbt2",    "specjbb",
    "art",  "lucas", "mesa",    "mgrid",  "wupwise", "diskload"};

/**
 * Shortened characterisation runs: chaos recovery is about the
 * orchestration layer, not trace length, so keep the simulated spans
 * small and the wall clock dominated by the injected faults.
 */
RunSpec
sweepRun(const std::string &workload)
{
    RunSpec spec = characterizationRun(workload);
    spec.duration = 24.0;
    spec.skip = 4.0;
    spec.seed = defaultSeed ^ 0xc4a05u;
    return spec;
}

std::vector<RunSpec>
sweepSpecs()
{
    std::vector<RunSpec> specs;
    for (const std::string &name : suite)
        specs.push_back(sweepRun(name));
    return specs;
}

/** Digest of the lossless serialisation: equal digests, equal traces. */
uint64_t
traceDigest(const SampleTrace &trace)
{
    std::ostringstream os;
    writeTraceBinary(os, trace, 0);
    const std::string bytes = os.str();
    return fnv1a64(bytes.data(), bytes.size());
}

std::vector<uint64_t>
digestsOf(const std::vector<SampleTrace> &traces)
{
    std::vector<uint64_t> digests;
    for (const SampleTrace &trace : traces)
        digests.push_back(traceDigest(trace));
    return digests;
}

/** Count matches and fatal() on the first divergence. */
void
assertDigestsMatch(const std::vector<uint64_t> &baseline,
                   const std::vector<uint64_t> &got,
                   const char *phase)
{
    for (size_t i = 0; i < suite.size(); ++i) {
        if (got[i] != baseline[i])
            fatal("chaos_sweep: %s diverged from the baseline on %s "
                  "(digest %016llx vs %016llx)",
                  phase, suite[i].c_str(),
                  static_cast<unsigned long long>(got[i]),
                  static_cast<unsigned long long>(baseline[i]));
    }
    std::printf("  %s digests match baseline: %zu/%zu\n", phase,
                suite.size(), suite.size());
}

/** Plan guaranteeing >= 1 stall so a child survives until signalled. */
resilience::ChaosPlan
stallOnlyPlan()
{
    resilience::ChaosPlan plan;
    plan.slowTaskProb = 0.6;
    plan.slowTaskSeconds = 1.0;
    return plan;
}

/**
 * Fork a child that runs the suite against `cache_dir` + `journal`,
 * signal it after `delay` seconds, and return the wait status. The
 * child never touches stdout.
 */
int
runSignalledChild(const std::string &cache_dir,
                  const std::string &journal, int signo, double delay)
{
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    if (pid < 0)
        fatal("chaos_sweep: fork failed");
    if (pid == 0) {
        // Child: fresh resilient run, stalled enough to outlive the
        // parent's signal delay. _exit on success keeps the copied
        // stdio buffers from flushing twice.
        setTraceCacheRoot(cache_dir);
        setRunJournalPath(journal);
        setTaskRetries(3);
        setChaosPlan(stallOnlyPlan());
        runTraces(sweepSpecs());
        std::fflush(stderr);
        _exit(0);
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(delay));
    ::kill(pid, signo);
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid)
        fatal("chaos_sweep: waitpid failed");
    return status;
}

} // namespace

int
main(int argc, char **argv)
{
    initBench(argc, argv);

    double intensity = 1.0;
    const std::vector<std::string> args = positionalArgs(argc, argv);
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--chaos" && i + 1 < args.size()) {
            intensity = std::atof(args[++i].c_str());
        } else if (args[i].rfind("--chaos=", 0) == 0) {
            intensity = std::atof(args[i].c_str() + 8);
        } else {
            fatal("chaos_sweep: unknown argument '%s'",
                  args[i].c_str());
        }
    }

    const std::string workdir =
        formatString(".tdp-chaos-sweep.%ld",
                     static_cast<long>(::getpid()));
    fs::create_directories(workdir);

    std::printf("Chaos sweep: crash-safe orchestration vs injected "
                "orchestration faults\n");
    std::printf("suite: %zu workloads, chaos intensity %.2f\n\n",
                suite.size(), intensity);

    const std::vector<RunSpec> specs = sweepSpecs();

    // Phase 1: ground truth. No cache, no chaos, classic path.
    std::printf("[1/4] baseline (no cache, no chaos)\n");
    setTraceCacheRoot("");
    const std::vector<uint64_t> baseline =
        digestsOf(runTraces(specs));
    for (size_t i = 0; i < suite.size(); ++i)
        std::printf("  %-10s %016llx\n", suite[i].c_str(),
                    static_cast<unsigned long long>(baseline[i]));

    // Phase 2: full chaos against a fresh cache + journal, then a
    // warm rerun that must catch torn entries via checksum rejection.
    std::printf("[2/4] chaos convergence (allChaos x %.2f)\n",
                intensity);
    const std::string chaos_cache = workdir + "/chaos-cache";
    setTraceCacheRoot(chaos_cache);
    setRunJournalPath(workdir + "/chaos.journal");
    setTaskTimeout(0.3);
    setTaskRetries(3);
    setChaosPlan(
        resilience::ChaosPlan::allChaos().scaled(intensity));
    assertDigestsMatch(baseline, digestsOf(runTraces(specs)),
                       "cold pass");
    assertDigestsMatch(baseline, digestsOf(runTraces(specs)),
                       "warm rerun");
    if (const resilience::ChaosInjector *chaos = chaosInjector()) {
        const resilience::ChaosInjector::Stats s = chaos->stats();
        std::printf("  injected: %llu kill(s), %llu stall(s), %llu "
                    "enospc, %llu torn write(s), %llu exdev "
                    "reroute(s)\n",
                    static_cast<unsigned long long>(s.kills),
                    static_cast<unsigned long long>(s.stalls),
                    static_cast<unsigned long long>(s.enospc),
                    static_cast<unsigned long long>(s.tornWrites),
                    static_cast<unsigned long long>(s.exdev));
        if (intensity > 0.0 &&
            s.kills + s.stalls + s.enospc + s.tornWrites + s.exdev ==
                0)
            fatal("chaos_sweep: the chaos plan injected nothing; "
                  "the convergence pass proved nothing");
    }
    setChaosPlan(resilience::ChaosPlan());
    setTaskTimeout(0.0);
    setRunJournalPath("");

    // Phase 3: SIGKILL mid-run, then resume from the dead child's
    // journal; a drained SIGTERM sibling must exit cleanAbortExitCode.
    std::printf("[3/4] crash + resume (SIGKILL mid-run, then "
                "--resume)\n");
    const std::string crash_cache = workdir + "/crash-cache";
    const std::string crash_journal = workdir + "/crash.journal";
    int status =
        runSignalledChild(crash_cache, crash_journal, SIGKILL, 0.25);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL)
        fatal("chaos_sweep: the SIGKILL child was not killed "
              "(status 0x%x); the crash test proved nothing",
              status);
    {
        const resilience::RunJournal::Replay replay =
            resilience::RunJournal::replay(crash_journal);
        if (!replay.valid())
            fatal("chaos_sweep: the dead child's journal is "
                  "unreadable: %s",
                  replay.error.c_str());
        emitStats("chaos_sweep: crash journal has %zu record(s), "
                  "torn tail: %s",
                  replay.records.size(),
                  replay.tornTail ? "yes" : "no");
    }
    setTraceCacheRoot(crash_cache);
    setResumeJournalPath(crash_journal);
    assertDigestsMatch(baseline, digestsOf(runTraces(specs)),
                       "resume pass");
    setResumeJournalPath("");
    setRunJournalPath("");

    std::printf("  graceful drain: SIGTERM mid-run\n");
    status = runSignalledChild(workdir + "/drain-cache",
                               workdir + "/drain.journal", SIGTERM,
                               0.25);
    if (!WIFEXITED(status) ||
        WEXITSTATUS(status) != resilience::cleanAbortExitCode)
        fatal("chaos_sweep: the SIGTERM child did not drain to exit "
              "%d (status 0x%x)",
              resilience::cleanAbortExitCode, status);
    std::printf("  drained with exit %d\n",
                resilience::cleanAbortExitCode);

    // Phase 4: a fully poisoned batch must quarantine every task
    // (bounded retries, batch survives) and report it as a fatal
    // configuration error carrying a resume hint.
    std::printf("[4/4] poison quarantine\n");
    setTraceCacheRoot(workdir + "/poison-cache");
    setRunJournalPath(workdir + "/poison.journal");
    resilience::ChaosPlan poison;
    poison.poisonTaskProb = 1.0;
    setTaskRetries(2);
    setChaosPlan(poison);
    bool quarantined = false;
    try {
        runTraces(specs);
    } catch (const FatalError &err) {
        quarantined =
            std::string(err.what()).find("quarantined") !=
            std::string::npos;
        if (!quarantined)
            fatal("chaos_sweep: poisoned batch failed for the wrong "
                  "reason: %s",
                  err.what());
    }
    if (!quarantined)
        fatal("chaos_sweep: a fully poisoned batch completed; "
              "poison injection is broken");
    const resilience::ChaosInjector::Stats poisoned =
        chaosInjector()->stats();
    std::printf("  %zu task(s) quarantined after 2 attempt(s) each "
                "(%llu poisoned attempts); batch survived\n",
                suite.size(),
                static_cast<unsigned long long>(
                    poisoned.poisonedAttempts));
    setChaosPlan(resilience::ChaosPlan());
    setRunJournalPath("");
    setTaskRetries(0);

    std::error_code ec;
    fs::remove_all(workdir, ec);
    if (ec)
        warn("chaos_sweep: could not remove %s (%s)",
             workdir.c_str(), ec.message().c_str());

    std::printf("\nchaos sweep: all checks passed\n");
    return 0;
}

# Empty dependencies file for tdp_stats.
# This may be replaced when dependencies are built.

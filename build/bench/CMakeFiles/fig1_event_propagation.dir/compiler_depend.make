# Empty compiler generated dependencies file for fig1_event_propagation.
# This may be replaced when dependencies are built.
